//! SELECT execution: scan → join → filter → group/aggregate → project →
//! distinct → sort → limit.
//!
//! The executor materializes intermediate row sets (the gateway's result sets
//! are small web reports, not OLAP scans) but picks access paths through the
//! planner in `choose_access_path`: an equality, range, `IN`, or
//! `LIKE 'prefix%'` conjunct over an indexed base-table column turns the base
//! scan into an index probe. Every candidate row is still checked against the
//! full WHERE clause, so access-path choice can only change performance,
//! never results — a property the property-test suite exercises.

use crate::ast::{AggFunc, BinOp, ColumnRef, Expr, OrderKey, Select, SelectItem, SetOp, SortDir};
use crate::error::{SqlError, SqlResult};
use crate::eval::{eval, eval_truth, AggSource, Bindings, NoAggregates};
use crate::like::{is_exact, literal_prefix};
use crate::state::DbState;
use crate::storage::Row;
use crate::types::Value;
use dbgw_obs::RequestCtx;
use std::collections::HashMap;
use std::ops::Bound;

/// Cooperative-cancellation stride: the scan, join, and grouping loops poll
/// [`RequestCtx::check`] every this many rows, so a runaway query notices its
/// deadline within a bounded amount of work while the per-row overhead stays
/// one branch on an induction variable.
const CANCEL_STRIDE: usize = 128;

/// Map a tripped request context to the SQLCODE −952 error the `%SQL_MESSAGE`
/// machinery understands.
fn check_cancel(ctx: &RequestCtx) -> SqlResult<()> {
    ctx.check().map_err(SqlError::cancelled)
}

/// A query result: column labels plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Execute a SELECT against the state. `ctx` is the owning request's context;
/// the executor polls it cooperatively (library callers with no request pass
/// [`RequestCtx::unbounded`]).
pub fn run_select(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    if !sel.set_ops.is_empty() {
        return run_compound(state, sel, params, ctx);
    }
    run_single(state, sel, params, ctx)
}

/// Execute a compound SELECT (UNION / EXCEPT / INTERSECT).
fn run_compound(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    // The root's ORDER BY / LIMIT were hoisted by the parser to apply to the
    // combined result; run the root branch without them.
    let mut first = sel.clone();
    first.set_ops = Vec::new();
    first.order_by = Vec::new();
    first.limit = None;
    first.offset = None;
    let base = run_single(state, &first, params, ctx)?;
    let width = base.columns.len();
    let mut rows = base.rows;
    for (op, branch) in &sel.set_ops {
        check_cancel(ctx)?;
        let rhs = run_select(state, branch, params, ctx)?;
        if rhs.columns.len() != width {
            return Err(SqlError::syntax(format!(
                "set operation branches have {width} and {} columns",
                rhs.columns.len()
            )));
        }
        match op {
            SetOp::Union { all: true } => rows.extend(rhs.rows),
            SetOp::Union { all: false } => {
                rows.extend(rhs.rows);
                dedup_rows(&mut rows);
            }
            SetOp::Except => {
                dedup_rows(&mut rows);
                rows.retain(|r| !rhs.rows.contains(r));
            }
            SetOp::Intersect => {
                dedup_rows(&mut rows);
                rows.retain(|r| rhs.rows.contains(r));
            }
        }
    }
    // Hoisted ORDER BY: positional or output-column keys only — there is no
    // single source row to evaluate arbitrary expressions against.
    if !sel.order_by.is_empty() {
        let key_positions: Vec<(usize, SortDir)> = sel
            .order_by
            .iter()
            .map(|k| match &k.expr {
                Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= width => {
                    Ok(((*n as usize) - 1, k.dir))
                }
                Expr::Column(c) if c.table.is_none() => base
                    .columns
                    .iter()
                    .position(|l| l.eq_ignore_ascii_case(&c.column))
                    .map(|p| (p, k.dir))
                    .ok_or_else(|| SqlError::no_such_column(&c.column)),
                _ => Err(SqlError::syntax(
                    "ORDER BY on a set operation must use output column names or positions",
                )),
            })
            .collect::<SqlResult<_>>()?;
        rows.sort_by(|a, b| {
            for &(pos, dir) in &key_positions {
                let ord = a[pos].order_key(&b[pos]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let offset = sel.offset.unwrap_or(0);
    let rows: Vec<Row> = rows
        .into_iter()
        .skip(offset)
        .take(sel.limit.unwrap_or(usize::MAX))
        .collect();
    Ok(ResultSet {
        columns: base.columns,
        rows,
    })
}

fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen: Vec<Row> = Vec::with_capacity(rows.len());
    rows.retain(|r| {
        if seen.contains(r) {
            false
        } else {
            seen.push(r.clone());
            true
        }
    });
}

fn run_single(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    // Pre-execute any (uncorrelated) subqueries, replacing them with literal
    // lists/values, so the scalar evaluator never needs database access.
    let rewritten;
    let sel = if select_has_subqueries(sel) {
        rewritten = rewrite_select_subqueries(state, sel, params, ctx)?;
        &rewritten
    } else {
        sel
    };

    // 1. Build the source relation and its bindings.
    let (bindings, mut rows) = build_source(state, sel, params, ctx)?;

    // 1b. Bind-time column validation: unknown columns must error even when
    // the table is empty (DB2 validated names at PREPARE).
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            validate_columns(expr, &bindings)?;
        }
    }
    if let Some(w) = &sel.where_clause {
        validate_columns(w, &bindings)?;
    }
    for g in &sel.group_by {
        validate_columns(g, &bindings)?;
    }
    if let Some(h) = &sel.having {
        validate_columns(h, &bindings)?;
    }

    // 2. WHERE.
    if let Some(pred) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for (i, row) in rows.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            if eval_truth(pred, &bindings, &row, params, &NoAggregates)?.passes() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let grouped = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
        || sel.order_by.iter().any(|k| k.expr.contains_aggregate());

    if grouped {
        run_grouped(sel, &bindings, rows, params, ctx)
    } else {
        run_plain(sel, &bindings, rows, params, ctx)
    }
}

/// Resolve every column reference in `expr`, erroring on unknown names —
/// independent of how many rows will flow.
fn validate_columns(expr: &Expr, bindings: &Bindings) -> SqlResult<()> {
    match expr {
        Expr::Column(c) => bindings.resolve(c).map(|_| ()),
        Expr::Literal(_) | Expr::Param(_) => Ok(()),
        Expr::Neg(i) | Expr::Not(i) => validate_columns(i, bindings),
        Expr::Binary { lhs, rhs, .. } => {
            validate_columns(lhs, bindings)?;
            validate_columns(rhs, bindings)
        }
        Expr::Like { expr, pattern, .. } => {
            validate_columns(expr, bindings)?;
            validate_columns(pattern, bindings)
        }
        Expr::IsNull { expr, .. } => validate_columns(expr, bindings),
        Expr::InList { expr, list, .. } => {
            validate_columns(expr, bindings)?;
            list.iter().try_for_each(|e| validate_columns(e, bindings))
        }
        Expr::Between { expr, lo, hi, .. } => {
            validate_columns(expr, bindings)?;
            validate_columns(lo, bindings)?;
            validate_columns(hi, bindings)
        }
        Expr::Func { args, .. } => args.iter().try_for_each(|e| validate_columns(e, bindings)),
        Expr::Agg { arg, .. } => match arg {
            Some(a) => validate_columns(a, bindings),
            None => Ok(()),
        },
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(o) = operand {
                validate_columns(o, bindings)?;
            }
            for (w, t) in arms {
                validate_columns(w, bindings)?;
                validate_columns(t, bindings)?;
            }
            if let Some(e) = otherwise {
                validate_columns(e, bindings)?;
            }
            Ok(())
        }
        Expr::Cast { expr, .. } => validate_columns(expr, bindings),
        // Subqueries validate their own scopes when they execute.
        Expr::Subquery(_) | Expr::Exists { .. } => Ok(()),
        Expr::InSelect { expr, .. } => validate_columns(expr, bindings),
    }
}

// ---------------------------------------------------------------------------
// Source construction (FROM + JOIN), with access-path selection.
// ---------------------------------------------------------------------------

fn build_source(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<(Bindings, Vec<Row>)> {
    let Some(base) = &sel.from else {
        // Table-less SELECT evaluates items once against an empty row.
        return Ok((Bindings::empty(), vec![Vec::new()]));
    };
    let base_table = state.table(&base.name)?;
    let base_cols: Vec<String> = base_table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut bindings = Bindings::single(base.effective_name(), base_cols);

    // Access-path selection applies when the query has no joins (a probe on
    // the base of a join would also be sound, but joins in gateway macros are
    // rare enough that the simple rule keeps the planner obviously correct).
    let mut rows: Vec<Row> = if sel.joins.is_empty() {
        match sel.where_clause.as_ref().and_then(|w| {
            choose_access_path(
                state,
                base.effective_name(),
                &base.name,
                &bindings,
                w,
                params,
            )
        }) {
            Some(ids) => ids
                .into_iter()
                .filter_map(|id| base_table.heap.get(id).cloned())
                .collect(),
            None => base_table.heap.iter().map(|(_, r)| r.clone()).collect(),
        }
    } else {
        base_table.heap.iter().map(|(_, r)| r.clone()).collect()
    };

    for join in &sel.joins {
        let right = state.table(&join.table.name)?;
        let right_cols: Vec<String> = right
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let right_width = right_cols.len();
        bindings.push_table(join.table.effective_name(), right_cols);
        let right_rows: Vec<Row> = right.heap.iter().map(|(_, r)| r.clone()).collect();
        let mut joined = Vec::new();
        for (i, left_row) in rows.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let mut matched = false;
            for right_row in &right_rows {
                let mut combined = left_row.clone();
                combined.extend(right_row.iter().cloned());
                let ok = match &join.on {
                    Some(on) => {
                        eval_truth(on, &bindings, &combined, params, &NoAggregates)?.passes()
                    }
                    None => true,
                };
                if ok {
                    matched = true;
                    joined.push(combined);
                }
            }
            if join.left_outer && !matched {
                let mut combined = left_row;
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                joined.push(combined);
            }
        }
        rows = joined;
    }
    Ok((bindings, rows))
}

/// Inspect the WHERE conjuncts for one that an index can serve; return the
/// candidate row ids if so.
fn choose_access_path(
    state: &DbState,
    effective: &str,
    table_name: &str,
    bindings: &Bindings,
    where_clause: &Expr,
    params: &[Value],
) -> Option<Vec<crate::storage::RowId>> {
    let mut conjuncts = Vec::new();
    flatten_and(where_clause, &mut conjuncts);
    for conj in conjuncts {
        if let Some(ids) = probe_conjunct(state, effective, table_name, bindings, conj, params) {
            return Some(ids);
        }
    }
    None
}

fn flatten_and<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            flatten_and(lhs, out);
            flatten_and(rhs, out);
        }
        other => out.push(other),
    }
}

/// Constant-fold an expression with no column references.
fn const_value(expr: &Expr, params: &[Value]) -> Option<Value> {
    fn has_column(e: &Expr) -> bool {
        match e {
            Expr::Column(_) => true,
            Expr::Literal(_) | Expr::Param(_) => false,
            Expr::Neg(i) | Expr::Not(i) => has_column(i),
            Expr::Binary { lhs, rhs, .. } => has_column(lhs) || has_column(rhs),
            Expr::Like { expr, pattern, .. } => has_column(expr) || has_column(pattern),
            Expr::IsNull { expr, .. } => has_column(expr),
            Expr::InList { expr, list, .. } => has_column(expr) || list.iter().any(has_column),
            Expr::Between { expr, lo, hi, .. } => {
                has_column(expr) || has_column(lo) || has_column(hi)
            }
            Expr::Func { args, .. } => args.iter().any(has_column),
            Expr::Agg { .. } => true,
            // Unrewritten subqueries cannot be constant-folded here.
            Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => true,
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_some_and(|o| has_column(o))
                    || arms.iter().any(|(w, t)| has_column(w) || has_column(t))
                    || otherwise.as_ref().is_some_and(|e| has_column(e))
            }
            Expr::Cast { expr, .. } => has_column(expr),
        }
    }
    if has_column(expr) {
        return None;
    }
    eval(expr, &Bindings::empty(), &[], params, &NoAggregates).ok()
}

fn column_of<'a>(expr: &'a Expr, effective: &str) -> Option<&'a ColumnRef> {
    match expr {
        Expr::Column(c)
            if c.table
                .as_ref()
                .is_none_or(|t| t.eq_ignore_ascii_case(effective)) =>
        {
            Some(c)
        }
        _ => None,
    }
}

fn probe_conjunct(
    state: &DbState,
    effective: &str,
    table_name: &str,
    bindings: &Bindings,
    conj: &Expr,
    params: &[Value],
) -> Option<Vec<crate::storage::RowId>> {
    let table = state.table(table_name).ok()?;
    let col_ordinal = |c: &ColumnRef| -> Option<usize> {
        // Ensure the reference resolves (catches ambiguity) and then map to
        // the table-local ordinal.
        bindings.resolve(c).ok()?;
        table.schema.column_index(&c.column)
    };
    match conj {
        Expr::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            // Normalize to "column op constant".
            let (col, val, op) = if let (Some(c), Some(v)) =
                (column_of(lhs, effective), const_value(rhs, params))
            {
                (c, v, *op)
            } else if let (Some(c), Some(v)) = (column_of(rhs, effective), const_value(lhs, params))
            {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (c, v, flipped)
            } else {
                return None;
            };
            if val.is_null() {
                return Some(Vec::new()); // col op NULL selects nothing
            }
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            Some(match op {
                BinOp::Eq => index.lookup(&val),
                BinOp::Lt => index.range(Bound::Unbounded, Bound::Excluded(&val)),
                BinOp::Le => index.range(Bound::Unbounded, Bound::Included(&val)),
                BinOp::Gt => index.range(Bound::Excluded(&val), Bound::Unbounded),
                BinOp::Ge => index.range(Bound::Included(&val), Bound::Unbounded),
                _ => unreachable!(),
            })
        }
        Expr::Like {
            expr,
            pattern,
            escape,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let pat = match const_value(pattern, params)? {
                Value::Text(t) => t,
                _ => return None,
            };
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            if is_exact(&pat, *escape) {
                let literal = literal_prefix(&pat, *escape);
                return Some(index.lookup(&Value::Text(literal)));
            }
            let prefix = literal_prefix(&pat, *escape);
            if prefix.is_empty() {
                return None; // '%...' gives the index nothing to narrow
            }
            Some(index.prefix_scan(&prefix))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            let mut ids = Vec::new();
            for item in list {
                let v = const_value(item, params)?;
                if !v.is_null() {
                    ids.extend(index.lookup(&v));
                }
            }
            ids.sort();
            ids.dedup();
            Some(ids)
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => {
            let col = column_of(expr, effective)?;
            let lo = const_value(lo, params)?;
            let hi = const_value(hi, params)?;
            if lo.is_null() || hi.is_null() {
                return Some(Vec::new());
            }
            let ordinal = col_ordinal(col)?;
            let index = state.index_on(table_name, ordinal)?;
            Some(index.range(Bound::Included(&lo), Bound::Included(&hi)))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Plain (non-aggregate) pipeline.
// ---------------------------------------------------------------------------

/// Expand SELECT items into `(label, expr-or-position)` output columns.
enum OutCol {
    /// Direct tuple position (wildcards).
    Position(usize),
    /// Computed expression.
    Expr(Expr),
}

fn expand_items(sel: &Select, bindings: &Bindings) -> SqlResult<(Vec<String>, Vec<OutCol>)> {
    let mut labels = Vec::new();
    let mut cols = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (i, name) in bindings.all_columns().into_iter().enumerate() {
                    labels.push(name);
                    cols.push(OutCol::Position(i));
                }
            }
            SelectItem::QualifiedWildcard(table) => {
                let (start, end) = bindings
                    .table_span(table)
                    .ok_or_else(|| SqlError::no_such_table(table))?;
                let names = bindings.table_columns(table).expect("span implies columns");
                for (offset, name) in names.iter().enumerate() {
                    labels.push(name.clone());
                    cols.push(OutCol::Position(start + offset));
                    debug_assert!(start + offset < end);
                }
            }
            SelectItem::Expr { expr, alias } => {
                let label = match alias {
                    Some(a) => a.clone(),
                    None => default_label(expr, labels.len()),
                };
                labels.push(label);
                cols.push(OutCol::Expr(expr.clone()));
            }
        }
    }
    Ok((labels, cols))
}

/// DB2-style output column label for an unaliased expression.
fn default_label(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        Expr::Agg {
            func, arg: None, ..
        } => format!("{}(*)", func.name()),
        Expr::Agg {
            func,
            arg: Some(arg),
            ..
        } => match arg.as_ref() {
            Expr::Column(c) => format!("{}({})", func.name(), c.column),
            _ => func.name().to_string(),
        },
        Expr::Func { name, .. } => name.clone(),
        _ => (position + 1).to_string(),
    }
}

fn project(
    cols: &[OutCol],
    bindings: &Bindings,
    row: &[Value],
    params: &[Value],
    aggs: &dyn AggSource,
) -> SqlResult<Row> {
    let mut out = Vec::with_capacity(cols.len());
    for col in cols {
        out.push(match col {
            OutCol::Position(i) => row.get(*i).cloned().unwrap_or(Value::Null),
            OutCol::Expr(e) => eval(e, bindings, row, params, aggs)?,
        });
    }
    Ok(out)
}

fn run_plain(
    sel: &Select,
    bindings: &Bindings,
    rows: Vec<Row>,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    if sel.having.is_some() {
        return Err(SqlError::syntax("HAVING requires GROUP BY or aggregates"));
    }
    let (labels, cols) = expand_items(sel, bindings)?;
    let mut pairs: Vec<(Row, Row)> = Vec::with_capacity(rows.len()); // (src, out)
    for (i, src) in rows.into_iter().enumerate() {
        if i % CANCEL_STRIDE == 0 {
            check_cancel(ctx)?;
        }
        let out = project(&cols, bindings, &src, params, &NoAggregates)?;
        pairs.push((src, out));
    }
    finish_pipeline(sel, bindings, &labels, pairs, params, None)
}

// ---------------------------------------------------------------------------
// Grouped / aggregate pipeline.
// ---------------------------------------------------------------------------

/// Pre-computed aggregate values for one group.
struct GroupAggs(Vec<(Expr, Value)>);

impl AggSource for GroupAggs {
    fn agg_value(&self, expr: &Expr) -> Option<Value> {
        self.0
            .iter()
            .find(|(e, _)| e == expr)
            .map(|(_, v)| v.clone())
    }
}

fn collect_aggs(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { .. } => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
        Expr::Neg(i) | Expr::Not(i) => collect_aggs(i, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, out);
            collect_aggs(rhs, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out);
            collect_aggs(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for e in list {
                collect_aggs(e, out);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        // Subqueries were rewritten to literals before grouping runs.
        Expr::Subquery(_) | Expr::InSelect { .. } | Expr::Exists { .. } => {}
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => {
            if let Some(op) = operand {
                collect_aggs(op, out);
            }
            for (w, t) in arms {
                collect_aggs(w, out);
                collect_aggs(t, out);
            }
            if let Some(e) = otherwise {
                collect_aggs(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggs(expr, out),
    }
}

fn compute_agg(
    agg: &Expr,
    bindings: &Bindings,
    rows: &[Row],
    params: &[Value],
) -> SqlResult<Value> {
    let Expr::Agg {
        func,
        arg,
        distinct,
    } = agg
    else {
        unreachable!("compute_agg called on non-aggregate")
    };
    // Gather the argument values over the group, skipping NULLs per SQL.
    let mut values: Vec<Value> = Vec::with_capacity(rows.len());
    match arg {
        None => {
            // COUNT(*): every row counts.
            return Ok(Value::Int(rows.len() as i64));
        }
        Some(arg) => {
            for row in rows {
                let v = eval(arg, bindings, row, params, &NoAggregates)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    if *distinct {
        let mut seen: Vec<Value> = Vec::new();
        values.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Min => Ok(values
            .into_iter()
            .reduce(|a, b| if a.order_key(&b).is_le() { a } else { b })
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .reduce(|a, b| if a.order_key(&b).is_ge() { a } else { b })
            .unwrap_or(Value::Null)),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let n = values.len();
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut all_int = true;
            for v in values {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(i);
                        float_sum += i as f64;
                    }
                    Value::Double(d) => {
                        all_int = false;
                        float_sum += d;
                    }
                    other => {
                        return Err(SqlError::type_mismatch(format!(
                            "{} over non-numeric value {other}",
                            func.name()
                        )))
                    }
                }
            }
            Ok(match func {
                AggFunc::Sum if all_int => Value::Int(int_sum),
                AggFunc::Sum => Value::Double(float_sum),
                AggFunc::Avg => Value::Double(float_sum / n as f64),
                _ => unreachable!(),
            })
        }
    }
}

fn run_grouped(
    sel: &Select,
    bindings: &Bindings,
    rows: Vec<Row>,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<ResultSet> {
    let (labels, cols) = expand_items(sel, bindings)?;

    // Partition rows into groups, preserving first-seen order.
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
    if sel.group_by.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), rows);
    } else {
        for (i, row) in rows.into_iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                check_cancel(ctx)?;
            }
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(g, bindings, &row, params, &NoAggregates)?);
            }
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(row);
        }
    }

    // The distinct aggregate expressions appearing anywhere downstream.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    for item in &sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggs(expr, &mut agg_exprs);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggs(h, &mut agg_exprs);
    }
    for k in &sel.order_by {
        collect_aggs(&k.expr, &mut agg_exprs);
    }

    let width = bindings.width();
    let mut pairs: Vec<(Row, Row)> = Vec::new(); // (representative src, out)
    let mut agg_sources: Vec<GroupAggs> = Vec::new();
    for key in group_order {
        check_cancel(ctx)?;
        let group_rows = groups.remove(&key).expect("group key recorded");
        let mut computed = Vec::with_capacity(agg_exprs.len());
        for agg in &agg_exprs {
            computed.push((
                agg.clone(),
                compute_agg(agg, bindings, &group_rows, params)?,
            ));
        }
        let aggs = GroupAggs(computed);
        // Representative row: the first row of the group, or all-NULL for the
        // empty global group (COUNT(*) over zero rows).
        let rep = group_rows
            .first()
            .cloned()
            .unwrap_or_else(|| vec![Value::Null; width]);
        if let Some(h) = &sel.having {
            if !eval_truth(h, bindings, &rep, params, &aggs)?.passes() {
                continue;
            }
        }
        let out = project(&cols, bindings, &rep, params, &aggs)?;
        pairs.push((rep, out));
        agg_sources.push(aggs);
    }
    finish_pipeline(sel, bindings, &labels, pairs, params, Some(agg_sources))
}

// ---------------------------------------------------------------------------
// Shared tail: DISTINCT → ORDER BY → OFFSET/LIMIT.
// ---------------------------------------------------------------------------

fn finish_pipeline(
    sel: &Select,
    bindings: &Bindings,
    labels: &[String],
    mut pairs: Vec<(Row, Row)>,
    params: &[Value],
    agg_sources: Option<Vec<GroupAggs>>,
) -> SqlResult<ResultSet> {
    // DISTINCT over output rows.
    if sel.distinct {
        let mut seen: Vec<Row> = Vec::new();
        let mut kept_sources = agg_sources.as_ref().map(|_| Vec::new());
        let mut kept = Vec::with_capacity(pairs.len());
        for (i, (src, out)) in pairs.into_iter().enumerate() {
            if !seen.contains(&out) {
                seen.push(out.clone());
                if let (Some(kept_sources), Some(sources)) =
                    (kept_sources.as_mut(), agg_sources.as_ref())
                {
                    kept_sources.push(i);
                    let _ = sources;
                }
                kept.push((src, out));
            }
        }
        pairs = kept;
        // Note: after DISTINCT the agg sources for dropped rows are unneeded;
        // ORDER BY keys below re-evaluate only against kept pairs' own keys,
        // computed eagerly next, so we can discard the mapping safely.
    }

    // ORDER BY: compute sort keys eagerly for each row.
    if !sel.order_by.is_empty() {
        let keys: Vec<Vec<Value>> = pairs
            .iter()
            .enumerate()
            .map(|(row_idx, (src, out))| {
                sel.order_by
                    .iter()
                    .map(|k| {
                        order_key_value(
                            k,
                            bindings,
                            labels,
                            src,
                            out,
                            params,
                            row_idx,
                            &agg_sources,
                        )
                    })
                    .collect::<SqlResult<Vec<Value>>>()
            })
            .collect::<SqlResult<Vec<_>>>()?;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by(|&a, &b| {
            for (i, k) in sel.order_by.iter().enumerate() {
                let ord = keys[a][i].order_key(&keys[b][i]);
                let ord = match k.dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut sorted = Vec::with_capacity(pairs.len());
        let mut taken: Vec<Option<(Row, Row)>> = pairs.into_iter().map(Some).collect();
        for idx in order {
            sorted.push(taken[idx].take().expect("permutation"));
        }
        pairs = sorted;
    }

    let offset = sel.offset.unwrap_or(0);
    let rows: Vec<Row> = pairs
        .into_iter()
        .map(|(_, out)| out)
        .skip(offset)
        .take(sel.limit.unwrap_or(usize::MAX))
        .collect();
    Ok(ResultSet {
        columns: labels.to_vec(),
        rows,
    })
}

#[allow(clippy::too_many_arguments)]
fn order_key_value(
    key: &OrderKey,
    bindings: &Bindings,
    labels: &[String],
    src: &[Value],
    out: &[Value],
    params: &[Value],
    row_idx: usize,
    agg_sources: &Option<Vec<GroupAggs>>,
) -> SqlResult<Value> {
    // SQL-92 positional sort: ORDER BY 2.
    if let Expr::Literal(Value::Int(n)) = &key.expr {
        let n = *n;
        if n >= 1 && (n as usize) <= out.len() {
            return Ok(out[n as usize - 1].clone());
        }
        return Err(SqlError::syntax(format!(
            "ORDER BY position {n} is out of range"
        )));
    }
    // An output label (alias) takes priority over a source column, per SQL.
    if let Expr::Column(c) = &key.expr {
        if c.table.is_none() {
            if let Some(pos) = labels
                .iter()
                .position(|l| l.eq_ignore_ascii_case(&c.column))
            {
                return Ok(out[pos].clone());
            }
        }
    }
    let aggs: &dyn AggSource = match agg_sources {
        Some(sources) => &sources[row_idx],
        None => &NoAggregates,
    };
    eval(&key.expr, bindings, src, params, aggs)
}

// ---------------------------------------------------------------------------
// Subquery pre-execution.
// ---------------------------------------------------------------------------

fn select_has_subqueries(sel: &Select) -> bool {
    sel.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_subquery(),
        _ => false,
    }) || sel
        .where_clause
        .as_ref()
        .is_some_and(Expr::contains_subquery)
        || sel.having.as_ref().is_some_and(Expr::contains_subquery)
        || sel.group_by.iter().any(Expr::contains_subquery)
        || sel.order_by.iter().any(|k| k.expr.contains_subquery())
        || sel
            .joins
            .iter()
            .any(|j| j.on.as_ref().is_some_and(Expr::contains_subquery))
}

fn rewrite_select_subqueries(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Select> {
    let mut out = sel.clone();
    for item in &mut out.items {
        if let SelectItem::Expr { expr, .. } = item {
            *expr = rewrite_expr_subqueries(state, expr, params, ctx)?;
        }
    }
    if let Some(w) = &mut out.where_clause {
        *w = rewrite_expr_subqueries(state, w, params, ctx)?;
    }
    if let Some(h) = &mut out.having {
        *h = rewrite_expr_subqueries(state, h, params, ctx)?;
    }
    for g in &mut out.group_by {
        *g = rewrite_expr_subqueries(state, g, params, ctx)?;
    }
    for k in &mut out.order_by {
        k.expr = rewrite_expr_subqueries(state, &k.expr, params, ctx)?;
    }
    for j in &mut out.joins {
        if let Some(on) = &mut j.on {
            *on = rewrite_expr_subqueries(state, on, params, ctx)?;
        }
    }
    Ok(out)
}

/// Replace subquery nodes in `expr` by executing them against `state`.
///
/// Only *uncorrelated* subqueries are supported, matching the era (the web
/// workloads used them for pick-lists). A correlated reference surfaces as an
/// "unknown column" error from the inner query.
pub(crate) fn rewrite_expr_subqueries(
    state: &DbState,
    expr: &Expr,
    params: &[Value],
    ctx: &RequestCtx,
) -> SqlResult<Expr> {
    if !expr.contains_subquery() {
        return Ok(expr.clone());
    }
    check_cancel(ctx)?;
    let walk = |e: &Expr| rewrite_expr_subqueries(state, e, params, ctx);
    Ok(match expr {
        Expr::Subquery(select) => {
            let rs = run_select(state, select, params, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::syntax(
                    "a scalar subquery must return exactly one column",
                ));
            }
            match rs.rows.len() {
                0 => Expr::Literal(Value::Null),
                1 => Expr::Literal(rs.rows[0][0].clone()),
                n => {
                    return Err(SqlError::syntax(format!(
                        "scalar subquery returned {n} rows"
                    )))
                }
            }
        }
        Expr::InSelect {
            expr,
            select,
            negated,
        } => {
            let rs = run_select(state, select, params, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::syntax(
                    "an IN subquery must return exactly one column",
                ));
            }
            Expr::InList {
                expr: Box::new(walk(expr)?),
                list: rs
                    .rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.remove(0)))
                    .collect(),
                negated: *negated,
            }
        }
        Expr::Exists { select, negated } => {
            // LIMIT 1 short-circuit: existence needs one row.
            let mut probe = (**select).clone();
            if probe.set_ops.is_empty() && probe.limit.is_none() {
                probe.limit = Some(1);
            }
            let rs = run_select(state, &probe, params, ctx)?;
            Expr::Literal(Value::Int(i64::from(rs.rows.is_empty() == *negated)))
        }
        Expr::Neg(i) => Expr::Neg(Box::new(walk(i)?)),
        Expr::Not(i) => Expr::Not(Box::new(walk(i)?)),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(walk(lhs)?),
            rhs: Box::new(walk(rhs)?),
        },
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => Expr::Like {
            expr: Box::new(walk(expr)?),
            pattern: Box::new(walk(pattern)?),
            escape: *escape,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(walk(expr)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(walk(expr)?),
            list: list.iter().map(walk).collect::<SqlResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(walk(expr)?),
            lo: Box::new(walk(lo)?),
            hi: Box::new(walk(hi)?),
            negated: *negated,
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(walk).collect::<SqlResult<_>>()?,
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(walk(a)?)),
                None => None,
            },
            distinct: *distinct,
        },
        Expr::Case {
            operand,
            arms,
            otherwise,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(walk(o)?)),
                None => None,
            },
            arms: arms
                .iter()
                .map(|(w, t)| Ok((walk(w)?, walk(t)?)))
                .collect::<SqlResult<_>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(walk(e)?)),
                None => None,
            },
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(walk(expr)?),
            ty: *ty,
        },
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => expr.clone(),
    })
}

// ---------------------------------------------------------------------------
// EXPLAIN.
// ---------------------------------------------------------------------------

/// Produce a plan description for a SELECT without running it.
pub fn explain_select(state: &DbState, sel: &Select, params: &[Value]) -> SqlResult<Vec<String>> {
    let mut lines = Vec::new();
    explain_into(state, sel, params, 0, &mut lines)?;
    Ok(lines)
}

fn explain_into(
    state: &DbState,
    sel: &Select,
    params: &[Value],
    indent: usize,
    lines: &mut Vec<String>,
) -> SqlResult<()> {
    let pad = "  ".repeat(indent);
    if !sel.set_ops.is_empty() {
        lines.push(format!(
            "{pad}SET OPERATION ({} branches)",
            sel.set_ops.len() + 1
        ));
        let mut first = sel.clone();
        first.set_ops = Vec::new();
        explain_into(state, &first, params, indent + 1, lines)?;
        for (op, branch) in &sel.set_ops {
            lines.push(format!("{pad}  {op:?}"));
            explain_into(state, branch, params, indent + 1, lines)?;
        }
        return Ok(());
    }
    match &sel.from {
        None => lines.push(format!("{pad}VALUES (table-less SELECT)")),
        Some(base) => {
            let table = state.table(&base.name)?;
            let base_cols: Vec<String> = table
                .schema
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let bindings = Bindings::single(base.effective_name(), base_cols);
            let access = if sel.joins.is_empty() {
                sel.where_clause.as_ref().and_then(|w| {
                    describe_access_path(
                        state,
                        base.effective_name(),
                        &base.name,
                        &bindings,
                        w,
                        params,
                    )
                })
            } else {
                None
            };
            match access {
                Some(desc) => lines.push(format!("{pad}{desc}")),
                None => lines.push(format!(
                    "{pad}FULL SCAN {} ({} rows)",
                    base.name,
                    table.heap.len()
                )),
            }
            for join in &sel.joins {
                lines.push(format!(
                    "{pad}NESTED LOOP {}JOIN {}{}",
                    if join.left_outer { "LEFT OUTER " } else { "" },
                    join.table.name,
                    if join.on.is_some() {
                        " ON <cond>"
                    } else {
                        " (cross)"
                    },
                ));
            }
        }
    }
    if sel.where_clause.is_some() {
        lines.push(format!("{pad}FILTER <where>"));
    }
    if !sel.group_by.is_empty()
        || sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        lines.push(format!(
            "{pad}AGGREGATE (group keys: {})",
            sel.group_by.len()
        ));
    }
    if sel.having.is_some() {
        lines.push(format!("{pad}FILTER <having>"));
    }
    if sel.distinct {
        lines.push(format!("{pad}DISTINCT"));
    }
    if !sel.order_by.is_empty() {
        lines.push(format!("{pad}SORT ({} keys)", sel.order_by.len()));
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        lines.push(format!(
            "{pad}LIMIT {}{}",
            sel.limit
                .map(|l| l.to_string())
                .unwrap_or_else(|| "ALL".into()),
            sel.offset
                .map(|o| format!(" OFFSET {o}"))
                .unwrap_or_default()
        ));
    }
    Ok(())
}

/// Like [`choose_access_path`] but returning a human description instead of
/// row ids (used by EXPLAIN; never touches the heap).
fn describe_access_path(
    state: &DbState,
    effective: &str,
    table_name: &str,
    bindings: &Bindings,
    where_clause: &Expr,
    params: &[Value],
) -> Option<String> {
    let mut conjuncts = Vec::new();
    flatten_and(where_clause, &mut conjuncts);
    let table = state.table(table_name).ok()?;
    for conj in conjuncts {
        let described = match conj {
            Expr::Binary { op, lhs, rhs }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let col = column_of(lhs, effective)
                    .filter(|_| const_value(rhs, params).is_some())
                    .or_else(|| {
                        column_of(rhs, effective).filter(|_| const_value(lhs, params).is_some())
                    });
                col.and_then(|c| {
                    bindings.resolve(c).ok()?;
                    let ordinal = table.schema.column_index(&c.column)?;
                    let index = state.index_on(table_name, ordinal)?;
                    let kind = if *op == BinOp::Eq {
                        "equality"
                    } else {
                        "range"
                    };
                    Some(format!("INDEX {kind} PROBE {} ({})", index.name, c))
                })
            }
            Expr::Like {
                expr,
                pattern,
                escape,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                let pat = match const_value(pattern, params)? {
                    Value::Text(t) => t,
                    _ => return None,
                };
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                let prefix = literal_prefix(&pat, *escape);
                if prefix.is_empty() {
                    return None;
                }
                Some(format!(
                    "INDEX prefix PROBE {} ({} LIKE '{}%…')",
                    index.name, c, prefix
                ))
            }),
            Expr::InList {
                expr,
                list,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                if !list.iter().all(|e| const_value(e, params).is_some()) {
                    return None;
                }
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                Some(format!(
                    "INDEX IN-list PROBE {} ({}, {} keys)",
                    index.name,
                    c,
                    list.len()
                ))
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated: false,
            } => column_of(expr, effective).and_then(|c| {
                const_value(lo, params)?;
                const_value(hi, params)?;
                bindings.resolve(c).ok()?;
                let ordinal = table.schema.column_index(&c.column)?;
                let index = state.index_on(table_name, ordinal)?;
                Some(format!("INDEX range PROBE {} ({} BETWEEN)", index.name, c))
            }),
            _ => None,
        };
        if described.is_some() {
            return described;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::ast::Statement;
    use crate::error::SqlCode;
    use crate::index::Index;
    use crate::parser::parse;
    use crate::schema::TableSchema;
    use crate::state::TableData;
    use crate::storage::Heap;
    use crate::types::SqlType;

    fn shop_state() -> DbState {
        let mut st = DbState::default();
        let defs = [
            ColumnDef {
                name: "custid".into(),
                ty: SqlType::Integer,
                not_null: true,
                primary_key: false,
                unique: false,
            },
            ColumnDef {
                name: "product_name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
            ColumnDef {
                name: "price".into(),
                ty: SqlType::Double,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ];
        let schema = TableSchema::from_defs("orders", &defs).unwrap();
        st.tables.insert(
            "orders".into(),
            TableData {
                schema,
                heap: Heap::new(),
                index_names: vec!["orders_cust".into()],
            },
        );
        st.indexes.insert(
            "orders_cust".into(),
            Index::new("orders_cust", "orders", 0, false),
        );
        let data: &[(i64, &str, f64)] = &[
            (10100, "bikes", 120.0),
            (10100, "bike bells", 4.5),
            (10200, "skates", 45.0),
            (10100, "helmets", 30.0),
            (10300, "bikes", 119.0),
        ];
        for (c, p, pr) in data {
            let row = vec![Value::Int(*c), Value::Text((*p).into()), Value::Double(*pr)];
            st.insert_row("orders", row).unwrap();
        }
        st
    }

    fn q(state: &DbState, sql: &str) -> ResultSet {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        run_select(state, &sel, &[], &RequestCtx::unbounded()).unwrap()
    }

    #[test]
    fn cancelled_ctx_aborts_scan_with_sqlcode_952() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT * FROM orders").unwrap() else {
            panic!()
        };
        let ctx = RequestCtx::new(1, std::sync::Arc::new(dbgw_obs::StdClock::new()));
        ctx.cancel();
        let err = run_select(&st, &sel, &[], &ctx).unwrap_err();
        assert_eq!(err.code, SqlCode::CANCELLED);
        assert_eq!(err.code.0, -952);
        assert!(err.message.contains("cancelled"), "{}", err.message);
    }

    #[test]
    fn expired_deadline_aborts_scan_deterministically() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT * FROM orders WHERE custid > 0").unwrap() else {
            panic!()
        };
        let clock = std::sync::Arc::new(dbgw_obs::TestClock::new());
        let ctx = RequestCtx::new(1, clock.clone()).with_deadline_ms(10);
        assert!(run_select(&st, &sel, &[], &ctx).is_ok());
        clock.advance_millis(11);
        let err = run_select(&st, &sel, &[], &ctx).unwrap_err();
        assert_eq!(err.code, SqlCode::CANCELLED);
        assert!(err.message.contains("10 ms"), "{}", err.message);
    }

    #[test]
    fn paper_conditional_where_query() {
        // §3.1.3: WHERE custid = 10100 AND product_name LIKE 'bikes%'
        let st = shop_state();
        let r = q(
            &st,
            "SELECT product_name FROM orders WHERE custid = 10100 AND product_name LIKE 'bikes%'",
        );
        assert_eq!(r.rows, vec![vec![Value::Text("bikes".into())]]);
    }

    #[test]
    fn index_probe_equals_full_scan() {
        let st = shop_state();
        let with_index = q(
            &st,
            "SELECT product_name FROM orders WHERE custid = 10100 ORDER BY 1",
        );
        // Same query phrased so the planner cannot use the index.
        let no_index = q(
            &st,
            "SELECT product_name FROM orders WHERE custid + 0 = 10100 ORDER BY 1",
        );
        assert_eq!(with_index, no_index);
        assert_eq!(with_index.rows.len(), 3);
    }

    #[test]
    fn order_by_desc_and_positional() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT product_name, price FROM orders ORDER BY 2 DESC LIMIT 2",
        );
        assert_eq!(r.rows[0][0], Value::Text("bikes".into()));
        assert_eq!(r.rows[1][1], Value::Double(119.0));
    }

    #[test]
    fn order_by_alias() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT price * 2 AS doubled FROM orders ORDER BY doubled",
        );
        assert_eq!(r.columns, vec!["doubled"]);
        assert_eq!(r.rows[0][0], Value::Double(9.0));
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let st = shop_state();
        let r = q(&st, "SELECT * FROM orders LIMIT 1");
        assert_eq!(r.columns, vec!["custid", "product_name", "price"]);
        let r2 = q(&st, "SELECT o.* FROM orders o LIMIT 1");
        assert_eq!(r2.columns, r.columns);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let st = shop_state();
        let r = q(&st, "SELECT DISTINCT custid FROM orders ORDER BY 1");
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(10100)],
                vec![Value::Int(10200)],
                vec![Value::Int(10300)]
            ]
        );
    }

    #[test]
    fn group_by_with_having() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT custid, COUNT(*) AS n, SUM(price) FROM orders \
             GROUP BY custid HAVING COUNT(*) > 1 ORDER BY 1",
        );
        assert_eq!(r.columns, vec!["custid", "n", "SUM(price)"]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(10100));
        assert_eq!(r.rows[0][1], Value::Int(3));
        assert_eq!(r.rows[0][2], Value::Double(154.5));
    }

    #[test]
    fn global_aggregate_over_empty_set() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT COUNT(*), SUM(price) FROM orders WHERE custid = 999",
        );
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn count_distinct() {
        let st = shop_state();
        let r = q(&st, "SELECT COUNT(DISTINCT product_name) FROM orders");
        assert_eq!(r.rows[0][0], Value::Int(4));
    }

    #[test]
    fn min_max_avg() {
        let st = shop_state();
        let r = q(
            &st,
            "SELECT MIN(price), MAX(price), AVG(price) FROM orders WHERE custid = 10100",
        );
        assert_eq!(r.rows[0][0], Value::Double(4.5));
        assert_eq!(r.rows[0][1], Value::Double(120.0));
        assert_eq!(r.rows[0][2], Value::Double((120.0 + 4.5 + 30.0) / 3.0));
    }

    #[test]
    fn tableless_select() {
        let st = DbState::default();
        let r = q(&st, "SELECT 1 + 1, 'x' || 'y'");
        assert_eq!(r.rows, vec![vec![Value::Int(2), Value::Text("xy".into())]]);
    }

    #[test]
    fn join_two_tables() {
        let mut st = shop_state();
        let defs = [
            ColumnDef {
                name: "custid".into(),
                ty: SqlType::Integer,
                not_null: true,
                primary_key: true,
                unique: false,
            },
            ColumnDef {
                name: "name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ];
        let schema = TableSchema::from_defs("customers", &defs).unwrap();
        st.tables.insert(
            "customers".into(),
            TableData {
                schema,
                heap: Heap::new(),
                index_names: vec![],
            },
        );
        for (id, name) in [(10100, "Ada"), (10200, "Bob")] {
            st.insert_row("customers", vec![Value::Int(id), Value::Text(name.into())])
                .unwrap();
        }
        let r = q(
            &st,
            "SELECT c.name, COUNT(*) FROM orders o JOIN customers c ON o.custid = c.custid \
             GROUP BY c.name ORDER BY 2 DESC",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Text("Ada".into()));
        assert_eq!(r.rows[0][1], Value::Int(3));
        // LEFT JOIN keeps the customer with no orders.
        let r2 = q(
            &st,
            "SELECT c.name FROM customers c LEFT JOIN orders o ON c.custid = o.custid \
             WHERE o.custid IS NULL",
        );
        assert!(r2.rows.is_empty()); // both customers have orders
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut st = DbState::default();
        for (t, cols) in [("a", vec!["x"]), ("b", vec!["x"])] {
            let defs: Vec<ColumnDef> = cols
                .iter()
                .map(|c| ColumnDef {
                    name: (*c).into(),
                    ty: SqlType::Integer,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                })
                .collect();
            st.tables.insert(
                t.into(),
                TableData {
                    schema: TableSchema::from_defs(t, &defs).unwrap(),
                    heap: Heap::new(),
                    index_names: vec![],
                },
            );
        }
        st.insert_row("a", vec![Value::Int(1)]).unwrap();
        st.insert_row("a", vec![Value::Int(2)]).unwrap();
        st.insert_row("b", vec![Value::Int(1)]).unwrap();
        let r = q(
            &st,
            "SELECT a.x, b.x FROM a LEFT JOIN b ON a.x = b.x ORDER BY 1",
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Null]
            ]
        );
    }

    #[test]
    fn like_prefix_uses_index_same_result() {
        let mut st = shop_state();
        // Index product_name too.
        st.indexes.insert(
            "orders_prod".into(),
            Index::new("orders_prod", "orders", 1, false),
        );
        let names: Vec<Value> = st
            .table("orders")
            .unwrap()
            .heap
            .iter()
            .map(|(id, r)| (id, r[1].clone()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(id, v)| {
                st.indexes
                    .get_mut("orders_prod")
                    .unwrap()
                    .insert(&v, id)
                    .unwrap();
                v
            })
            .collect();
        assert_eq!(names.len(), 5);
        st.tables
            .get_mut("orders")
            .unwrap()
            .index_names
            .push("orders_prod".into());
        let r = q(
            &st,
            "SELECT custid FROM orders WHERE product_name LIKE 'bike%' ORDER BY 1",
        );
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn where_with_unknown_filters_out() {
        let mut st = shop_state();
        st.insert_row("orders", vec![Value::Int(10400), Value::Null, Value::Null])
            .unwrap();
        // NULL product_name: LIKE is unknown, row filtered.
        let r = q(&st, "SELECT custid FROM orders WHERE product_name LIKE '%'");
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn offset_pagination() {
        let st = shop_state();
        let all = q(&st, "SELECT product_name FROM orders ORDER BY 1");
        let page2 = q(
            &st,
            "SELECT product_name FROM orders ORDER BY 1 LIMIT 2 OFFSET 2",
        );
        assert_eq!(page2.rows.as_slice(), &all.rows[2..4]);
    }

    #[test]
    fn error_on_unknown_column() {
        let st = shop_state();
        let Statement::Select(sel) = parse("SELECT bogus FROM orders").unwrap() else {
            panic!()
        };
        let err = run_select(&st, &sel, &[], &RequestCtx::unbounded()).unwrap_err();
        assert_eq!(err.code, crate::error::SqlCode::UNDEFINED_COLUMN);
    }
}
