//! Secondary indexes: ordered (B-tree) and unique enforcement.
//!
//! An index maps a single column's values to the set of row ids holding each
//! value. The ordered variant supports the range scans the planner generates
//! for `col LIKE 'prefix%'` and comparison predicates; every index supports
//! point lookups. NULLs are indexed (sorting first) but never participate in
//! uniqueness, per SQL-92.

use crate::error::{SqlCode, SqlError, SqlResult};
use crate::storage::RowId;
use crate::types::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// `Value` wrapper with the total order of [`Value::order_key`], usable as a
/// `BTreeMap` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrdValue(pub Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.order_key(&other.0)
    }
}

/// A single-column index.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique per database).
    pub name: String,
    /// Table it belongs to.
    pub table: String,
    /// Ordinal of the indexed column.
    pub column: usize,
    /// Whether duplicate non-NULL keys are rejected.
    pub unique: bool,
    map: BTreeMap<OrdValue, Vec<RowId>>,
}

impl Index {
    /// Create an empty index.
    pub fn new(name: &str, table: &str, column: usize, unique: bool) -> Index {
        Index {
            name: name.to_owned(),
            table: table.to_owned(),
            column,
            unique,
            map: BTreeMap::new(),
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Insert a `(key, row)` pair, enforcing uniqueness for non-NULL keys.
    pub fn insert(&mut self, key: &Value, row: RowId) -> SqlResult<()> {
        let entry = self.map.entry(OrdValue(key.clone())).or_default();
        if self.unique && !key.is_null() && !entry.is_empty() {
            return Err(SqlError::new(
                SqlCode::DUPLICATE_KEY,
                format!("duplicate key {key} in unique index {}", self.name),
            ));
        }
        entry.push(row);
        Ok(())
    }

    /// Remove a `(key, row)` pair (no-op if absent).
    pub fn remove(&mut self, key: &Value, row: RowId) {
        if let Some(entry) = self.map.get_mut(&OrdValue(key.clone())) {
            entry.retain(|&r| r != row);
            if entry.is_empty() {
                self.map.remove(&OrdValue(key.clone()));
            }
        }
    }

    /// Row ids with exactly this key.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        self.lookup_ref(key).to_vec()
    }

    /// Row ids with exactly this key, borrowed — no allocation on the probe
    /// path (the executor copies only when it must own the ids).
    pub fn lookup_ref(&self, key: &Value) -> &[RowId] {
        self.map
            .get(&OrdValue(key.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row ids with keys in `[lo, hi]` under the given bound kinds.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(OrdValue(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(OrdValue(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (_, rows) in self.map.range((conv(lo), conv(hi))) {
            out.extend_from_slice(rows);
        }
        out
    }

    /// Row ids whose text key starts with `prefix` (for LIKE 'p%').
    pub fn prefix_scan(&self, prefix: &str) -> Vec<RowId> {
        if prefix.is_empty() {
            return self
                .map
                .values()
                .flat_map(|rows| rows.iter().copied())
                .collect();
        }
        let lo = Value::Text(prefix.to_owned());
        let mut out = Vec::new();
        for (key, rows) in self
            .map
            .range((Bound::Included(OrdValue(lo)), Bound::Unbounded))
        {
            match &key.0 {
                Value::Text(t) if t.starts_with(prefix) => out.extend_from_slice(rows),
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(unique: bool) -> Index {
        Index::new("i", "t", 0, unique)
    }

    #[test]
    fn point_lookup() {
        let mut i = idx(false);
        i.insert(&Value::Int(5), RowId(1)).unwrap();
        i.insert(&Value::Int(5), RowId(2)).unwrap();
        i.insert(&Value::Int(9), RowId(3)).unwrap();
        assert_eq!(i.lookup(&Value::Int(5)), vec![RowId(1), RowId(2)]);
        assert!(i.lookup(&Value::Int(7)).is_empty());
    }

    #[test]
    fn unique_rejects_duplicates_but_not_nulls() {
        let mut i = idx(true);
        i.insert(&Value::Int(5), RowId(1)).unwrap();
        let err = i.insert(&Value::Int(5), RowId(2)).unwrap_err();
        assert_eq!(err.code, SqlCode::DUPLICATE_KEY);
        // NULL keys never collide.
        i.insert(&Value::Null, RowId(3)).unwrap();
        i.insert(&Value::Null, RowId(4)).unwrap();
    }

    #[test]
    fn remove_cleans_up_key() {
        let mut i = idx(false);
        i.insert(&Value::Int(5), RowId(1)).unwrap();
        i.remove(&Value::Int(5), RowId(1));
        assert_eq!(i.key_count(), 0);
        // Removing a non-existent pair is fine.
        i.remove(&Value::Int(5), RowId(1));
    }

    #[test]
    fn range_scan_inclusive_exclusive() {
        let mut i = idx(false);
        for n in 1..=5 {
            i.insert(&Value::Int(n), RowId(n as u32)).unwrap();
        }
        let rows = i.range(
            Bound::Included(&Value::Int(2)),
            Bound::Excluded(&Value::Int(5)),
        );
        assert_eq!(rows, vec![RowId(2), RowId(3), RowId(4)]);
    }

    #[test]
    fn prefix_scan_finds_only_matching_text() {
        let mut i = idx(false);
        i.insert(&Value::Text("apple".into()), RowId(1)).unwrap();
        i.insert(&Value::Text("apricot".into()), RowId(2)).unwrap();
        i.insert(&Value::Text("banana".into()), RowId(3)).unwrap();
        i.insert(&Value::Int(1), RowId(4)).unwrap();
        let mut rows = i.prefix_scan("ap");
        rows.sort();
        assert_eq!(rows, vec![RowId(1), RowId(2)]);
        assert_eq!(i.prefix_scan("").len(), 4);
        assert!(i.prefix_scan("z").is_empty());
    }

    #[test]
    fn mixed_type_keys_ordered_stably() {
        let mut i = idx(false);
        i.insert(&Value::Text("a".into()), RowId(1)).unwrap();
        i.insert(&Value::Int(10), RowId(2)).unwrap();
        i.insert(&Value::Null, RowId(3)).unwrap();
        let all = i.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all, vec![RowId(3), RowId(2), RowId(1)]); // null, number, text
    }
}
