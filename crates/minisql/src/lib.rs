//! **MiniSQL** — an in-memory relational DBMS substrate.
//!
//! Stands in for IBM DB2 in this reproduction of the SIGMOD '96 *DB2 WWW
//! Connection* paper. The gateway only ever drove DB2 through dynamic SQL —
//! PREPARE/EXECUTE of strings assembled by variable substitution — so any
//! engine with the same observable surface exercises the identical gateway
//! code paths. MiniSQL provides:
//!
//! * a SQL-92 subset: `SELECT` (joins, `WHERE` with 3-valued logic, `LIKE`,
//!   `GROUP BY`/`HAVING`, aggregates, `ORDER BY`, `LIMIT`/`FETCH FIRST`),
//!   `INSERT`/`UPDATE`/`DELETE`, `CREATE`/`DROP` `TABLE`/`INDEX`,
//!   `BEGIN`/`COMMIT`/`ROLLBACK`;
//! * typed storage with NULLs, PRIMARY KEY / UNIQUE / NOT NULL constraints;
//! * B-tree-ordered secondary indexes used automatically for equality, range,
//!   `IN`, and `LIKE 'prefix%'` predicates;
//! * DB2-style SQLCODEs (`0`, `+100`, `-104`, `-204`, `-803`, …) that the
//!   gateway's `%SQL_MESSAGE` blocks dispatch on;
//! * two transaction modes (auto-commit and explicit) with statement
//!   atomicity, via an undo log.
//!
//! ```
//! use minisql::{Database, Value};
//!
//! let db = Database::new();
//! db.run_script(
//!     "CREATE TABLE urldb (url VARCHAR(255) PRIMARY KEY,
//!                          title VARCHAR(80), description VARCHAR(200));
//!      INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM', 'Big Blue');",
//! ).unwrap();
//! let mut conn = db.connect();
//! let result = conn.execute("SELECT title FROM urldb WHERE url LIKE '%ibm%'").unwrap();
//! assert_eq!(result.rows().unwrap().rows[0][0], Value::Text("IBM".into()));
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod cache;
pub mod checkpoint;
pub mod cost;
pub mod csv;
pub mod date;
pub mod db;
pub mod dump;
pub mod error;
pub mod eval;
pub mod exec;
pub mod index;
pub mod like;
pub mod parser;
pub mod plan;
pub mod recovery;
pub mod schema;
pub mod state;
pub mod stats;
pub mod storage;
pub mod token;
pub mod types;
pub mod wal;

/// Poison-recovering lock wrappers, re-exported from the shared
/// [`dbgw_sync`] crate (the former in-crate copy moved there).
pub use dbgw_sync as sync;

pub use cache::{DbCacheStats, DbCaches};
pub use db::{Connection, Database, ExecResult};
pub use error::{SqlCode, SqlError, SqlResult};
pub use exec::ResultSet;
pub use parser::{parse, parse_script};
pub use plan::{PlanOptions, PlanStats};
pub use types::{SqlType, Truth, Value};
pub use wal::DurabilityConfig;
