//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches exactly
//! one character, and an optional `ESCAPE` character makes the next pattern
//! character literal. Matching is case-sensitive, as in DB2 with default
//! collation. The matcher runs in O(text × pattern) worst case using the
//! classic two-pointer backtracking algorithm (no allocation).

/// Does `text` match the LIKE `pattern`?
///
/// ```
/// use minisql::like::like_match;
/// assert!(like_match("bikes and more", "bikes%", None));
/// assert!(like_match("abc", "a_c", None));
/// assert!(like_match("50% off", "50!% %", Some('!')));
/// assert!(!like_match("Bikes", "bikes%", None));
/// ```
pub fn like_match(text: &str, pattern: &str, escape: Option<char>) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<PatTok> = compile(pattern, escape);
    matches(&t, &p)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatTok {
    AnyRun, // %
    AnyOne, // _
    Lit(char),
}

fn compile(pattern: &str, escape: Option<char>) -> Vec<PatTok> {
    let mut out = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            // Escaped character is literal; a trailing escape is itself literal
            // (DB2 raised an error; being lenient here only loosens tests we
            // never rely on).
            match chars.next() {
                Some(next) => out.push(PatTok::Lit(next)),
                None => out.push(PatTok::Lit(c)),
            }
        } else if c == '%' {
            // Collapse consecutive % runs.
            if out.last() != Some(&PatTok::AnyRun) {
                out.push(PatTok::AnyRun);
            }
        } else if c == '_' {
            out.push(PatTok::AnyOne);
        } else {
            out.push(PatTok::Lit(c));
        }
    }
    out
}

fn matches(text: &[char], pat: &[PatTok]) -> bool {
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pat idx after %, text idx at %)
    while ti < text.len() {
        match pat.get(pi) {
            Some(PatTok::Lit(c)) if *c == text[ti] => {
                ti += 1;
                pi += 1;
            }
            Some(PatTok::AnyOne) => {
                ti += 1;
                pi += 1;
            }
            Some(PatTok::AnyRun) => {
                star = Some((pi + 1, ti));
                pi += 1;
            }
            _ => match star {
                // Backtrack: let the last % swallow one more character.
                Some((sp, st)) => {
                    pi = sp;
                    ti = st + 1;
                    star = Some((sp, st + 1));
                }
                None => return false,
            },
        }
    }
    while pat.get(pi) == Some(&PatTok::AnyRun) {
        pi += 1;
    }
    pi == pat.len()
}

/// If the pattern has a non-empty literal prefix before any wildcard, return
/// it. The planner uses this to turn `col LIKE 'abc%'` into a B-tree range
/// scan.
pub fn literal_prefix(pattern: &str, escape: Option<char>) -> String {
    let mut prefix = String::new();
    for tok in compile(pattern, escape) {
        match tok {
            PatTok::Lit(c) => prefix.push(c),
            _ => break,
        }
    }
    prefix
}

/// True when the pattern contains no wildcards at all (so LIKE degenerates to
/// equality against the unescaped literal).
pub fn is_exact(pattern: &str, escape: Option<char>) -> bool {
    compile(pattern, escape)
        .iter()
        .all(|t| matches!(t, PatTok::Lit(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_wildcards() {
        assert!(like_match("hello", "hello", None));
        assert!(like_match("hello", "h%", None));
        assert!(like_match("hello", "%o", None));
        assert!(like_match("hello", "%ell%", None));
        assert!(like_match("hello", "h_llo", None));
        assert!(!like_match("hello", "h_lo", None));
        assert!(!like_match("hello", "hello!", None));
    }

    #[test]
    fn percent_matches_empty() {
        assert!(like_match("", "%", None));
        assert!(like_match("a", "%a%", None));
        assert!(like_match("a", "a%", None));
    }

    #[test]
    fn underscore_needs_exactly_one() {
        assert!(!like_match("", "_", None));
        assert!(like_match("ab", "__", None));
        assert!(!like_match("a", "__", None));
    }

    #[test]
    fn paper_examples() {
        // From §3.1.3: product_name LIKE 'bikes%'
        assert!(like_match("bikes", "bikes%", None));
        assert!(like_match("bikes for kids", "bikes%", None));
        assert!(!like_match("mountain bikes", "bikes%", None));
        // From Appendix A: url LIKE '%ib%'
        assert!(like_match("http://www.ibm.com", "%ib%", None));
        assert!(!like_match("http://www.example.com", "%ib%", None));
    }

    #[test]
    fn escape_character() {
        assert!(like_match("100%", "100!%", Some('!')));
        assert!(!like_match("100x", "100!%", Some('!')));
        assert!(like_match("a_b", "a!_b", Some('!')));
        assert!(!like_match("axb", "a!_b", Some('!')));
        // Escaped escape char.
        assert!(like_match("a!b", "a!!b", Some('!')));
    }

    #[test]
    fn backtracking_torture() {
        let text = "a".repeat(64) + "b";
        assert!(like_match(&text, "%a%a%a%b", None));
        assert!(!like_match(&"a".repeat(64), "%a%a%a%b", None));
    }

    #[test]
    fn consecutive_percents_collapse() {
        assert!(like_match("xy", "x%%%%y", None));
    }

    #[test]
    fn multibyte_chars_count_as_one() {
        assert!(like_match("héllo", "h_llo", None));
        assert!(like_match("☃", "_", None));
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(literal_prefix("bikes%", None), "bikes");
        assert_eq!(literal_prefix("%ib%", None), "");
        assert_eq!(literal_prefix("a!%b%", Some('!')), "a%b");
        assert_eq!(literal_prefix("plain", None), "plain");
    }

    #[test]
    fn exactness() {
        assert!(is_exact("plain", None));
        assert!(is_exact("100!%", Some('!')));
        assert!(!is_exact("a%", None));
        assert!(!is_exact("a_", None));
    }
}
