//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! stmt      := select | insert | update | delete | create | drop | txn
//! select    := SELECT [DISTINCT] items [FROM table [joins]] [WHERE expr]
//!              [GROUP BY exprs] [HAVING expr] [ORDER BY keys]
//!              [LIMIT n [OFFSET m] | FETCH FIRST n ROWS ONLY]
//! expr      := or-expr with precedence  OR < AND < NOT < cmp < add < mul < unary
//! ```
//!
//! The parser is deliberately strict about structure but permissive about
//! keyword case, matching how DB2's dynamic SQL PREPARE behaved.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::token::{tokenize, Sym, Token, TokenKind};
use crate::types::{SqlType, Value};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> SqlResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semi);
    if !p.at_end() {
        return Err(SqlError::syntax(format!(
            "unexpected trailing input at byte {}",
            p.peek_offset()
        )));
    }
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> SqlResult<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
        if !p.eat_sym(Sym::Semi) {
            break;
        }
    }
    if !p.at_end() {
        return Err(SqlError::syntax(format!(
            "unexpected trailing input at byte {}",
            p.peek_offset()
        )));
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_offset(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(0)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t.map(|t| t.kind)
    }

    /// Does the current token equal the keyword `kw` (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::syntax(format!(
                "expected {kw} at byte {}",
                self.peek_offset()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(TokenKind::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> SqlResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(SqlError::syntax(format!(
                "expected {sym} at byte {}",
                self.peek_offset()
            )))
        }
    }

    /// Consume an identifier (plain or quoted); keywords are accepted as
    /// names only when quoted.
    fn ident(&mut self) -> SqlResult<String> {
        match self.advance() {
            Some(TokenKind::Ident(w)) => Ok(w),
            Some(TokenKind::QuotedIdent(w)) => Ok(w),
            other => Err(SqlError::syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                analyze,
                inner: Box::new(inner),
            });
        }
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            return self.drop();
        }
        if self.eat_kw("BEGIN") {
            // Optional WORK / TRANSACTION noise word.
            let _ = self.eat_kw("WORK") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("WORK");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("WORK");
            return Ok(Statement::Rollback);
        }
        Err(SqlError::syntax(format!(
            "expected a statement at byte {}",
            self.peek_offset()
        )))
    }

    /// Parse a (possibly compound) SELECT: branches joined by UNION /
    /// EXCEPT / INTERSECT. Per SQL-92, a trailing ORDER BY / LIMIT applies to
    /// the combined result; we therefore hoist them from the final branch and
    /// reject them on interior branches.
    fn select(&mut self) -> SqlResult<Select> {
        let mut root = self.simple_select()?;
        loop {
            let op = if self.eat_kw("UNION") {
                SetOp::Union {
                    all: self.eat_kw("ALL"),
                }
            } else if self.eat_kw("EXCEPT") {
                SetOp::Except {
                    all: self.eat_kw("ALL"),
                }
            } else if self.eat_kw("INTERSECT") {
                SetOp::Intersect {
                    all: self.eat_kw("ALL"),
                }
            } else {
                break;
            };
            if !root.order_by.is_empty() || root.limit.is_some() {
                return Err(SqlError::syntax(
                    "ORDER BY / LIMIT must follow the last branch of a set operation",
                ));
            }
            if let Some((_, prev)) = root.set_ops.last() {
                if !prev.order_by.is_empty() || prev.limit.is_some() {
                    return Err(SqlError::syntax(
                        "ORDER BY / LIMIT must follow the last branch of a set operation",
                    ));
                }
            }
            let branch = self.simple_select()?;
            root.set_ops.push((op, branch));
        }
        // Hoist the last branch's ORDER BY / LIMIT to the compound root.
        if let Some((_, last)) = root.set_ops.last_mut() {
            root.order_by = std::mem::take(&mut last.order_by);
            root.limit = last.limit.take();
            root.offset = last.offset.take();
        }
        Ok(root)
    }

    fn simple_select(&mut self) -> SqlResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let _ = self.eat_kw("ALL");
        let mut items = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = None;
        let mut joins = Vec::new();
        let mut where_clause = None;
        if self.eat_kw("FROM") {
            from = Some(self.table_ref()?);
            loop {
                if self.eat_sym(Sym::Comma) {
                    // Comma join = cross join.
                    joins.push(Join {
                        table: self.table_ref()?,
                        on: None,
                        left_outer: false,
                    });
                } else if self.at_kw("JOIN")
                    || self.at_kw("INNER")
                    || self.at_kw("LEFT")
                    || self.at_kw("CROSS")
                {
                    let left_outer = self.eat_kw("LEFT");
                    if left_outer {
                        let _ = self.eat_kw("OUTER");
                    } else {
                        let _ = self.eat_kw("INNER") || self.eat_kw("CROSS");
                    }
                    self.expect_kw("JOIN")?;
                    let table = self.table_ref()?;
                    let on = if self.eat_kw("ON") {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    joins.push(Join {
                        table,
                        on,
                        left_outer,
                    });
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            where_clause = Some(self.expr()?);
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_sym(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_kw("DESC") {
                    SortDir::Desc
                } else {
                    let _ = self.eat_kw("ASC");
                    SortDir::Asc
                };
                order_by.push(OrderKey { expr, dir });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.usize_literal()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.usize_literal()?);
            }
        } else if self.eat_kw("FETCH") {
            // DB2 syntax: FETCH FIRST n ROWS ONLY
            self.expect_kw("FIRST")?;
            limit = Some(self.usize_literal()?);
            let _ = self.eat_kw("ROWS") || self.eat_kw("ROW");
            self.expect_kw("ONLY")?;
        }
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
            set_ops: Vec::new(),
        })
    }

    fn usize_literal(&mut self) -> SqlResult<usize> {
        match self.advance() {
            Some(TokenKind::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(SqlError::syntax(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // table.* lookahead
        if let (Some(TokenKind::Ident(t)), Some(tk1), Some(tk2)) = (
            self.peek(),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            if tk1.kind == TokenKind::Sym(Sym::Dot) && tk2.kind == TokenKind::Sym(Sym::Star) {
                let t = t.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let name = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(TableRef { name, alias })
    }

    /// `[AS] alias` — an explicit AS, or an implicit non-reserved identifier.
    fn optional_alias(&mut self) -> SqlResult<Option<String>> {
        if self.eat_kw("AS") || matches!(self.peek(), Some(TokenKind::Ident(w)) if !is_reserved(w))
        {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym(Sym::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        if self.at_kw("SELECT") {
            let select = self.select()?;
            return Ok(Statement::Insert {
                table,
                columns,
                values: Vec::new(),
                select: Some(Box::new(select)),
            });
        }
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut tuple = Vec::new();
            if !self.eat_sym(Sym::RParen) {
                loop {
                    tuple.push(self.expr()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
            }
            values.push(tuple);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
            select: None,
        })
    }

    fn update(&mut self) -> SqlResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> SqlResult<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn create(&mut self) -> SqlResult<Statement> {
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let column = self.ident()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        if unique {
            return Err(SqlError::syntax("UNIQUE is only valid before INDEX"));
        }
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.column_def()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.ident()?;
        let ty_name = self.ident()?;
        let ty = type_from_name(&ty_name)?;
        // Optional length/precision: VARCHAR(80), DECIMAL(10,2).
        if self.eat_sym(Sym::LParen) {
            self.usize_literal()?;
            if self.eat_sym(Sym::Comma) {
                self.usize_literal()?;
            }
            self.expect_sym(Sym::RParen)?;
        }
        let mut def = ColumnDef {
            name,
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_kw("UNIQUE") {
                def.unique = true;
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn drop(&mut self) -> SqlResult<Statement> {
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            return Ok(Statement::DropIndex { name });
        }
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            // NOT EXISTS folds into the Exists node for clarity.
            if self.at_kw("EXISTS") {
                let Expr::Exists { select, negated } = self.comparison()? else {
                    return Err(SqlError::syntax("expected EXISTS (SELECT ...)"));
                };
                return Ok(Expr::Exists {
                    select,
                    negated: !negated,
                });
            }
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> SqlResult<Expr> {
        let lhs = self.additive()?;
        // Postfix predicates: IS NULL, LIKE, IN, BETWEEN, with optional NOT.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            let escape = if self.eat_kw("ESCAPE") {
                match self.advance() {
                    Some(TokenKind::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                    other => {
                        return Err(SqlError::syntax(format!(
                            "ESCAPE requires a single-character string, found {other:?}"
                        )))
                    }
                }
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                escape,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            if self.at_kw("SELECT") {
                let select = self.select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::InSelect {
                    expr: Box::new(lhs),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(SqlError::syntax(
                "NOT must be followed by LIKE, IN or BETWEEN here",
            ));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(TokenKind::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(TokenKind::Sym(Sym::Ne)) => Some(BinOp::Ne),
            Some(TokenKind::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(TokenKind::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(TokenKind::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(TokenKind::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Sym(Sym::Plus)) => BinOp::Add,
                Some(TokenKind::Sym(Sym::Minus)) => BinOp::Sub,
                Some(TokenKind::Sym(Sym::Concat)) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Sym(Sym::Star)) => BinOp::Mul,
                Some(TokenKind::Sym(Sym::Slash)) => BinOp::Div,
                Some(TokenKind::Sym(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.unary()?;
            // Fold negative literals immediately.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.advance() {
            Some(TokenKind::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(TokenKind::Num(d)) => Ok(Expr::Literal(Value::Double(d))),
            Some(TokenKind::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(TokenKind::Param) => {
                self.params += 1;
                Ok(Expr::Param(self.params))
            }
            Some(TokenKind::Sym(Sym::LParen)) => {
                if self.at_kw("SELECT") {
                    let select = self.select()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Subquery(Box::new(select)));
                }
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(word)) => self.ident_expr(word),
            Some(TokenKind::QuotedIdent(word)) => self.column_or_qualified(word),
            other => Err(SqlError::syntax(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn ident_expr(&mut self, word: String) -> SqlResult<Expr> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => return Ok(Expr::Literal(Value::Null)),
            "TRUE" => return Ok(Expr::Literal(Value::Int(1))),
            "FALSE" => return Ok(Expr::Literal(Value::Int(0))),
            "EXISTS" => {
                self.expect_sym(Sym::LParen)?;
                let select = self.select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Exists {
                    select: Box::new(select),
                    negated: false,
                });
            }
            "CASE" => return self.case_expr(),
            "DATE" => {
                // DATE 'YYYY-MM-DD' literal.
                if let Some(TokenKind::Str(text)) = self.peek().cloned() {
                    self.pos += 1;
                    let days = crate::date::parse_date(&text).ok_or_else(|| {
                        SqlError::syntax(format!("bad DATE literal '{text}' (want YYYY-MM-DD)"))
                    })?;
                    return Ok(Expr::Literal(Value::Date(days)));
                }
                // Bare DATE is just an identifier (a column named date).
            }
            "CAST" => {
                self.expect_sym(Sym::LParen)?;
                let inner = self.expr()?;
                self.expect_kw("AS")?;
                let ty_name = self.ident()?;
                let ty = type_from_name(&ty_name)?;
                // Optional length, as in CAST(x AS VARCHAR(20)).
                if self.eat_sym(Sym::LParen) {
                    self.usize_literal()?;
                    if self.eat_sym(Sym::Comma) {
                        self.usize_literal()?;
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Cast {
                    expr: Box::new(inner),
                    ty,
                });
            }
            _ => {}
        }
        // Function or aggregate call?
        if matches!(self.peek(), Some(TokenKind::Sym(Sym::LParen))) {
            let agg = match upper.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            self.pos += 1; // consume '('
            let call = if let Some(func) = agg {
                if func == AggFunc::Count && self.eat_sym(Sym::Star) {
                    self.expect_sym(Sym::RParen)?;
                    Expr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    }
                } else {
                    let distinct = self.eat_kw("DISTINCT");
                    let arg = self.expr()?;
                    self.expect_sym(Sym::RParen)?;
                    Expr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                        distinct,
                    }
                }
            } else {
                let mut args = Vec::new();
                if !self.eat_sym(Sym::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                Expr::Func { name: upper, args }
            };
            if self.at_kw("OVER") {
                return self.window_expr(call);
            }
            return Ok(call);
        }
        self.column_or_qualified(word)
    }

    /// `call OVER ( [PARTITION BY exprs] [ORDER BY keys] )` — `call` is the
    /// already-parsed function expression preceding OVER.
    fn window_expr(&mut self, call: Expr) -> SqlResult<Expr> {
        self.expect_kw("OVER")?;
        let func = match call {
            Expr::Agg {
                func,
                arg,
                distinct: false,
            } => WindowFunc::Agg { func, arg },
            Expr::Agg { .. } => {
                return Err(SqlError::syntax(
                    "DISTINCT is not supported in window functions",
                ));
            }
            Expr::Func { ref name, ref args } if name == "ROW_NUMBER" || name == "RANK" => {
                if !args.is_empty() {
                    return Err(SqlError::syntax(format!("{name} takes no arguments")));
                }
                if name == "ROW_NUMBER" {
                    WindowFunc::RowNumber
                } else {
                    WindowFunc::Rank
                }
            }
            Expr::Func { name, .. } => {
                return Err(SqlError::syntax(format!("{name} is not a window function")));
            }
            other => {
                return Err(SqlError::syntax(format!(
                    "OVER must follow a function call, not {other:?}"
                )));
            }
        };
        self.expect_sym(Sym::LParen)?;
        let mut partition_by = Vec::new();
        if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            partition_by.push(self.expr()?);
            while self.eat_sym(Sym::Comma) {
                partition_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_kw("DESC") {
                    SortDir::Desc
                } else {
                    let _ = self.eat_kw("ASC");
                    SortDir::Asc
                };
                order_by.push(OrderKey { expr, dir });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Expr::Window(Box::new(WindowExpr {
            func,
            partition_by,
            order_by,
        })))
    }

    fn case_expr(&mut self) -> SqlResult<Expr> {
        // CASE was already consumed.
        let operand = if self.at_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut arms = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(SqlError::syntax("CASE needs at least one WHEN arm"));
        }
        let otherwise = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            arms,
            otherwise,
        })
    }

    fn column_or_qualified(&mut self, first: String) -> SqlResult<Expr> {
        if self.eat_sym(Sym::Dot) {
            let column = self.ident()?;
            Ok(Expr::Column(ColumnRef {
                table: Some(first),
                column,
            }))
        } else {
            Ok(Expr::Column(ColumnRef::bare(first)))
        }
    }
}

/// Map a type name to a SqlType (CREATE TABLE and CAST).
fn type_from_name(name: &str) -> SqlResult<SqlType> {
    match name.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "SMALLINT" | "BIGINT" => Ok(SqlType::Integer),
        "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(SqlType::Double),
        "VARCHAR" | "CHAR" | "CHARACTER" | "TEXT" | "CLOB" => Ok(SqlType::Varchar),
        "DATE" => Ok(SqlType::Date),
        other => Err(SqlError::syntax(format!("unknown column type {other}"))),
    }
}

/// Words that cannot be implicit aliases in `SELECT expr alias` position.
fn is_reserved(w: &str) -> bool {
    const RESERVED: &[&str] = &[
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "FETCH",
        "JOIN",
        "INNER",
        "LEFT",
        "CROSS",
        "ON",
        "AND",
        "OR",
        "NOT",
        "AS",
        "SET",
        "VALUES",
        "INTO",
        "BY",
        "ASC",
        "DESC",
        "UNION",
        "EXCEPT",
        "INTERSECT",
        "EXISTS",
        "EXPLAIN",
        "LIKE",
        "IN",
        "BETWEEN",
        "IS",
        "NULL",
        "SELECT",
        "DISTINCT",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "CAST",
        "OVER",
        "PARTITION",
    ];
    RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_appendix_a_query_shape() {
        // The query the Appendix A macro generates at run time.
        let s = sel("SELECT url, title, description FROM urldb \
             WHERE urldb.url LIKE '%ib%' OR urldb.title LIKE '%ib%' ORDER BY title");
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from.as_ref().unwrap().name, "urldb");
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = sel("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let Some(Expr::Binary { op: BinOp::Or, .. }) = s.where_clause else {
            panic!("OR should be the root");
        };
    }

    #[test]
    fn not_like_and_escape() {
        let s = sel("SELECT 1 FROM t WHERE name NOT LIKE 'a!%%' ESCAPE '!'");
        let Some(Expr::Like {
            negated: true,
            escape: Some('!'),
            ..
        }) = s.where_clause
        else {
            panic!("expected NOT LIKE with escape");
        };
    }

    #[test]
    fn in_between_isnull() {
        assert!(parse("SELECT 1 FROM t WHERE x IN (1,2,3)").is_ok());
        assert!(parse("SELECT 1 FROM t WHERE x NOT BETWEEN 1 AND 10").is_ok());
        assert!(parse("SELECT 1 FROM t WHERE x IS NOT NULL").is_ok());
    }

    #[test]
    fn select_distinct_group_having_order_limit() {
        let s = sel(
            "SELECT DISTINCT dept, COUNT(*) AS n FROM emp WHERE sal > 10 \
             GROUP BY dept HAVING COUNT(*) > 2 ORDER BY 2 DESC, dept ASC LIMIT 5 OFFSET 2",
        );
        assert!(s.distinct);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert_eq!(s.order_by[0].dir, SortDir::Desc);
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn fetch_first_syntax() {
        let s = sel("SELECT 1 FROM t FETCH FIRST 7 ROWS ONLY");
        assert_eq!(s.limit, Some(7));
    }

    #[test]
    fn joins_inner_left_comma() {
        let s = sel("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id, d");
        // Note: comma join after explicit joins is unusual but accepted.
        assert_eq!(s.joins.len(), 3);
        assert!(s.joins[1].left_outer);
        assert!(s.joins[2].on.is_none());
    }

    #[test]
    fn insert_multi_row() {
        let st = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert {
            values, columns, ..
        } = st
        else {
            panic!()
        };
        assert_eq!(columns, vec!["a", "b"]);
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE id = 3").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn create_table_constraints() {
        let st = parse(
            "CREATE TABLE urldb (url VARCHAR(255) PRIMARY KEY, \
             title VARCHAR(80) NOT NULL, hits INTEGER, score DOUBLE, d CHAR(3) UNIQUE)",
        )
        .unwrap();
        let Statement::CreateTable { columns, .. } = st else {
            panic!()
        };
        assert!(columns[0].primary_key && columns[0].not_null);
        assert!(columns[1].not_null && !columns[1].primary_key);
        assert_eq!(columns[2].ty, SqlType::Integer);
        assert_eq!(columns[3].ty, SqlType::Double);
        assert!(columns[4].unique);
    }

    #[test]
    fn create_drop_index() {
        assert!(matches!(
            parse("CREATE UNIQUE INDEX i ON t (c)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse("DROP INDEX i").unwrap(),
            Statement::DropIndex { .. }
        ));
    }

    #[test]
    fn txn_statements() {
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK WORK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn params_numbered_in_order() {
        let st = parse("SELECT 1 FROM t WHERE a = ? AND b = ?").unwrap();
        let Statement::Select(s) = st else { panic!() };
        let w = s.where_clause.unwrap();
        let Expr::Binary { lhs, rhs, .. } = w else {
            panic!()
        };
        let Expr::Binary { rhs: p1, .. } = *lhs else {
            panic!()
        };
        let Expr::Binary { rhs: p2, .. } = *rhs else {
            panic!()
        };
        assert_eq!(*p1, Expr::Param(1));
        assert_eq!(*p2, Expr::Param(2));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT 1 FROM t bogus extra tokens").is_err());
        assert!(parse("SELECT 1 FROM t; SELECT 2").is_err());
    }

    #[test]
    fn script_parses_multiple() {
        let stmts = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn implicit_alias() {
        let s = sel("SELECT a one, b AS two FROM t x");
        let SelectItem::Expr { alias, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("one"));
        assert_eq!(s.from.unwrap().alias.as_deref(), Some("x"));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT 2 + 3 * 4");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let Expr::Binary { op: BinOp::Add, .. } = expr else {
            panic!("Add should be the root");
        };
    }

    #[test]
    fn count_star_and_count_distinct() {
        let s = sel("SELECT COUNT(*), COUNT(DISTINCT dept) FROM emp");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Agg { arg: None, .. },
                ..
            }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::Agg { distinct: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT u.* FROM urldb u");
        assert_eq!(s.items[0], SelectItem::QualifiedWildcard("u".into()));
    }
}
