//! Cost-aware SELECT planning: conjunct classification, join strategy and
//! top-k sort selection.
//!
//! The planner is deliberately small: it never reorders joins and it never
//! estimates cardinalities beyond "build the hash table on the smaller side".
//! What it does decide, per query:
//!
//! * **Predicate pushdown** — each WHERE conjunct is classified by the set of
//!   tables it references and attached to the earliest point in the pipeline
//!   where all of those tables are bound: the base scan, a joined table's
//!   scan, a join's post-filter, or the residual tail. Conjuncts over the
//!   nullable side of a LEFT OUTER JOIN are never pushed *below* that join
//!   (they become post-filters), which preserves outer-join semantics.
//! * **Hash equi-joins** — `l = r` conjuncts in ON (or WHERE, for inner
//!   joins) where `l` references only already-bound tables and `r` only the
//!   joined table become hash-join keys; everything else stays a per-pair
//!   residual predicate evaluated by whichever join strategy runs.
//! * **Top-k ORDER BY** — `ORDER BY … LIMIT k [OFFSET o]` keeps a bounded
//!   heap of `k + o` rows instead of sorting the full result.
//!
//! Classification is conservative: any conjunct the planner cannot fully
//! resolve (unknown columns, aggregates, unrewritten subqueries, >64 tables)
//! drops to the residual tail, where the executor applies it exactly as the
//! pre-planner code did. Plan choices can therefore change performance but
//! never results — the property suite in `tests/planner_equivalence.rs`
//! exercises this.

use crate::ast::{BinOp, Expr, Select};
use crate::eval::Bindings;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Which optimizations the executor may use for one SELECT.
///
/// The default enables everything; [`PlanOptions::baseline`] disables
/// everything, reproducing the naive pre-planner executor (full scans,
/// nested-loop joins, full sorts). Benches and the equivalence property
/// suite run the same query under both and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Use hash joins for equi-join conjuncts.
    pub hash_join: bool,
    /// Push WHERE/ON conjuncts below joins.
    pub pushdown: bool,
    /// Use index probes for scans.
    pub index_paths: bool,
    /// Use a bounded heap for `ORDER BY … LIMIT k`.
    pub topk: bool,
    /// Reorder multi-way inner joins by the statistics cost model.
    pub reorder: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            hash_join: true,
            pushdown: true,
            index_paths: true,
            topk: true,
            reorder: true,
        }
    }
}

impl PlanOptions {
    /// Everything on (the production configuration).
    pub fn all() -> PlanOptions {
        PlanOptions::default()
    }

    /// Everything off: full scans, nested-loop joins, full sorts. This is
    /// the reference executor the optimized plans are checked against.
    pub fn baseline() -> PlanOptions {
        PlanOptions {
            hash_join: false,
            pushdown: false,
            index_paths: false,
            topk: false,
            reorder: false,
        }
    }

    /// The process-wide options, read once from the environment: set
    /// `DBGW_HASH_JOIN`, `DBGW_PUSHDOWN`, `DBGW_INDEX_PATHS`, `DBGW_TOPK` or
    /// `DBGW_REORDER` to `0`/`off`/`false` to disable an optimization for
    /// A/B comparison.
    pub fn from_env() -> PlanOptions {
        static OPTS: OnceLock<PlanOptions> = OnceLock::new();
        *OPTS.get_or_init(|| {
            let on = |var: &str| {
                !matches!(
                    std::env::var(var).as_deref(),
                    Ok("0") | Ok("off") | Ok("false")
                )
            };
            PlanOptions {
                hash_join: on("DBGW_HASH_JOIN"),
                pushdown: on("DBGW_PUSHDOWN"),
                index_paths: on("DBGW_INDEX_PATHS"),
                topk: on("DBGW_TOPK"),
                reorder: on("DBGW_REORDER"),
            }
        })
    }
}

/// Per-thread execution counters, accumulated by the executor.
///
/// Tests and benches call [`reset_thread_stats`] before a query and
/// [`thread_stats`] after to assert plan behavior (e.g. that a join on an
/// indexed base no longer scans the whole heap). The executor only ever
/// adds; it never resets, so recursive subquery execution accumulates into
/// the same counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Rows fetched from heaps (probe candidates + full-scan rows).
    pub rows_scanned: u64,
    /// Join steps executed with the hash strategy.
    pub hash_joins: u64,
    /// Join steps executed with the nested-loop strategy.
    pub nested_joins: u64,
    /// WHERE conjuncts placed below the residual tail of a join query.
    pub pushed_conjuncts: u64,
    /// Sorts satisfied by a bounded top-k heap.
    pub topk_sorts: u64,
}

thread_local! {
    static STATS: RefCell<PlanStats> = const { RefCell::new(PlanStats {
        rows_scanned: 0,
        hash_joins: 0,
        nested_joins: 0,
        pushed_conjuncts: 0,
        topk_sorts: 0,
    }) };
}

/// Zero this thread's [`PlanStats`].
pub fn reset_thread_stats() {
    STATS.with(|s| *s.borrow_mut() = PlanStats::default());
}

/// A copy of this thread's [`PlanStats`].
pub fn thread_stats() -> PlanStats {
    STATS.with(|s| *s.borrow())
}

/// Mutate this thread's stats (executor-internal).
pub(crate) fn record(f: impl FnOnce(&mut PlanStats)) {
    STATS.with(|s| f(&mut s.borrow_mut()));
}

/// One table scan: the conjuncts to evaluate per candidate row. The executor
/// additionally tries an index probe over these conjuncts.
#[derive(Debug, Default)]
pub(crate) struct ScanPlan<'a> {
    /// Conjuncts referencing only this table (evaluated with table-local
    /// bindings against the bare heap row).
    pub filters: Vec<&'a Expr>,
}

/// One join step.
#[derive(Debug, Default)]
pub(crate) struct JoinPlan<'a> {
    /// The joined table's scan (pre-filtered by pushed conjuncts).
    pub scan: ScanPlan<'a>,
    /// Equi-join keys as `(left-side, right-side)` expression pairs. The
    /// left side references only already-bound tables; the right side only
    /// the joined table.
    pub keys: Vec<(&'a Expr, &'a Expr)>,
    /// Per-pair predicates: non-equi ON conjuncts, plus — for LEFT OUTER —
    /// every ON conjunct that could not be pushed to the right scan.
    pub residual: Vec<&'a Expr>,
    /// Inner joins only: ON conjuncts over already-bound tables, applied to
    /// the left side once before pairing.
    pub left_filters: Vec<&'a Expr>,
    /// WHERE conjuncts applied to the combined rows right after this join
    /// (the earliest sound point for predicates over a LEFT OUTER side, or
    /// over multiple tables).
    pub post_filters: Vec<&'a Expr>,
    /// Whether the executor should run this step as a hash join.
    pub use_hash: bool,
}

/// A full SELECT plan: where each conjunct runs and which join strategy each
/// step uses. Borrowed from the (possibly subquery-rewritten) AST.
#[derive(Debug, Default)]
pub(crate) struct SelectPlan<'a> {
    /// The base table scan.
    pub base: ScanPlan<'a>,
    /// One entry per `sel.joins` element, in order.
    pub joins: Vec<JoinPlan<'a>>,
    /// WHERE conjuncts evaluated on fully-joined rows (the pre-planner
    /// behavior; also the home of anything unclassifiable).
    pub residual: Vec<&'a Expr>,
    /// How many WHERE conjuncts were placed below the residual tail.
    pub pushed_where: usize,
    /// `ORDER BY` bound: keep only the best `offset + limit` rows.
    pub topk: Option<usize>,
}

/// Split a conjunction into its AND-ed parts.
pub(crate) fn flatten_and<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            flatten_and(lhs, out);
            flatten_and(rhs, out);
        }
        other => out.push(other),
    }
}

/// Bitmask of the tables (by FROM-clause position) `expr` references, or
/// `None` when the expression cannot be classified (unresolvable columns,
/// aggregates, subqueries, >64 tables).
pub(crate) fn conjunct_mask(expr: &Expr, bindings: &Bindings) -> Option<u64> {
    fn walk(e: &Expr, bindings: &Bindings, mask: &mut u64) -> bool {
        match e {
            Expr::Column(c) => {
                let Ok(pos) = bindings.resolve(c) else {
                    return false;
                };
                let Some(t) = bindings.table_of_position(pos) else {
                    return false;
                };
                if t >= 64 {
                    return false;
                }
                *mask |= 1 << t;
                true
            }
            Expr::Literal(_) | Expr::Param(_) => true,
            Expr::Neg(i) | Expr::Not(i) => walk(i, bindings, mask),
            Expr::Binary { lhs, rhs, .. } => walk(lhs, bindings, mask) && walk(rhs, bindings, mask),
            Expr::Like { expr, pattern, .. } => {
                walk(expr, bindings, mask) && walk(pattern, bindings, mask)
            }
            Expr::IsNull { expr, .. } => walk(expr, bindings, mask),
            Expr::InList { expr, list, .. } => {
                walk(expr, bindings, mask) && list.iter().all(|e| walk(e, bindings, mask))
            }
            Expr::Between { expr, lo, hi, .. } => {
                walk(expr, bindings, mask) && walk(lo, bindings, mask) && walk(hi, bindings, mask)
            }
            Expr::Func { args, .. } => args.iter().all(|a| walk(a, bindings, mask)),
            Expr::Case {
                operand,
                arms,
                otherwise,
            } => {
                operand.as_ref().is_none_or(|o| walk(o, bindings, mask))
                    && arms
                        .iter()
                        .all(|(w, t)| walk(w, bindings, mask) && walk(t, bindings, mask))
                    && otherwise.as_ref().is_none_or(|e| walk(e, bindings, mask))
            }
            Expr::Cast { expr, .. } => walk(expr, bindings, mask),
            // Aggregates need group context; subqueries should have been
            // rewritten away; windows see the whole row set — in all cases
            // refuse to classify.
            Expr::Agg { .. }
            | Expr::Subquery(_)
            | Expr::InSelect { .. }
            | Expr::Exists { .. }
            | Expr::Window(_) => false,
        }
    }
    let mut mask = 0u64;
    walk(expr, bindings, &mut mask).then_some(mask)
}

/// If `conj` is `l = r` with `l` over tables in `left_bits` and `r` over the
/// table in `right_bit` (either way round), return the `(left, right)` pair.
fn split_equi<'a>(
    conj: &'a Expr,
    bindings: &Bindings,
    left_bits: u64,
    right_bit: u64,
) -> Option<(&'a Expr, &'a Expr)> {
    let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = conj
    else {
        return None;
    };
    let ml = conjunct_mask(lhs, bindings)?;
    let mr = conjunct_mask(rhs, bindings)?;
    if ml != 0 && ml & !left_bits == 0 && mr != 0 && mr & !right_bit == 0 {
        Some((lhs, rhs))
    } else if mr != 0 && mr & !left_bits == 0 && ml != 0 && ml & !right_bit == 0 {
        Some((rhs, lhs))
    } else {
        None
    }
}

/// Classify every ON and WHERE conjunct of `sel` and pick join strategies.
///
/// `bindings` must be the full FROM-clause scope (base + all joins).
pub(crate) fn plan_select<'a>(
    sel: &'a Select,
    bindings: &Bindings,
    opts: &PlanOptions,
) -> SelectPlan<'a> {
    let mut plan = SelectPlan {
        joins: sel.joins.iter().map(|_| JoinPlan::default()).collect(),
        ..SelectPlan::default()
    };
    plan.topk = if opts.topk && !sel.order_by.is_empty() {
        sel.limit.map(|l| l.saturating_add(sel.offset.unwrap_or(0)))
    } else {
        None
    };

    let mut where_conjs = Vec::new();
    if let Some(w) = &sel.where_clause {
        flatten_and(w, &mut where_conjs);
    }
    if sel.from.is_none() {
        plan.residual = where_conjs;
        return plan;
    }

    // ON conjuncts, per join.
    for (j, join) in sel.joins.iter().enumerate() {
        let right_bit = 1u64 << (j + 1).min(63);
        let left_bits = right_bit - 1;
        let mut on_conjs = Vec::new();
        if let Some(on) = &join.on {
            flatten_and(on, &mut on_conjs);
        }
        let jp = &mut plan.joins[j];
        for conj in on_conjs {
            match conjunct_mask(conj, bindings) {
                // References a table not yet bound at this join (or is
                // unclassifiable): evaluate per pair, like the old executor.
                Some(m) if m & !(left_bits | right_bit) != 0 => jp.residual.push(conj),
                None => jp.residual.push(conj),
                // Right-table-only: filter the joined table's scan. Sound
                // even for LEFT OUTER — a right row failing ON can never
                // match, so removing it early only changes when the left row
                // gets NULL-padded, not whether.
                Some(m) if m != 0 && m & !right_bit == 0 => {
                    if opts.pushdown {
                        jp.scan.filters.push(conj);
                    } else {
                        jp.residual.push(conj);
                    }
                }
                // Left-only or constant: for an inner join, filter the left
                // side once instead of per pair. For LEFT OUTER a failing
                // left row must still survive NULL-padded, so it stays a
                // per-pair residual.
                Some(m) if m & right_bit == 0 => {
                    if m != 0 && opts.pushdown && !join.left_outer {
                        jp.left_filters.push(conj);
                    } else {
                        jp.residual.push(conj);
                    }
                }
                // Spans both sides: an equi conjunct becomes a hash key.
                Some(_) => {
                    if opts.hash_join {
                        if let Some(pair) = split_equi(conj, bindings, left_bits, right_bit) {
                            jp.keys.push(pair);
                            continue;
                        }
                    }
                    jp.residual.push(conj);
                }
            }
        }
        jp.use_hash = opts.hash_join && !jp.keys.is_empty();
    }

    // WHERE conjuncts.
    for conj in where_conjs {
        if !opts.pushdown {
            plan.residual.push(conj);
            continue;
        }
        match conjunct_mask(conj, bindings) {
            Some(1) => {
                plan.base.filters.push(conj);
                plan.pushed_where += 1;
            }
            Some(m) if m != 0 && m.count_ones() == 1 => {
                let j = m.trailing_zeros() as usize - 1;
                if sel.joins[j].left_outer {
                    // A predicate over the nullable side must see the
                    // NULL-padded rows (think `b.x IS NULL`): apply it right
                    // after the join, never below it.
                    plan.joins[j].post_filters.push(conj);
                } else {
                    plan.joins[j].scan.filters.push(conj);
                }
                plan.pushed_where += 1;
            }
            Some(m) if m != 0 => {
                // Multi-table: anchor at the last join it references.
                let t_max = 63 - m.leading_zeros() as usize;
                let j = t_max - 1;
                if opts.hash_join && !sel.joins[j].left_outer {
                    let right_bit = 1u64 << t_max;
                    if let Some(pair) = split_equi(conj, bindings, right_bit - 1, right_bit) {
                        plan.joins[j].keys.push(pair);
                        plan.joins[j].use_hash = true;
                        plan.pushed_where += 1;
                        continue;
                    }
                }
                plan.joins[j].post_filters.push(conj);
                plan.pushed_where += 1;
            }
            // Constants and unclassifiable conjuncts: evaluate at the tail.
            _ => plan.residual.push(conj),
        }
    }
    plan
}

/// The `k` smallest of `0..n` under `cmp`, returned in ascending `cmp`
/// order, via a bounded max-heap — O(n log k) and O(k) memory.
///
/// `cmp` must be a total order; the executor passes "sort keys, then
/// original index", which makes the result exactly equal to a stable full
/// sort followed by `take(k)`.
pub(crate) fn top_k_indices(
    n: usize,
    k: usize,
    cmp: &dyn Fn(usize, usize) -> Ordering,
) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    // `heap` is a max-heap: heap[0] is the worst of the current best-k.
    let mut heap: Vec<usize> = Vec::with_capacity(k);
    let sift_up = |heap: &mut Vec<usize>, mut i: usize| {
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp(heap[i], heap[parent]) == Ordering::Greater {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    };
    let sift_down = |heap: &mut Vec<usize>| {
        let len = heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < len && cmp(heap[l], heap[largest]) == Ordering::Greater {
                largest = l;
            }
            if r < len && cmp(heap[r], heap[largest]) == Ordering::Greater {
                largest = r;
            }
            if largest == i {
                break;
            }
            heap.swap(i, largest);
            i = largest;
        }
    };
    for i in 0..n {
        if heap.len() < k {
            heap.push(i);
            let last = heap.len() - 1;
            sift_up(&mut heap, last);
        } else if cmp(i, heap[0]) == Ordering::Less {
            heap[0] = i;
            sift_down(&mut heap);
        }
    }
    heap.sort_by(|&a, &b| cmp(a, b));
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;

    fn two_table_bindings() -> Bindings {
        let mut b = Bindings::single("a", vec!["x".into(), "y".into()]);
        b.push_table("b", vec!["x".into(), "z".into()]);
        b
    }

    fn select(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn masks_classify_by_table() {
        let b = two_table_bindings();
        let sel = select("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y = 1 AND b.z > 2 AND 1 = 1");
        let mut conjs = Vec::new();
        flatten_and(sel.where_clause.as_ref().unwrap(), &mut conjs);
        assert_eq!(conjunct_mask(conjs[0], &b), Some(0b01));
        assert_eq!(conjunct_mask(conjs[1], &b), Some(0b10));
        assert_eq!(conjunct_mask(conjs[2], &b), Some(0));
        assert_eq!(
            conjunct_mask(sel.joins[0].on.as_ref().unwrap(), &b),
            Some(0b11)
        );
    }

    #[test]
    fn plan_pushes_filters_and_extracts_keys() {
        let b = two_table_bindings();
        let sel = select(
            "SELECT * FROM a JOIN b ON a.x = b.x AND b.z > 2 AND a.y < 9 \
             WHERE a.y = 1 AND b.z < 100 AND a.x + b.z = 5",
        );
        let plan = plan_select(&sel, &b, &PlanOptions::all());
        assert_eq!(plan.joins[0].keys.len(), 1);
        assert!(plan.joins[0].use_hash);
        assert_eq!(plan.joins[0].scan.filters.len(), 2); // b.z > 2, b.z < 100
        assert_eq!(plan.joins[0].left_filters.len(), 1); // a.y < 9
        assert_eq!(plan.joins[0].post_filters.len(), 1); // a.x + b.z = 5 (non-equi)
        assert_eq!(plan.base.filters.len(), 1); // a.y = 1
        assert!(plan.residual.is_empty());
        assert_eq!(plan.pushed_where, 3);
    }

    #[test]
    fn left_outer_blocks_pushdown_of_nullable_side() {
        let b = two_table_bindings();
        let sel = select("SELECT * FROM a LEFT JOIN b ON a.x = b.x AND a.y = 1 WHERE b.z IS NULL");
        let plan = plan_select(&sel, &b, &PlanOptions::all());
        // The WHERE predicate over the nullable side becomes a post-filter.
        assert!(plan.joins[0].scan.filters.is_empty());
        assert_eq!(plan.joins[0].post_filters.len(), 1);
        // The left-only ON conjunct stays residual for LEFT OUTER.
        assert!(plan.joins[0].left_filters.is_empty());
        assert_eq!(plan.joins[0].residual.len(), 1);
        assert_eq!(plan.joins[0].keys.len(), 1);
    }

    #[test]
    fn baseline_plan_keeps_everything_residual() {
        let b = two_table_bindings();
        let sel = select("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y = 1");
        let plan = plan_select(&sel, &b, &PlanOptions::baseline());
        assert!(!plan.joins[0].use_hash);
        assert!(plan.joins[0].keys.is_empty());
        assert_eq!(plan.joins[0].residual.len(), 1);
        assert_eq!(plan.residual.len(), 1);
        assert_eq!(plan.pushed_where, 0);
    }

    #[test]
    fn where_equi_conjunct_becomes_hash_key_for_inner_join() {
        let b = two_table_bindings();
        let sel = select("SELECT * FROM a JOIN b WHERE a.x = b.x");
        let plan = plan_select(&sel, &b, &PlanOptions::all());
        assert!(plan.joins[0].use_hash);
        assert_eq!(plan.joins[0].keys.len(), 1);
        assert!(plan.residual.is_empty());
    }

    #[test]
    fn topk_bound_includes_offset() {
        let b = Bindings::single("a", vec!["x".into()]);
        let sel = select("SELECT x FROM a ORDER BY x LIMIT 10 OFFSET 5");
        let plan = plan_select(&sel, &b, &PlanOptions::all());
        assert_eq!(plan.topk, Some(15));
        let plan = plan_select(&sel, &b, &PlanOptions::baseline());
        assert_eq!(plan.topk, None);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let data = [5, 3, 9, 1, 3, 7, 0, 3, 8, 2];
        let cmp = |a: usize, b: usize| data[a].cmp(&data[b]).then(a.cmp(&b));
        for k in 0..=data.len() + 2 {
            let got = top_k_indices(data.len(), k, &cmp);
            let mut want: Vec<usize> = (0..data.len()).collect();
            want.sort_by(|&a, &b| cmp(a, b));
            want.truncate(k);
            assert_eq!(got, want, "k={k}");
        }
    }
}
