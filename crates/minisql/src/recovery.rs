//! Crash recovery: scan the redo log, truncate the torn tail, replay.
//!
//! Runs once at [`Database::open`](crate::Database::open), *before* the
//! write-ahead log is reopened for appending. The contract with the commit
//! protocol in `db.rs` is simple:
//!
//! * every record in the log was written whole and checksummed before any
//!   client saw the statement succeed, so replaying the valid prefix
//!   reconstructs exactly the acknowledged history;
//! * a crash mid-write leaves at most a **torn tail** — a final record with
//!   a short frame, a short payload, or a checksum mismatch — which by the
//!   same argument was never acknowledged and is safe to cut off.
//!
//! Replay is **idempotent**: row records force-set images by [`RowId`]
//! (`Heap::put_at`), deletes of missing rows are no-ops, and DDL records are
//! skipped when their object already exists (or, for drops, is already
//! gone). Replaying a log twice therefore lands in the same state as
//! replaying it once — which is also what makes a checkpoint (a rewritten
//! log of base records, see [`crate::checkpoint`]) interchangeable with the
//! history it replaced.
//!
//! Row replay bypasses index maintenance entirely; one
//! [`DbState::rebuild_indexes`] pass at the end re-derives every index from
//! its heap. An error in that pass — or a DDL record that fails to apply —
//! means the log is corrupt beyond a torn tail, and recovery refuses to
//! open the database rather than serve from a half-replayed state.
//!
//! [`RowId`]: crate::storage::RowId
//! [`DbState::rebuild_indexes`]: crate::state::DbState::rebuild_indexes

use crate::ast::Statement;
use crate::error::{SqlError, SqlResult};
use crate::parser::parse;
use crate::state::DbState;
use crate::wal::{decode_payload, WalOp, FRAME_LEN, MAGIC};
use std::path::Path;

/// What a scan of the log bytes found.
pub struct ScanResult {
    /// The decoded records of the valid prefix, in append order.
    pub records: Vec<Vec<WalOp>>,
    /// Length of the valid prefix (header included): the offset the file
    /// must be truncated to before appending resumes.
    pub valid_bytes: u64,
    /// Whether anything past `valid_bytes` had to be discarded.
    pub truncated: bool,
}

/// Scan raw log bytes into records, stopping at the first torn or corrupt
/// frame. Never fails: a file of garbage simply yields an empty valid
/// prefix (`valid_bytes` 0, so even the header is rewritten).
pub fn scan_log(bytes: &[u8]) -> ScanResult {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC[..] {
        return ScanResult {
            records: Vec::new(),
            valid_bytes: 0,
            truncated: !bytes.is_empty(),
        };
    }
    let mut pos = MAGIC.len();
    let mut records = Vec::new();
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_LEN {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        if rest.len() - FRAME_LEN < len {
            break; // torn payload
        }
        let payload = &rest[FRAME_LEN..FRAME_LEN + len];
        if dbgw_cache::fnv1a_64(payload) != checksum {
            break; // corrupt (bit flip, or a reused-length torn write)
        }
        let Some(ops) = decode_payload(payload) else {
            break; // checksum collided with garbage; treat as torn
        };
        records.push(ops);
        pos += FRAME_LEN + len;
    }
    ScanResult {
        truncated: pos < bytes.len(),
        valid_bytes: pos as u64,
        records,
    }
}

/// Apply one redo op to a recovering state. Row ops against a table that
/// does not (yet/anymore) exist are skipped — on a second replay pass a
/// later `DROP TABLE` has already been applied, so these are exactly the
/// ops whose effects that drop erased.
fn replay_op(state: &mut DbState, op: &WalOp) -> SqlResult<()> {
    match op {
        WalOp::Insert { table, id, row } | WalOp::Update { table, id, row } => {
            match state.table_mut(table) {
                Ok(t) => t.heap.put_at(*id, row.clone()),
                Err(_) => return Ok(()),
            }
            state.bump_version(table);
        }
        WalOp::Delete { table, id } => {
            match state.table_mut(table) {
                Ok(t) => {
                    t.heap.delete(*id);
                }
                Err(_) => return Ok(()),
            }
            state.bump_version(table);
        }
        WalOp::Ddl { sql } => {
            let stmt = parse(sql)?;
            let already_applied = match &stmt {
                Statement::CreateTable { name, .. } => {
                    state.tables.contains_key(&name.to_ascii_lowercase())
                }
                Statement::CreateIndex { name, .. } => {
                    state.indexes.contains_key(&name.to_ascii_lowercase())
                }
                Statement::DropTable { name, .. } => {
                    !state.tables.contains_key(&name.to_ascii_lowercase())
                }
                Statement::DropIndex { name } => {
                    !state.indexes.contains_key(&name.to_ascii_lowercase())
                }
                _ => {
                    return Err(SqlError::syntax(format!(
                        "wal: non-DDL statement in a Ddl record: {sql}"
                    )))
                }
            };
            if !already_applied {
                let mut undo = Vec::new();
                crate::db::apply_mutation(
                    state,
                    stmt,
                    &[],
                    &mut undo,
                    &dbgw_obs::RequestCtx::unbounded(),
                )?;
            }
        }
    }
    Ok(())
}

/// Replay decoded records into a fresh [`DbState`], rebuilding indexes at
/// the end. An error means the (checksum-valid) log is semantically corrupt.
pub fn replay(records: &[Vec<WalOp>]) -> SqlResult<DbState> {
    let mut state = DbState::default();
    for record in records {
        for op in record {
            replay_op(&mut state, op)?;
        }
    }
    state.rebuild_indexes()?;
    state.rebuild_stats();
    Ok(state)
}

/// Recover the database state from the log at `path`: scan, truncate the
/// torn tail in place, replay. A missing file is an empty database.
pub fn recover(path: &Path) -> SqlResult<DbState> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(DbState::default()),
        Err(e) => return Err(SqlError::io("read write-ahead log", &e)),
    };
    let scan = scan_log(&bytes);
    if scan.truncated {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| SqlError::io("open write-ahead log for truncation", &e))?;
        file.set_len(scan.valid_bytes)
            .map_err(|e| SqlError::io("truncate torn wal tail", &e))?;
        file.sync_data()
            .map_err(|e| SqlError::io("sync truncated wal", &e))?;
    }
    replay(&scan.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RowId;
    use crate::types::Value;
    use crate::wal::encode_record;

    fn log_bytes(records: &[Vec<WalOp>]) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    fn sample_records() -> Vec<Vec<WalOp>> {
        vec![
            vec![WalOp::Ddl {
                sql: "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20))".into(),
            }],
            vec![
                WalOp::Insert {
                    table: "t".into(),
                    id: RowId(0),
                    row: vec![Value::Int(1), Value::Text("a".into())],
                },
                WalOp::Insert {
                    table: "t".into(),
                    id: RowId(1),
                    row: vec![Value::Int(2), Value::Text("b".into())],
                },
            ],
            vec![WalOp::Update {
                table: "t".into(),
                id: RowId(0),
                row: vec![Value::Int(1), Value::Text("a2".into())],
            }],
            vec![WalOp::Delete {
                table: "t".into(),
                id: RowId(1),
            }],
        ]
    }

    #[test]
    fn scan_round_trips_whole_log() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        let scan = scan_log(&bytes);
        assert!(!scan.truncated);
        assert_eq!(scan.valid_bytes, bytes.len() as u64);
        assert_eq!(scan.records, records);
    }

    #[test]
    fn scan_cuts_torn_tail_at_every_length() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        // Lengths of the valid prefixes after 0..=4 whole records.
        let mut boundaries = vec![MAGIC.len()];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + encode_record(r).len());
        }
        for cut in 0..bytes.len() {
            let scan = scan_log(&bytes[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count();
            if whole == 0 {
                // Not even the header survived.
                assert_eq!(scan.valid_bytes, 0, "cut={cut}");
                assert!(scan.records.is_empty());
            } else {
                assert_eq!(
                    scan.valid_bytes as usize,
                    boundaries[whole - 1],
                    "cut={cut}"
                );
                assert_eq!(scan.records.len(), whole - 1, "cut={cut}");
            }
            assert_eq!(scan.truncated, scan.valid_bytes as usize != cut);
        }
    }

    #[test]
    fn scan_stops_at_bit_flip() {
        let records = sample_records();
        let mut bytes = log_bytes(&records);
        let r0 = encode_record(&records[0]).len();
        // Flip one payload bit inside the second record.
        let target = MAGIC.len() + r0 + FRAME_LEN + 3;
        bytes[target] ^= 0x40;
        let scan = scan_log(&bytes);
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_bytes as usize, MAGIC.len() + r0);
    }

    #[test]
    fn scan_rejects_bad_magic() {
        let scan = scan_log(b"NOTALOG!rest");
        assert_eq!(scan.valid_bytes, 0);
        assert!(scan.truncated);
        assert!(scan_log(b"").valid_bytes == 0 && !scan_log(b"").truncated);
    }

    #[test]
    fn replay_reconstructs_state_and_indexes() {
        let state = replay(&sample_records()).unwrap();
        let t = state.table("t").unwrap();
        assert_eq!(t.heap.len(), 1);
        assert_eq!(
            t.heap.get(RowId(0)),
            Some(&vec![Value::Int(1), Value::Text("a2".into())])
        );
        assert_eq!(t.heap.get(RowId(1)), None);
        // The PK's system unique index was rebuilt and is queryable.
        let idx = state.index_on("t", 0).expect("pk index");
        assert_eq!(idx.lookup(&Value::Int(1)), vec![RowId(0)]);
    }

    #[test]
    fn replay_twice_equals_replay_once() {
        let records = sample_records();
        let mut doubled = records.clone();
        doubled.extend(records.clone());
        let once = replay(&records).unwrap();
        let twice = replay(&doubled).unwrap();
        assert_eq!(once.table("t").unwrap().heap.len(), 1);
        assert_eq!(
            once.table("t").unwrap().heap.get(RowId(0)),
            twice.table("t").unwrap().heap.get(RowId(0))
        );
        assert_eq!(
            twice.table("t").unwrap().heap.len(),
            once.table("t").unwrap().heap.len()
        );
    }

    #[test]
    fn replay_skips_ops_for_dropped_tables() {
        let mut records = sample_records();
        records.push(vec![WalOp::Ddl {
            sql: "DROP TABLE t".into(),
        }]);
        // Second pass over the same history: the row ops now target a table
        // the (already-replayed) drop removed — they must be ignored.
        let mut doubled = records.clone();
        doubled.extend(records.clone());
        let state = replay(&doubled).unwrap();
        assert!(state.table("t").is_err());
    }

    #[test]
    fn recover_truncates_file_in_place() {
        let dir = std::env::temp_dir().join(format!("dbgw-recovery-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncate.log");
        let records = sample_records();
        let mut bytes = log_bytes(&records);
        let full = bytes.len();
        bytes.extend_from_slice(&[0xAB; 7]); // torn garbage tail
        std::fs::write(&path, &bytes).unwrap();
        let state = recover(&path).unwrap();
        assert_eq!(state.table("t").unwrap().heap.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        // Recovering the now-clean file changes nothing.
        let again = recover(&path).unwrap();
        assert_eq!(again.table("t").unwrap().heap.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_missing_file_is_empty_database() {
        let state = recover(Path::new("/nonexistent/dbgw/wal.log")).unwrap();
        assert!(state.tables.is_empty());
    }
}
