//! Table schemas and the catalog.

use crate::ast::ColumnDef;
use crate::error::{SqlCode, SqlError, SqlResult};
use crate::types::{SqlType, Value};

/// A column in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (matching is case-insensitive, spelling preserved).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Participates in a unique index (PRIMARY KEY or UNIQUE).
    pub unique: bool,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Index of the PRIMARY KEY column, if declared.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    /// Build a schema from parsed column definitions.
    pub fn from_defs(name: &str, defs: &[ColumnDef]) -> SqlResult<TableSchema> {
        if defs.is_empty() {
            return Err(SqlError::syntax("a table needs at least one column"));
        }
        let mut primary_key = None;
        let mut columns = Vec::with_capacity(defs.len());
        for (i, def) in defs.iter().enumerate() {
            if columns
                .iter()
                .any(|c: &Column| c.name.eq_ignore_ascii_case(&def.name))
            {
                return Err(SqlError::syntax(format!(
                    "duplicate column name {}",
                    def.name
                )));
            }
            if def.primary_key {
                if primary_key.is_some() {
                    return Err(SqlError::syntax("multiple PRIMARY KEY columns"));
                }
                primary_key = Some(i);
            }
            columns.push(Column {
                name: def.name.clone(),
                ty: def.ty,
                not_null: def.not_null,
                unique: def.primary_key || def.unique,
            });
        }
        Ok(TableSchema {
            name: name.to_owned(),
            columns,
            primary_key,
        })
    }

    /// Find a column's ordinal by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`column_index`](Self::column_index) but erroring with -206.
    pub fn require_column(&self, name: &str) -> SqlResult<usize> {
        self.column_index(name)
            .ok_or_else(|| SqlError::no_such_column(name))
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Validate and coerce a full row for storage: arity, typing, NOT NULL.
    pub fn check_row(&self, row: Vec<Value>) -> SqlResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(SqlError::syntax(format!(
                "table {} has {} columns but {} values were supplied",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.columns) {
            let value = value.coerce_to(col.ty)?;
            if value.is_null() && col.not_null {
                return Err(SqlError::new(
                    SqlCode::NOT_NULL_VIOLATION,
                    format!("column {} does not allow NULL", col.name),
                ));
            }
            out.push(value);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "id".into(),
                ty: SqlType::Integer,
                not_null: true,
                primary_key: true,
                unique: false,
            },
            ColumnDef {
                name: "name".into(),
                ty: SqlType::Varchar,
                not_null: false,
                primary_key: false,
                unique: false,
            },
        ]
    }

    #[test]
    fn builds_schema_with_pk() {
        let s = TableSchema::from_defs("t", &defs()).unwrap();
        assert_eq!(s.primary_key, Some(0));
        assert!(s.columns[0].unique);
        assert_eq!(s.column_index("NAME"), Some(1));
    }

    #[test]
    fn rejects_duplicate_columns() {
        let mut d = defs();
        d[1].name = "ID".into();
        assert!(TableSchema::from_defs("t", &d).is_err());
    }

    #[test]
    fn rejects_two_primary_keys() {
        let mut d = defs();
        d[1].primary_key = true;
        assert!(TableSchema::from_defs("t", &d).is_err());
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = TableSchema::from_defs("t", &defs()).unwrap();
        let row = s
            .check_row(vec![Value::Double(3.0), Value::Text("x".into())])
            .unwrap();
        assert_eq!(row[0], Value::Int(3));
        // NULL into NOT NULL pk:
        let err = s.check_row(vec![Value::Null, Value::Null]).unwrap_err();
        assert_eq!(err.code, SqlCode::NOT_NULL_VIOLATION);
        // Wrong arity:
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
    }
}
