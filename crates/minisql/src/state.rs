//! Shared database state: tables, heaps and indexes.
//!
//! One [`DbState`] is the immutable unit that readers pin: the [`crate::db`]
//! layer keeps the current state in a `SnapshotCell<DbState>` and every
//! SELECT runs against one `Arc<DbState>` for its whole lifetime, lock-free.
//!
//! Writers clone the state shallowly (tables and indexes sit behind their own
//! `Arc`s, so the clone is a map of pointers), mutate their working copy via
//! [`std::sync::Arc::make_mut`] — which deep-clones only the tables and
//! indexes the statement actually touches — and publish the result
//! atomically. Statements therefore execute against `&DbState` (queries) or
//! `&mut DbState` (DML/DDL) exactly as before; copy-on-write is hidden
//! behind the accessors here.

use crate::error::{SqlCode, SqlError, SqlResult};
use crate::index::Index;
use crate::schema::TableSchema;
use crate::stats::TableStats;
use crate::storage::{Heap, Row, RowId};
use std::collections::HashMap;
use std::sync::Arc;

/// A table: schema, heap, the names of its indexes, and planner statistics.
#[derive(Debug, Clone)]
pub struct TableData {
    /// The table schema.
    pub schema: TableSchema,
    /// Row storage.
    pub heap: Heap,
    /// Names (lowercased) of indexes over this table.
    pub index_names: Vec<String>,
    /// Planner statistics (see [`crate::stats`]); `None` until the first
    /// write builds them, or always when `DBGW_STATS=0`.
    pub stats: Option<TableStats>,
}

impl TableData {
    /// Fold one successful row mutation into the table's statistics: update
    /// incrementally while fresh, rebuild from the heap once the write
    /// threshold has passed (the mutated row is already in/out of the heap
    /// when this runs, so a rebuild sees it). Disabled stats stay `None`.
    fn stats_note(&mut self, row: &Row, inserted: bool) {
        if !crate::stats::config().enabled {
            return;
        }
        match self.stats.as_mut() {
            Some(s) if !s.stale() => {
                if inserted {
                    s.note_insert(row);
                } else {
                    s.note_delete(row);
                }
            }
            _ => self.rebuild_stats(),
        }
    }

    /// Rebuild this table's statistics from its heap in one pass.
    pub fn rebuild_stats(&mut self) {
        if !crate::stats::config().enabled {
            return;
        }
        self.stats = Some(TableStats::build(&self.schema, &self.heap));
        dbgw_obs::metrics().stats_refreshes.inc();
    }
}

/// Every table and index in the database.
///
/// `Clone` is shallow: it copies the maps of `Arc`s, not the tables
/// themselves. This is the writer's working-copy step.
#[derive(Debug, Default, Clone)]
pub struct DbState {
    /// Tables keyed by lowercased name, each behind its own `Arc` so that
    /// snapshot publication can compare entries by pointer identity and a
    /// writer's working copy shares untouched tables with the published
    /// state.
    pub tables: HashMap<String, Arc<TableData>>,
    /// Indexes keyed by lowercased name (same `Arc` sharing scheme).
    pub indexes: HashMap<String, Arc<Index>>,
    /// Per-table modification counters keyed by lowercased name, bumped on
    /// every row mutation and on CREATE/DROP TABLE. The result cache records
    /// the versions of every table a SELECT read (from the same pinned
    /// snapshot) and revalidates them at lookup, which makes table-level
    /// invalidation exact — correctness never depends on TTL. A dropped
    /// table's counter survives (and keeps rising if the table is
    /// recreated), so cached results can never resurrect across a DROP.
    pub versions: HashMap<String, u64>,
    /// Publication epoch: incremented once per published snapshot, strictly
    /// monotonic across the database's lifetime. Readers can compare epochs
    /// to order the snapshots they pinned.
    pub epoch: u64,
}

impl DbState {
    /// The modification counter for `name` (any case); 0 if never touched.
    pub fn version(&self, name: &str) -> u64 {
        self.versions
            .get(&name.to_ascii_lowercase())
            .copied()
            .unwrap_or(0)
    }

    /// Record a modification of table `name` (any case).
    pub fn bump_version(&mut self, name: &str) {
        *self.versions.entry(name.to_ascii_lowercase()).or_insert(0) += 1;
    }

    /// Case-insensitive table lookup.
    pub fn table(&self, name: &str) -> SqlResult<&TableData> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|t| &**t)
            .ok_or_else(|| SqlError::no_such_table(name))
    }

    /// Case-insensitive mutable table lookup (copy-on-write: clones the
    /// table if a snapshot still shares it).
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut TableData> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::no_such_table(name))
    }

    /// The first index over `table` whose column ordinal is `column`.
    pub fn index_on(&self, table: &str, column: usize) -> Option<&Index> {
        let t = self.tables.get(&table.to_ascii_lowercase())?;
        t.index_names
            .iter()
            .filter_map(|n| self.indexes.get(n))
            .map(|i| &**i)
            .find(|i| i.column == column)
    }

    /// Mutable index lookup by (lowercased) name, copy-on-write.
    fn index_mut(&mut self, name: &str) -> Option<&mut Index> {
        self.indexes.get_mut(name).map(Arc::make_mut)
    }

    /// Insert a validated row into `table`, maintaining every index.
    ///
    /// On a uniqueness violation the row and any partial index entries are
    /// backed out, leaving the state unchanged.
    pub fn insert_row(&mut self, table: &str, row: Row) -> SqlResult<RowId> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::no_such_table(table))?;
        let index_names = t.index_names.clone();
        let id = t.heap.insert(row);
        let row_ref = t.heap.get(id).expect("just inserted").clone();
        let mut done: Vec<String> = Vec::new();
        for name in &index_names {
            let idx = self.index_mut(name).expect("catalog consistency");
            let value = row_ref.get(idx.column).cloned().unwrap_or_default_null();
            if let Err(e) = idx.insert(&value, id) {
                // Back out.
                for undo_name in &done {
                    let undo_idx = self.index_mut(undo_name).unwrap();
                    let v = row_ref
                        .get(undo_idx.column)
                        .cloned()
                        .unwrap_or_default_null();
                    undo_idx.remove(&v, id);
                }
                Arc::make_mut(self.tables.get_mut(&key).unwrap())
                    .heap
                    .delete(id);
                return Err(e);
            }
            done.push(name.clone());
        }
        Arc::make_mut(self.tables.get_mut(&key).unwrap()).stats_note(&row_ref, true);
        self.bump_version(&key);
        Ok(id)
    }

    /// Delete a row by id, maintaining indexes. Returns the old image.
    pub fn delete_row(&mut self, table: &str, id: RowId) -> SqlResult<Option<Row>> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::no_such_table(table))?;
        let index_names = t.index_names.clone();
        let Some(old) = t.heap.delete(id) else {
            return Ok(None);
        };
        for name in &index_names {
            let idx = self.index_mut(name).expect("catalog consistency");
            let value = old.get(idx.column).cloned().unwrap_or_default_null();
            idx.remove(&value, id);
        }
        Arc::make_mut(self.tables.get_mut(&key).unwrap()).stats_note(&old, false);
        self.bump_version(&key);
        Ok(Some(old))
    }

    /// Replace a row in place, maintaining indexes. Returns the old image.
    ///
    /// On a uniqueness violation the old row is restored.
    pub fn update_row(&mut self, table: &str, id: RowId, new: Row) -> SqlResult<Row> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::no_such_table(table))?;
        let index_names = t.index_names.clone();
        let old = t.heap.update(id, new.clone()).ok_or_else(|| {
            SqlError::new(SqlCode::UNDEFINED_OBJECT, "row vanished during update")
        })?;
        // Re-key each index whose column changed.
        let mut rekeyed: Vec<String> = Vec::new();
        for name in &index_names {
            let idx = self.index_mut(name).expect("catalog consistency");
            let old_v = old.get(idx.column).cloned().unwrap_or_default_null();
            let new_v = new.get(idx.column).cloned().unwrap_or_default_null();
            if old_v == new_v {
                continue;
            }
            idx.remove(&old_v, id);
            if let Err(e) = idx.insert(&new_v, id) {
                // Restore this index and all previously rekeyed ones.
                idx.insert(&old_v, id).expect("restore old key");
                for undo_name in &rekeyed {
                    let undo_idx = self.index_mut(undo_name).unwrap();
                    let o = old.get(undo_idx.column).cloned().unwrap_or_default_null();
                    let n = new.get(undo_idx.column).cloned().unwrap_or_default_null();
                    undo_idx.remove(&n, id);
                    undo_idx.insert(&o, id).expect("restore old key");
                }
                Arc::make_mut(self.tables.get_mut(&key).unwrap())
                    .heap
                    .update(id, old.clone());
                return Err(e);
            }
            rekeyed.push(name.clone());
        }
        let t = Arc::make_mut(self.tables.get_mut(&key).unwrap());
        t.stats_note(&old, false);
        t.stats_note(&new, true);
        self.bump_version(&key);
        Ok(old)
    }

    /// Rebuild every index from its table's heap.
    ///
    /// WAL replay applies row records straight to the heaps (index
    /// maintenance during replay would be wasted work and, worse, would have
    /// to be order-sensitive); this pass re-derives the complete index
    /// contents at the end. Committed data cannot violate uniqueness, so an
    /// error here means the log itself is corrupt.
    pub fn rebuild_indexes(&mut self) -> SqlResult<()> {
        let names: Vec<String> = self.indexes.keys().cloned().collect();
        for name in names {
            let (table, column, unique) = {
                let idx = &self.indexes[&name];
                (idx.table.clone(), idx.column, idx.unique)
            };
            let mut fresh = Index::new(&name, &table, column, unique);
            if let Some(t) = self.tables.get(&table) {
                for (id, row) in t.heap.iter() {
                    let value = row.get(column).cloned().unwrap_or_default_null();
                    fresh.insert(&value, id)?;
                }
            }
            self.indexes.insert(name, Arc::new(fresh));
        }
        Ok(())
    }

    /// Rebuild every table's planner statistics from its heap.
    ///
    /// WAL replay applies row records straight to the heaps, bypassing the
    /// incremental maintenance in [`DbState::insert_row`] et al.; recovery
    /// calls this next to [`DbState::rebuild_indexes`] so a reopened
    /// database plans with the same statistics a live one would.
    pub fn rebuild_stats(&mut self) {
        if !crate::stats::config().enabled {
            return;
        }
        let names: Vec<String> = self.tables.keys().cloned().collect();
        for name in names {
            if let Some(t) = self.tables.get_mut(&name) {
                Arc::make_mut(t).rebuild_stats();
            }
        }
    }

    /// Restore a previously deleted row at its original id (rollback path).
    pub fn restore_row(&mut self, table: &str, id: RowId, row: Row) -> SqlResult<()> {
        let key = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&key)
            .map(Arc::make_mut)
            .ok_or_else(|| SqlError::no_such_table(table))?;
        let index_names = t.index_names.clone();
        t.heap.restore(id, row.clone());
        for name in &index_names {
            let idx = self.index_mut(name).expect("catalog consistency");
            let value = row.get(idx.column).cloned().unwrap_or_default_null();
            idx.insert(&value, id)
                .expect("restored row cannot violate uniqueness");
        }
        Arc::make_mut(self.tables.get_mut(&key).unwrap()).stats_note(&row, true);
        self.bump_version(&key);
        Ok(())
    }
}

/// `Option<Value>` → `Value` treating absence as NULL (short rows never occur
/// in practice; this keeps index maintenance total).
trait OrNull {
    fn unwrap_or_default_null(self) -> crate::types::Value;
}

impl OrNull for Option<crate::types::Value> {
    fn unwrap_or_default_null(self) -> crate::types::Value {
        self.unwrap_or(crate::types::Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::types::{SqlType, Value};

    fn state_with_table() -> DbState {
        let mut st = DbState::default();
        let schema = TableSchema::from_defs(
            "t",
            &[
                ColumnDef {
                    name: "id".into(),
                    ty: SqlType::Integer,
                    not_null: true,
                    primary_key: true,
                    unique: false,
                },
                ColumnDef {
                    name: "name".into(),
                    ty: SqlType::Varchar,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                },
            ],
        )
        .unwrap();
        st.tables.insert(
            "t".into(),
            Arc::new(TableData {
                schema,
                heap: Heap::new(),
                index_names: vec!["t_pk".into()],
                stats: None,
            }),
        );
        st.indexes
            .insert("t_pk".into(), Arc::new(Index::new("t_pk", "t", 0, true)));
        st
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Text(name.into())]
    }

    #[test]
    fn insert_maintains_unique_index() {
        let mut st = state_with_table();
        st.insert_row("t", row(1, "a")).unwrap();
        let err = st.insert_row("t", row(1, "b")).unwrap_err();
        assert_eq!(err.code, SqlCode::DUPLICATE_KEY);
        // The failed insert must not leave a ghost row.
        assert_eq!(st.table("t").unwrap().heap.len(), 1);
    }

    #[test]
    fn update_rekeys_index_and_rolls_back_on_conflict() {
        let mut st = state_with_table();
        let a = st.insert_row("t", row(1, "a")).unwrap();
        st.insert_row("t", row(2, "b")).unwrap();
        // Rekey 1 -> 3 is fine.
        st.update_row("t", a, row(3, "a")).unwrap();
        assert_eq!(st.index_on("t", 0).unwrap().lookup(&Value::Int(3)), vec![a]);
        // Rekey 3 -> 2 collides; state must be unchanged.
        let err = st.update_row("t", a, row(2, "a")).unwrap_err();
        assert_eq!(err.code, SqlCode::DUPLICATE_KEY);
        assert_eq!(st.index_on("t", 0).unwrap().lookup(&Value::Int(3)), vec![a]);
        assert_eq!(st.table("t").unwrap().heap.get(a), Some(&row(3, "a")));
    }

    #[test]
    fn delete_and_restore_round_trip() {
        let mut st = state_with_table();
        let a = st.insert_row("t", row(1, "a")).unwrap();
        let old = st.delete_row("t", a).unwrap().unwrap();
        assert!(st
            .index_on("t", 0)
            .unwrap()
            .lookup(&Value::Int(1))
            .is_empty());
        st.restore_row("t", a, old).unwrap();
        assert_eq!(st.index_on("t", 0).unwrap().lookup(&Value::Int(1)), vec![a]);
    }

    #[test]
    fn rebuild_indexes_rederives_from_heaps() {
        let mut st = state_with_table();
        // Write straight to the heap, bypassing index maintenance — exactly
        // what WAL replay does before its final rebuild pass.
        {
            let t = st.tables.get_mut("t").map(Arc::make_mut).unwrap();
            t.heap.put_at(RowId(0), row(1, "a"));
            t.heap.put_at(RowId(1), row(2, "b"));
        }
        assert!(st
            .index_on("t", 0)
            .unwrap()
            .lookup(&Value::Int(1))
            .is_empty());
        st.rebuild_indexes().unwrap();
        assert_eq!(
            st.index_on("t", 0).unwrap().lookup(&Value::Int(1)),
            vec![RowId(0)]
        );
        // A uniqueness violation in the heap itself means a corrupt log.
        {
            let t = st.tables.get_mut("t").map(Arc::make_mut).unwrap();
            t.heap.put_at(RowId(2), row(1, "dup"));
        }
        assert!(st.rebuild_indexes().is_err());
    }

    #[test]
    fn missing_table_is_sqlcode_204() {
        let st = DbState::default();
        assert_eq!(
            st.table("nope").unwrap_err().code,
            SqlCode::UNDEFINED_OBJECT
        );
    }

    #[test]
    fn shallow_clone_shares_untouched_tables() {
        // The copy-on-write contract db.rs relies on: cloning a DbState
        // shares table allocations; mutating one table in the clone leaves
        // every other entry pointer-identical to the original.
        let mut st = state_with_table();
        st.insert_row("t", row(1, "a")).unwrap();
        let base = st.clone();
        let mut work = base.clone();
        work.insert_row("t", row(2, "b")).unwrap();
        // Touched table diverged...
        assert!(!Arc::ptr_eq(&base.tables["t"], &work.tables["t"]));
        // ...and the original snapshot still sees one row.
        assert_eq!(base.table("t").unwrap().heap.len(), 1);
        assert_eq!(work.table("t").unwrap().heap.len(), 2);
        assert_eq!(base.version("t"), 1);
        assert_eq!(work.version("t"), 2);
    }
}
