//! Per-table column statistics for the cost-based planner.
//!
//! Every [`crate::state::TableData`] carries an optional [`TableStats`]:
//! a live row count plus, per column, null/non-null counts, a bounded
//! distinct-value estimator, min/max, and a small equi-width histogram over
//! numeric columns. Statistics are **maintained incrementally** on every
//! insert/delete (cheap counter and bucket updates) and **rebuilt from the
//! heap** once the number of writes since the last build passes a threshold
//! (`DBGW_STATS_REFRESH`, default 256) — incremental maintenance can only
//! drift (deletes cannot shrink min/max or un-set estimator bits), so the
//! periodic rebuild bounds the error.
//!
//! Because stats live inside `TableData`, they ride the copy-on-write
//! snapshot machinery for free: a writer's working copy deep-clones the
//! table (stats included) via `Arc::make_mut`, mutates privately, and the
//! publish diff-patch carries the new stats exactly as it carries the new
//! heap. A failed or panicking statement publishes nothing, so stats can
//! never poison. WAL recovery replays rows straight into the heaps and then
//! rebuilds stats in one pass, next to the index rebuild.
//!
//! The distinct estimator is linear counting over a fixed 2048-bit bitmap
//! (256 bytes/column): each value sets one FNV-hashed bit and the estimate
//! is `m · ln(m / zero_bits)`. Exact for small cardinalities, within a few
//! percent up to ~1000 distinct values — plenty for join ordering, where
//! only the *relative* magnitudes matter.

use crate::schema::TableSchema;
use crate::storage::Heap;
use crate::types::Value;
use std::sync::OnceLock;

/// Bits in the per-column distinct estimator (must be a power of two).
const ESTIMATOR_BITS: usize = 2048;

/// Statistics configuration, read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct StatsConfig {
    /// Whether statistics are maintained at all (`DBGW_STATS=0` disables).
    pub enabled: bool,
    /// Writes since the last build that trigger a full rebuild
    /// (`DBGW_STATS_REFRESH`, default 256).
    pub refresh_threshold: u64,
    /// Equi-width histogram bucket count (`DBGW_STATS_BUCKETS`, default 16).
    pub buckets: usize,
}

/// The process-wide [`StatsConfig`].
pub fn config() -> &'static StatsConfig {
    static CONFIG: OnceLock<StatsConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let enabled = !matches!(
            std::env::var("DBGW_STATS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        let parse = |var: &str, default: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        StatsConfig {
            enabled,
            refresh_threshold: parse("DBGW_STATS_REFRESH", 256),
            buckets: parse("DBGW_STATS_BUCKETS", 16) as usize,
        }
    })
}

/// Equi-width histogram over a numeric column's `[lo, hi]` range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower bound of the first bucket (at build time).
    pub lo: f64,
    /// Upper bound of the last bucket (at build time).
    pub hi: f64,
    /// Rows per bucket; values outside `[lo, hi]` clamp to the edge buckets.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn bucket_of(&self, v: f64) -> usize {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        ((frac * self.buckets.len() as f64) as isize).clamp(0, self.buckets.len() as isize - 1)
            as usize
    }

    fn add(&mut self, v: f64) {
        let b = self.bucket_of(v);
        self.buckets[b] += 1;
    }

    fn remove(&mut self, v: f64) {
        let b = self.bucket_of(v);
        self.buckets[b] = self.buckets[b].saturating_sub(1);
    }

    /// Total rows counted across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated fraction of counted rows with value `< v` (strict).
    pub fn fraction_below(&self, v: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if v <= self.lo {
            return 0.0;
        }
        if v >= self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut below = 0.0;
        for (i, &count) in self.buckets.iter().enumerate() {
            let b_lo = self.lo + width * i as f64;
            let b_hi = b_lo + width;
            if v >= b_hi {
                below += count as f64;
            } else if v > b_lo {
                below += count as f64 * (v - b_lo) / width;
                break;
            } else {
                break;
            }
        }
        (below / total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// NULL values seen.
    pub nulls: u64,
    /// Non-NULL values seen.
    pub non_null: u64,
    /// Smallest non-NULL value (cannot shrink between rebuilds).
    pub min: Option<Value>,
    /// Largest non-NULL value (cannot shrink between rebuilds).
    pub max: Option<Value>,
    /// Equi-width histogram; `None` for non-numeric columns.
    pub histogram: Option<Histogram>,
    /// Linear-counting bitmap behind [`ColumnStats::distinct`].
    bitmap: Box<[u64; ESTIMATOR_BITS / 64]>,
}

/// A value's bit in the distinct estimator. Numeric values that compare
/// SQL-equal across types (`1` vs `1.0`) hash identically, so join-key NDV
/// estimates line up even when the two sides use different numeric types.
fn estimator_bit(v: &Value) -> Option<usize> {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    match v {
        Value::Null => return None,
        Value::Int(i) => {
            feed(&[1]);
            feed(&(*i as f64).to_bits().to_le_bytes());
        }
        Value::Double(d) => {
            feed(&[1]);
            feed(&d.to_bits().to_le_bytes());
        }
        Value::Text(t) => {
            feed(&[2]);
            feed(t.as_bytes());
        }
        Value::Date(d) => {
            feed(&[3]);
            feed(&d.to_le_bytes());
        }
    }
    Some((h % ESTIMATOR_BITS as u64) as usize)
}

/// A value as a histogram coordinate (numeric and date columns only).
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        Value::Date(d) => Some(*d as f64),
        Value::Null | Value::Text(_) => None,
    }
}

impl ColumnStats {
    fn new() -> ColumnStats {
        ColumnStats {
            nulls: 0,
            non_null: 0,
            min: None,
            max: None,
            histogram: None,
            bitmap: Box::new([0u64; ESTIMATOR_BITS / 64]),
        }
    }

    fn note_value(&mut self, v: &Value) {
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.non_null += 1;
        if let Some(bit) = estimator_bit(v) {
            self.bitmap[bit / 64] |= 1 << (bit % 64);
        }
        let widen_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.compare(m).is_some_and(|o| o.is_lt()));
        if widen_min {
            self.min = Some(v.clone());
        }
        let widen_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.compare(m).is_some_and(|o| o.is_gt()));
        if widen_max {
            self.max = Some(v.clone());
        }
        if let (Some(h), Some(n)) = (self.histogram.as_mut(), numeric(v)) {
            h.add(n);
        }
    }

    fn forget_value(&mut self, v: &Value) {
        // Deletes can only decrement counters; min/max and estimator bits
        // stay conservative until the next rebuild.
        if v.is_null() {
            self.nulls = self.nulls.saturating_sub(1);
            return;
        }
        self.non_null = self.non_null.saturating_sub(1);
        if let (Some(h), Some(n)) = (self.histogram.as_mut(), numeric(v)) {
            h.remove(n);
        }
    }

    /// Estimated number of distinct non-NULL values (linear counting).
    pub fn distinct(&self) -> u64 {
        if self.non_null == 0 {
            return 0;
        }
        let zeros: u32 = self.bitmap.iter().map(|w| w.count_zeros()).sum();
        let m = ESTIMATOR_BITS as f64;
        let estimate = if zeros == 0 {
            self.non_null
        } else {
            (m * (m / f64::from(zeros)).ln()).round() as u64
        };
        estimate.clamp(1, self.non_null)
    }
}

/// Statistics for one table: live row count plus per-column stats.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live rows (incremented/decremented per write).
    pub rows: u64,
    /// Per-column stats, schema order.
    pub columns: Vec<ColumnStats>,
    /// Writes folded in incrementally since the last full build; past
    /// [`StatsConfig::refresh_threshold`] the owner rebuilds from the heap.
    pub writes_since_build: u64,
}

impl TableStats {
    /// Build fresh statistics from a table's heap in one pass.
    pub fn build(schema: &TableSchema, heap: &Heap) -> TableStats {
        let width = schema.width();
        let mut columns: Vec<ColumnStats> = (0..width).map(|_| ColumnStats::new()).collect();
        let mut rows = 0u64;
        // First pass: counters, min/max, distinct bitmap.
        for (_, row) in heap.iter() {
            rows += 1;
            for (i, col) in columns.iter_mut().enumerate() {
                col.note_value(row.get(i).unwrap_or(&Value::Null));
            }
        }
        // Second pass fills equi-width histograms, now that the numeric
        // range of each column is known.
        let buckets = config().buckets;
        for col in columns.iter_mut() {
            let (Some(lo), Some(hi)) = (
                col.min.as_ref().and_then(numeric),
                col.max.as_ref().and_then(numeric),
            ) else {
                continue;
            };
            col.histogram = Some(Histogram {
                lo,
                hi,
                buckets: vec![0; buckets],
            });
        }
        if columns.iter().any(|c| c.histogram.is_some()) {
            for (_, row) in heap.iter() {
                for (i, col) in columns.iter_mut().enumerate() {
                    if let (Some(h), Some(n)) =
                        (col.histogram.as_mut(), row.get(i).and_then(numeric))
                    {
                        h.add(n);
                    }
                }
            }
        }
        TableStats {
            rows,
            columns,
            writes_since_build: 0,
        }
    }

    /// Fold one inserted row in.
    pub fn note_insert(&mut self, row: &[Value]) {
        self.rows += 1;
        self.writes_since_build += 1;
        for (i, col) in self.columns.iter_mut().enumerate() {
            col.note_value(row.get(i).unwrap_or(&Value::Null));
        }
    }

    /// Fold one deleted row out.
    pub fn note_delete(&mut self, row: &[Value]) {
        self.rows = self.rows.saturating_sub(1);
        self.writes_since_build += 1;
        for (i, col) in self.columns.iter_mut().enumerate() {
            col.forget_value(row.get(i).unwrap_or(&Value::Null));
        }
    }

    /// Has incremental drift accumulated past the rebuild threshold?
    pub fn stale(&self) -> bool {
        self.writes_since_build >= config().refresh_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnDef;
    use crate::types::SqlType;

    fn schema() -> TableSchema {
        TableSchema::from_defs(
            "t",
            &[
                ColumnDef {
                    name: "k".into(),
                    ty: SqlType::Integer,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                },
                ColumnDef {
                    name: "label".into(),
                    ty: SqlType::Varchar,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                },
            ],
        )
        .unwrap()
    }

    fn heap_with(rows: &[(i64, &str)]) -> Heap {
        let mut heap = Heap::new();
        for (k, label) in rows {
            heap.insert(vec![Value::Int(*k), Value::Text((*label).into())]);
        }
        heap
    }

    #[test]
    fn build_counts_rows_nulls_and_range() {
        let mut heap = heap_with(&[(1, "a"), (5, "b"), (9, "c")]);
        heap.insert(vec![Value::Null, Value::Text("d".into())]);
        let stats = TableStats::build(&schema(), &heap);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].nulls, 1);
        assert_eq!(stats.columns[0].non_null, 3);
        assert_eq!(stats.columns[0].min, Some(Value::Int(1)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(9)));
        assert_eq!(stats.columns[0].distinct(), 3);
        // Text column: counts and distinct, but no histogram.
        assert_eq!(stats.columns[1].distinct(), 4);
        assert!(stats.columns[1].histogram.is_none());
        assert!(stats.columns[0].histogram.is_some());
    }

    #[test]
    fn distinct_estimate_tracks_duplicates() {
        let mut heap = Heap::new();
        for i in 0..300 {
            heap.insert(vec![Value::Int(i % 10), Value::Text(format!("v{i}"))]);
        }
        let stats = TableStats::build(&schema(), &heap);
        assert_eq!(stats.columns[0].distinct(), 10);
        // 300 distinct labels: linear counting is approximate but close.
        let d = stats.columns[1].distinct();
        assert!((270..=330).contains(&d), "estimate {d} too far from 300");
    }

    #[test]
    fn cross_type_numeric_values_share_distinct_bits() {
        let mut c = ColumnStats::new();
        c.note_value(&Value::Int(7));
        c.note_value(&Value::Double(7.0));
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn incremental_insert_delete_round_trips_counters() {
        let heap = heap_with(&[(1, "a"), (2, "b")]);
        let mut stats = TableStats::build(&schema(), &heap);
        let row = vec![Value::Int(3), Value::Text("c".into())];
        stats.note_insert(&row);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.columns[0].non_null, 3);
        assert_eq!(stats.columns[0].max, Some(Value::Int(3)));
        stats.note_delete(&row);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.columns[0].non_null, 2);
        // Min/max stay conservative after the delete (rebuild fixes them).
        assert_eq!(stats.columns[0].max, Some(Value::Int(3)));
        assert_eq!(stats.writes_since_build, 2);
    }

    #[test]
    fn histogram_fraction_below_interpolates() {
        let mut heap = Heap::new();
        for i in 0..100 {
            heap.insert(vec![Value::Int(i), Value::Null]);
        }
        let stats = TableStats::build(&schema(), &heap);
        let h = stats.columns[0].histogram.as_ref().unwrap();
        assert_eq!(h.total(), 100);
        assert!(h.fraction_below(0.0) == 0.0);
        assert!(h.fraction_below(1000.0) == 1.0);
        let mid = h.fraction_below(50.0);
        assert!((0.4..=0.6).contains(&mid), "mid fraction {mid}");
    }

    #[test]
    fn stale_after_threshold_writes() {
        let heap = heap_with(&[(1, "a")]);
        let mut stats = TableStats::build(&schema(), &heap);
        assert!(!stats.stale());
        for i in 0..config().refresh_threshold {
            stats.note_insert(&[Value::Int(i as i64), Value::Null]);
        }
        assert!(stats.stale());
    }
}
