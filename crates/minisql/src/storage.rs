//! Row storage: a slotted in-memory heap per table.
//!
//! Rows live in a `Vec<Option<Arc<Row>>>`; deletion leaves a tombstone so row
//! ids stay stable for the lifetime of a table (indexes and the transaction
//! undo log both key on [`RowId`]). A free list recycles tombstoned slots.
//!
//! Each row sits behind its own `Arc` so cloning a heap — the copy-on-write
//! step a writer performs before mutating a table that a published snapshot
//! still references (see `db.rs` and DESIGN.md §11) — copies row *pointers*,
//! not row contents. A 10k-row table clones in O(10k) refcount bumps, and a
//! single-row UPDATE afterwards allocates exactly one new row; the old image
//! stays alive for whichever snapshots still pin it.

use crate::types::Value;
use std::sync::Arc;

/// Stable identifier of a row slot within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

/// A stored tuple.
pub type Row = Vec<Value>;

/// The heap of one table.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    slots: Vec<Option<Arc<Row>>>,
    free: Vec<u32>,
    live: usize,
}

/// Take a row image out of its `Arc`, cloning only if a snapshot still
/// shares it.
fn into_row(arc: Arc<Row>) -> Row {
    Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone())
}

impl Heap {
    /// Empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row, returning its id. Recycles tombstoned slots.
    pub fn insert(&mut self, row: Row) -> RowId {
        self.live += 1;
        let row = Some(Arc::new(row));
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = row;
            return RowId(slot);
        }
        let id = self.slots.len() as u32;
        self.slots.push(row);
        RowId(id)
    }

    /// Re-insert a row at a specific id (transaction rollback of a delete).
    /// Panics if the slot is occupied — that would be an engine bug.
    pub fn restore(&mut self, id: RowId, row: Row) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        assert!(
            self.slots[idx].is_none(),
            "restore into occupied slot {id:?}"
        );
        // Remove from the free list if it was recycled there.
        self.free.retain(|&f| f != id.0);
        self.slots[idx] = Some(Arc::new(row));
        self.live += 1;
    }

    /// Force-set the row at `id`, occupied or not — the idempotent primitive
    /// WAL replay is built on: replaying an Insert or Update record a second
    /// time must land in exactly the same state as the first pass. Extends
    /// the slot array as needed and repairs the free list and live count.
    pub fn put_at(&mut self, id: RowId, row: Row) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_none() {
            self.free.retain(|&f| f != id.0);
            self.live += 1;
        }
        self.slots[idx] = Some(Arc::new(row));
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_deref())
    }

    /// Replace a row, returning the old image. `None` if the slot is dead.
    pub fn update(&mut self, id: RowId, row: Row) -> Option<Row> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        slot.as_mut()
            .map(|r| into_row(std::mem::replace(r, Arc::new(row))))
    }

    /// Delete a row, returning its last image.
    pub fn delete(&mut self, id: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let old = slot.take();
        if old.is_some() {
            self.live -= 1;
            self.free.push(id.0);
        }
        old.map(into_row)
    }

    /// Iterate borrowed rows for the given ids, skipping tombstones — the
    /// index-probe fetch path (no cloning; callers materialize survivors).
    pub fn select<'a>(&'a self, ids: &'a [RowId]) -> impl Iterator<Item = &'a Row> + 'a {
        ids.iter().filter_map(|id| self.get(*id))
    }

    /// Iterate `(RowId, &Row)` over live rows in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|r| (RowId(i as u32), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Int(i)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let b = h.insert(row(2));
        assert_ne!(a, b);
        assert_eq!(h.get(a), Some(&row(1)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn delete_tombstones_and_recycles() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let _b = h.insert(row(2));
        assert_eq!(h.delete(a), Some(row(1)));
        assert_eq!(h.get(a), None);
        assert_eq!(h.len(), 1);
        // Recycled slot gets the same physical id.
        let c = h.insert(row(3));
        assert_eq!(c, a);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn double_delete_is_noop() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        assert!(h.delete(a).is_some());
        assert!(h.delete(a).is_none());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn update_returns_old_image() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        assert_eq!(h.update(a, row(9)), Some(row(1)));
        assert_eq!(h.get(a), Some(&row(9)));
    }

    #[test]
    fn restore_after_delete() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        h.delete(a);
        h.restore(a, row(1));
        assert_eq!(h.get(a), Some(&row(1)));
        assert_eq!(h.len(), 1);
        // The restored slot must not be handed out again by the free list.
        let b = h.insert(row(2));
        assert_ne!(a, b);
    }

    #[test]
    fn put_at_is_idempotent_and_repairs_bookkeeping() {
        let mut h = Heap::new();
        // Beyond the end: extends and counts as live.
        h.put_at(RowId(2), row(9));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(RowId(2)), Some(&row(9)));
        // Twice over an occupied slot: same state, same count.
        h.put_at(RowId(2), row(10));
        h.put_at(RowId(2), row(10));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(RowId(2)), Some(&row(10)));
        // Over a freed slot: the free list must forget it.
        let a = h.insert(row(1));
        h.delete(a);
        h.put_at(a, row(1));
        assert_eq!(h.len(), 2);
        let b = h.insert(row(3));
        assert_ne!(a, b, "free list must not hand out a put_at slot");
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        h.insert(row(2));
        h.delete(a);
        let got: Vec<i64> = h
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn clone_shares_rows_and_diverges_on_write() {
        // The copy-on-write property db.rs relies on: a cloned heap shares
        // row allocations with the original, and mutating the clone leaves
        // the original's rows untouched.
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let b = h.insert(row(2));
        let snapshot = h.clone();
        h.update(a, row(99));
        h.delete(b);
        assert_eq!(snapshot.get(a), Some(&row(1)));
        assert_eq!(snapshot.get(b), Some(&row(2)));
        assert_eq!(snapshot.len(), 2);
        assert_eq!(h.get(a), Some(&row(99)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_of_shared_row_clones_out_old_image() {
        let mut h = Heap::new();
        let a = h.insert(row(7));
        let snapshot = h.clone(); // `a`'s Arc now has two owners
        let old = h.update(a, row(8)).unwrap();
        assert_eq!(old, row(7));
        assert_eq!(snapshot.get(a), Some(&row(7)));
    }
}
