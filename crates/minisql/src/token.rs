//! SQL lexer.
//!
//! Tokenizes the SQL-92 subset the gateway generates: identifiers (optionally
//! `"quoted"`), single-quoted string literals with `''` escaping, numeric
//! literals, operators and punctuation. Keywords are recognized case-
//! insensitively but identifiers preserve their spelling (matching is
//! case-insensitive at the schema layer, as in DB2).

use crate::error::{SqlError, SqlResult};
use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the original SQL text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are detected by the parser).
    Ident(String),
    /// `"quoted identifier"` — never a keyword.
    QuotedIdent(String),
    /// String literal, quotes stripped and `''` unescaped.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Num(f64),
    /// `?` positional parameter marker.
    Param,
    /// Punctuation / operator.
    Sym(Sym),
}

/// Operator and punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||` string concatenation
    Concat,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Semi => ";",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::Ne => "<>",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
            Sym::Concat => "||",
        };
        write!(f, "{s}")
    }
}

/// Tokenize a full SQL string.
pub fn tokenize(sql: &str) -> SqlResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let (text, next) = lex_string(sql, i)?;
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    offset: start,
                });
                i = next;
            }
            b'"' => {
                let (text, next) = lex_quoted_ident(sql, i)?;
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(text),
                    offset: start,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = next;
            }
            b'.' if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = next;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'$')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            b'?' => {
                tokens.push(Token {
                    kind: TokenKind::Param,
                    offset: start,
                });
                i += 1;
            }
            _ => {
                let (sym, len) = match (b, bytes.get(i + 1).copied()) {
                    (b'<', Some(b'=')) => (Sym::Le, 2),
                    (b'<', Some(b'>')) => (Sym::Ne, 2),
                    (b'>', Some(b'=')) => (Sym::Ge, 2),
                    (b'!', Some(b'=')) => (Sym::Ne, 2),
                    (b'|', Some(b'|')) => (Sym::Concat, 2),
                    (b'(', _) => (Sym::LParen, 1),
                    (b')', _) => (Sym::RParen, 1),
                    (b',', _) => (Sym::Comma, 1),
                    (b'.', _) => (Sym::Dot, 1),
                    (b';', _) => (Sym::Semi, 1),
                    (b'*', _) => (Sym::Star, 1),
                    (b'+', _) => (Sym::Plus, 1),
                    (b'-', _) => (Sym::Minus, 1),
                    (b'/', _) => (Sym::Slash, 1),
                    (b'%', _) => (Sym::Percent, 1),
                    (b'=', _) => (Sym::Eq, 1),
                    (b'<', _) => (Sym::Lt, 1),
                    (b'>', _) => (Sym::Gt, 1),
                    _ => {
                        return Err(SqlError::syntax(format!(
                            "unexpected character {:?} at byte {i}",
                            sql[i..].chars().next().unwrap_or('?')
                        )))
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Sym(sym),
                    offset: start,
                });
                i += len;
            }
        }
    }
    Ok(tokens)
}

fn lex_string(sql: &str, start: usize) -> SqlResult<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(SqlError::syntax(format!(
                "unterminated string literal starting at byte {start}"
            )));
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the whole UTF-8 character.
            let ch = sql[i..].chars().next().expect("valid utf8");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
}

fn lex_quoted_ident(sql: &str, start: usize) -> SqlResult<(String, usize)> {
    let rest = &sql[start + 1..];
    match rest.find('"') {
        Some(end) => Ok((rest[..end].to_owned(), start + 1 + end + 1)),
        None => Err(SqlError::syntax(format!(
            "unterminated quoted identifier at byte {start}"
        ))),
    }
}

fn lex_number(sql: &str, start: usize) -> SqlResult<(TokenKind, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                // A trailing dot followed by non-digit ends the number
                // (supports `tbl.col` after an integer, not that SQL allows it).
                if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    saw_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            b'e' | b'E' if !saw_exp => {
                let next = bytes.get(i + 1).copied();
                let next2 = bytes.get(i + 2).copied();
                let exp_ok = matches!(next, Some(c) if c.is_ascii_digit())
                    || (matches!(next, Some(b'+') | Some(b'-'))
                        && matches!(next2, Some(c) if c.is_ascii_digit()));
                if exp_ok {
                    saw_exp = true;
                    i += if matches!(next, Some(b'+') | Some(b'-')) {
                        2
                    } else {
                        1
                    };
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let text = &sql[start..i];
    if saw_dot || saw_exp {
        let v: f64 = text
            .parse()
            .map_err(|_| SqlError::syntax(format!("bad numeric literal {text}")))?;
        Ok((TokenKind::Num(v), i))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((TokenKind::Int(v), i)),
            // Overflowing integers fall back to double, as DB2 DECIMAL would.
            Err(_) => {
                let v: f64 = text
                    .parse()
                    .map_err(|_| SqlError::syntax(format!("bad numeric literal {text}")))?;
                Ok((TokenKind::Num(v), i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_select() {
        let k = kinds("SELECT url FROM urldb WHERE title LIKE 'a%'");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(k[5], TokenKind::Ident("title".into()));
        assert_eq!(k[7], TokenKind::Str("a%".into()));
    }

    #[test]
    fn string_escape_doubling() {
        assert_eq!(kinds("'O''Leary'"), vec![TokenKind::Str("O'Leary".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn numbers_int_float_exp() {
        assert_eq!(
            kinds("1 2.5 3e2 4.5E-1 .25"),
            vec![
                TokenKind::Int(1),
                TokenKind::Num(2.5),
                TokenKind::Num(300.0),
                TokenKind::Num(0.45),
                TokenKind::Num(0.25),
            ]
        );
    }

    #[test]
    fn huge_integer_becomes_double() {
        assert_eq!(kinds("99999999999999999999").len(), 1);
        assert!(matches!(
            kinds("99999999999999999999")[0],
            TokenKind::Num(_)
        ));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= <> != ||"),
            vec![
                TokenKind::Sym(Sym::Le),
                TokenKind::Sym(Sym::Ge),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Concat),
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            kinds("SELECT -- everything\n 1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Int(1)]
        );
    }

    #[test]
    fn qualified_name_tokens() {
        assert_eq!(
            kinds("urldb.title"),
            vec![
                TokenKind::Ident("urldb".into()),
                TokenKind::Sym(Sym::Dot),
                TokenKind::Ident("title".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(
            kinds(r#""Select""#),
            vec![TokenKind::QuotedIdent("Select".into())]
        );
    }

    #[test]
    fn param_marker() {
        assert_eq!(
            kinds("id = ?"),
            vec![
                TokenKind::Ident("id".into()),
                TokenKind::Sym(Sym::Eq),
                TokenKind::Param
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT ^").is_err());
    }

    #[test]
    fn utf8_in_strings() {
        assert_eq!(kinds("'héllo ☃'"), vec![TokenKind::Str("héllo ☃".into())]);
    }
}
