//! SQL value model with three-valued logic.
//!
//! Values follow SQL-92 semantics: `NULL` compares as *unknown*, numeric
//! types coerce (`INTEGER` widens to `DOUBLE`), and text comparisons are
//! byte-wise (the 1996 system punted collations to DB2; we punt them to
//! `str::cmp`).

use crate::error::{SqlError, SqlResult};
use std::cmp::Ordering;
use std::fmt;

/// Declared type of a table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INTEGER`, `INT`, `SMALLINT`, `BIGINT`).
    Integer,
    /// 64-bit IEEE float (`DOUBLE`, `FLOAT`, `REAL`, `DECIMAL`).
    Double,
    /// Variable-length character data (`VARCHAR(n)`, `CHAR(n)`, `TEXT`).
    Varchar,
    /// Calendar date (`DATE`), stored as days since 1970-01-01.
    Date,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Double => write!(f, "DOUBLE"),
            SqlType::Varchar => write!(f, "VARCHAR"),
            SqlType::Date => write!(f, "DATE"),
        }
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Double-precision value.
    Double(f64),
    /// Character string.
    Text(String),
    /// Calendar date, days since 1970-01-01.
    Date(i64),
}

/// Result of a three-valued-logic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// NULL was involved; SQL "unknown".
    Unknown,
}

impl Truth {
    /// From a Rust bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Three-valued AND.
    pub fn and(self, rhs: Truth) -> Truth {
        match (self, rhs) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued OR.
    pub fn or(self, rhs: Truth) -> Truth {
        match (self, rhs) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)] // 3VL NOT, deliberately named like SQL
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// WHERE-clause acceptance: only `True` passes (unknown filters out).
    pub fn passes(self) -> bool {
        self == Truth::True
    }
}

impl Value {
    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type this value would report, if non-null.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Integer),
            Value::Double(_) => Some(SqlType::Double),
            Value::Text(_) => Some(SqlType::Varchar),
            Value::Date(_) => Some(SqlType::Date),
        }
    }

    /// Coerce for storage into a column of type `ty`.
    ///
    /// Integer widens to double; an integral double narrows to integer;
    /// anything else mismatching is an error. NULL stores as NULL (the NOT
    /// NULL check happens at the schema layer).
    pub fn coerce_to(self, ty: SqlType) -> SqlResult<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), SqlType::Integer) => Ok(v),
            (v @ Value::Double(_), SqlType::Double) => Ok(v),
            (v @ Value::Text(_), SqlType::Varchar) => Ok(v),
            (Value::Int(i), SqlType::Double) => Ok(Value::Double(i as f64)),
            (Value::Double(d), SqlType::Integer) if d.fract() == 0.0 => Ok(Value::Int(d as i64)),
            (v @ Value::Date(_), SqlType::Date) => Ok(v),
            // DB2 accepted string literals for DATE columns.
            (Value::Text(t), SqlType::Date) => {
                crate::date::parse_date(&t).map(Value::Date).ok_or_else(|| {
                    SqlError::type_mismatch(format!("'{t}' is not a DATE (want YYYY-MM-DD)"))
                })
            }
            (other, ty) => Err(SqlError::type_mismatch(format!(
                "cannot store {other} into {ty} column"
            ))),
        }
    }

    /// SQL equality (`=`): NULL yields unknown.
    pub fn sql_eq(&self, rhs: &Value) -> Truth {
        match self.compare(rhs) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(ord == Ordering::Equal),
        }
    }

    /// Compare two values, `None` if either is NULL or types are incomparable.
    ///
    /// Numeric types compare cross-type; text compares byte-wise. A number
    /// never compares to text (DB2 would raise -401; for ordering purposes we
    /// treat it as incomparable and let the caller decide).
    pub fn compare(&self, rhs: &Value) -> Option<Ordering> {
        match (self, rhs) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY and B-tree indexes: NULLs sort first
    /// (DB2 sorts NULL high; ANSI leaves it implementation-defined — we pick
    /// NULLs-first and document it), numbers before text.
    pub fn order_key(&self, rhs: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) => 1,
                Value::Date(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, rhs) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match self.compare(rhs) {
                Some(ord) => ord,
                None => rank(self).cmp(&rank(rhs)),
            },
        }
    }

    /// Render the value the way the gateway prints it into reports: NULL
    /// becomes the empty string (the paper equates NULL and ""), numbers in
    /// their canonical text form.
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Double(d) => format_double(*d),
            Value::Text(t) => t.clone(),
            Value::Date(d) => crate::date::format_date(*d),
        }
    }
}

/// Format a double the way DB2's CHAR() did, without trailing `.0` noise for
/// integral values that arrived through floating arithmetic.
fn format_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and hash-index keys. Unlike
    /// [`Value::sql_eq`], NULL equals NULL here.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                *b == *a as f64
            }
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and integral Double must hash alike because they are equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Text(t) => {
                2u8.hash(state);
                t.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{}", format_double(*d)),
            Value::Text(t) => write!(f, "'{t}'"),
            Value::Date(d) => write!(f, "DATE '{}'", crate::date::format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_valued_logic_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert!(!Unknown.passes());
    }

    #[test]
    fn null_comparisons_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
    }

    #[test]
    fn cross_numeric_compare() {
        assert_eq!(
            Value::Int(2).compare(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Double(1.5).compare(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_number_incomparable() {
        assert_eq!(Value::Int(1).compare(&Value::Text("1".into())), None);
    }

    #[test]
    fn order_key_nulls_first_numbers_before_text() {
        let mut vals = vec![
            Value::Text("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Double(1.5),
        ];
        vals.sort_by(|a, b| a.order_key(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Double(1.5),
                Value::Int(3),
                Value::Text("a".into())
            ]
        );
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Int(3).coerce_to(SqlType::Double).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            Value::Double(4.0).coerce_to(SqlType::Integer).unwrap(),
            Value::Int(4)
        );
        assert!(Value::Double(4.5).coerce_to(SqlType::Integer).is_err());
        assert!(Value::Text("x".into()).coerce_to(SqlType::Integer).is_err());
        assert!(Value::Null.coerce_to(SqlType::Integer).is_ok());
    }

    #[test]
    fn display_string_for_reports() {
        assert_eq!(Value::Null.to_display_string(), "");
        assert_eq!(Value::Int(42).to_display_string(), "42");
        assert_eq!(Value::Double(2.0).to_display_string(), "2.0");
        assert_eq!(Value::Double(2.25).to_display_string(), "2.25");
        assert_eq!(Value::Text("x".into()).to_display_string(), "x");
    }

    #[test]
    fn int_and_integral_double_hash_alike() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(7), Value::Double(7.0));
        assert_eq!(h(&Value::Int(7)), h(&Value::Double(7.0)));
    }
}
