//! Append-only redo log with group commit.
//!
//! Every committed mutation serializes a **logical record** — per-table ops
//! keyed by the stable [`RowId`]s the heap guarantees (tombstoned slots are
//! never re-numbered, so a RowId means the same row at replay time as it did
//! at commit time) — and a statement only publishes its snapshot once that
//! record is durable. The commit protocol in `db.rs` is therefore
//! *latch → mutate → log → fsync-ack → publish*: a crash at any instant
//! loses at most statements that were never acknowledged, never ones a
//! client saw succeed.
//!
//! # On-disk format
//!
//! ```text
//! file   := MAGIC record*
//! record := len:u32 checksum:u64 payload           (little-endian)
//! payload:= op_count:u32 op*
//! op     := 0x01 table row_id row      -- Insert (put_at semantics)
//!         | 0x02 table row_id row      -- Update (full new image)
//!         | 0x03 table row_id          -- Delete
//!         | 0x04 sql                   -- Ddl (one CREATE/DROP statement)
//! ```
//!
//! The checksum (FNV-1a over the payload) makes torn tails detectable:
//! recovery truncates at the first record whose frame is short or whose
//! checksum mismatches, which is exactly the prefix the group-commit daemon
//! had acknowledged. Records are *redo-only* and idempotent — Insert/Update
//! force-set the row image at its id, Delete of a missing row is a no-op —
//! so replaying a log twice lands in the same state as replaying it once.
//!
//! # Group commit
//!
//! Writers append their encoded record to a shared pending buffer and block
//! until the **group-commit daemon** has written and fsynced a batch
//! covering their sequence number. The daemon wakes when work arrives,
//! optionally lingers `DBGW_GROUP_COMMIT_US` microseconds so concurrent
//! writers pile into the same batch, then issues one `write` + one
//! `fdatasync` for the whole group. With the default 0µs window batching
//! still emerges under load: while one fsync is in flight, every arriving
//! writer queues behind it and rides the next one. `DBGW_FSYNC=0` skips the
//! fsync (group acknowledgment then means "in the page cache").
//!
//! # Crash points
//!
//! The daemon consults [`dbgw_testkit::crash`] at its would-be-fatal
//! moments (`"wal.append"`, `"wal.torn"`). A fired point flips the file
//! slot into a *crashed* state that silently drops all further writes while
//! still acknowledging them — from the outside, indistinguishable from the
//! process dying at that instant, but the test harness stays alive to
//! reopen the file and assert on what recovery finds.

use crate::error::{SqlCode, SqlError, SqlResult};
use crate::storage::{Row, RowId};
use crate::types::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// First bytes of every log (and checkpoint) file.
pub const MAGIC: &[u8; 8] = b"DBGWWAL1";

/// Bytes of framing before each record's payload (`len:u32 checksum:u64`).
pub const FRAME_LEN: usize = 12;

/// Name of the log file inside a data directory.
pub const LOG_FILE: &str = "wal.log";

/// Durability knobs, read from the environment at open time.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Fsync each group before acknowledging it (`DBGW_FSYNC`, default on;
    /// `0` disables — commits are then only as durable as the page cache).
    pub fsync: bool,
    /// Microseconds the group-commit daemon lingers collecting writers into
    /// one batch before flushing (`DBGW_GROUP_COMMIT_US`, default 0: flush
    /// immediately; batching still emerges while an fsync is in flight).
    pub group_commit_us: u64,
    /// Log size that triggers a background checkpoint
    /// (`DBGW_CHECKPOINT_BYTES`, default 4 MiB).
    pub checkpoint_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            fsync: true,
            group_commit_us: 0,
            checkpoint_bytes: 4 * 1024 * 1024,
        }
    }
}

impl DurabilityConfig {
    /// Read `DBGW_FSYNC` / `DBGW_GROUP_COMMIT_US` / `DBGW_CHECKPOINT_BYTES`.
    pub fn from_env() -> DurabilityConfig {
        let num = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        let default = DurabilityConfig::default();
        DurabilityConfig {
            fsync: std::env::var("DBGW_FSYNC").map_or(true, |v| v.trim() != "0"),
            group_commit_us: num("DBGW_GROUP_COMMIT_US", default.group_commit_us),
            checkpoint_bytes: num("DBGW_CHECKPOINT_BYTES", default.checkpoint_bytes),
        }
    }
}

/// One logical redo operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Force-set `row` at `id` in `table` (covers fresh inserts and
    /// rollback-restores alike).
    Insert {
        /// Lowercased table name.
        table: String,
        /// Stable slot the row occupies.
        id: RowId,
        /// Full row image.
        row: Row,
    },
    /// Replace the row at `id` with the full new image.
    Update {
        /// Lowercased table name.
        table: String,
        /// Stable slot the row occupies.
        id: RowId,
        /// Full post-statement row image.
        row: Row,
    },
    /// Delete the row at `id` (no-op if already gone).
    Delete {
        /// Lowercased table name.
        table: String,
        /// Stable slot the row occupied.
        id: RowId,
    },
    /// One DDL statement, stored as its canonical SQL text (the same
    /// rendering `dump.rs` emits), replayed through the ordinary DDL path.
    Ddl {
        /// `CREATE TABLE` / `DROP TABLE` / `CREATE [UNIQUE] INDEX` /
        /// `DROP INDEX` text without a trailing semicolon.
        sql: String,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            buf.push(2);
            buf.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Date(d) => {
            buf.push(4);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn put_op(buf: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert { table, id, row } => {
            buf.push(1);
            put_str(buf, table);
            put_u32(buf, id.0);
            put_row(buf, row);
        }
        WalOp::Update { table, id, row } => {
            buf.push(2);
            put_str(buf, table);
            put_u32(buf, id.0);
            put_row(buf, row);
        }
        WalOp::Delete { table, id } => {
            buf.push(3);
            put_str(buf, table);
            put_u32(buf, id.0);
        }
        WalOp::Ddl { sql } => {
            buf.push(4);
            put_str(buf, sql);
        }
    }
}

/// Frame one record: `len + checksum + payload`, ready to append.
pub fn encode_record(ops: &[WalOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 * ops.len());
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        put_op(&mut payload, op);
    }
    let mut record = Vec::with_capacity(FRAME_LEN + payload.len());
    put_u32(&mut record, payload.len() as u32);
    record.extend_from_slice(&dbgw_cache::fnv1a_64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Little-endian reader over a byte slice; every getter returns `None` on
/// underrun so a truncated payload can never panic the decoder.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(self.u64()? as i64)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Double(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.str()?),
            4 => Value::Date(self.i64()?),
            _ => return None,
        })
    }

    fn row(&mut self) -> Option<Row> {
        let len = self.u32()? as usize;
        let mut row = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            row.push(self.value()?);
        }
        Some(row)
    }
}

/// Decode one record's payload (the bytes after the frame). `None` means the
/// payload is malformed — recovery treats that record and everything after
/// it as the torn tail.
pub fn decode_payload(payload: &[u8]) -> Option<Vec<WalOp>> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let count = c.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let op = match c.u8()? {
            1 => WalOp::Insert {
                table: c.str()?,
                id: RowId(c.u32()?),
                row: c.row()?,
            },
            2 => WalOp::Update {
                table: c.str()?,
                id: RowId(c.u32()?),
                row: c.row()?,
            },
            3 => WalOp::Delete {
                table: c.str()?,
                id: RowId(c.u32()?),
            },
            4 => WalOp::Ddl { sql: c.str()? },
            _ => return None,
        };
        ops.push(op);
    }
    (c.pos == payload.len()).then_some(ops)
}

/// Shared writer state: the pending batch and the durable horizon.
struct WalState {
    /// Encoded records awaiting the daemon's next flush.
    pending: Vec<u8>,
    /// Sequence number handed to the most recent appender.
    next_seq: u64,
    /// Highest sequence number known durable; appenders wait for
    /// `durable_seq >= their seq`.
    durable_seq: u64,
    /// A write or fsync failed: the log is wedged and every commit since
    /// (including waiters of the failed batch) reports SQLCODE −904.
    io_error: Option<String>,
    /// Drain-and-exit requested.
    shutdown: bool,
}

/// The append handle. Only the daemon (flush) and the checkpointer (swap)
/// ever touch it, under this dedicated lock — so appenders queueing bytes
/// into [`WalState`] are never blocked behind an in-flight fsync.
struct FileSlot {
    file: File,
    /// Bytes in the file, header included.
    written: u64,
    /// A crash point fired: drop all writes, keep acknowledging (the
    /// in-process stand-in for the machine dying — see module docs).
    crashed: bool,
}

/// The write-ahead log: encoder, pending batch, and group-commit daemon.
pub struct Wal {
    path: PathBuf,
    fsync: bool,
    group_commit_us: u64,
    state: Mutex<WalState>,
    /// Wakes the daemon when records are pending (or shutdown is set).
    work: Condvar,
    /// Wakes appenders when the durable horizon advances (or on error).
    flushed: Condvar,
    file: Mutex<FileSlot>,
    daemon: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Poison-recovering lock: a panicking daemon must not wedge every writer
/// behind a `PoisonError` (same posture as `dbgw_sync`).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending. Recovery
    /// has already scanned and truncated the file; a file shorter than the
    /// header is (re)initialized. Call [`Wal::start`] afterwards to launch
    /// the group-commit daemon.
    pub fn open(path: &Path, config: &DurabilityConfig) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut written = file.metadata()?.len();
        if written < MAGIC.len() as u64 {
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.sync_data()?;
            written = MAGIC.len() as u64;
        }
        dbgw_obs::metrics().wal_size_bytes.set(written as i64);
        Ok(Wal {
            path: path.to_owned(),
            fsync: config.fsync,
            group_commit_us: config.group_commit_us,
            state: Mutex::new(WalState {
                pending: Vec::new(),
                next_seq: 0,
                durable_seq: 0,
                io_error: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            flushed: Condvar::new(),
            file: Mutex::new(FileSlot {
                file,
                written,
                crashed: false,
            }),
            daemon: Mutex::new(None),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Launch the group-commit daemon (idempotent).
    pub fn start(self: &std::sync::Arc<Wal>) {
        let mut daemon = lock(&self.daemon);
        if daemon.is_some() {
            return;
        }
        let wal = std::sync::Arc::clone(self);
        *daemon = Some(
            std::thread::Builder::new()
                .name("dbgw-wal".to_owned())
                .spawn(move || wal.daemon_loop())
                .expect("spawn wal daemon"),
        );
    }

    /// Append one record and block until it is durable (written and — unless
    /// `DBGW_FSYNC=0` — fsynced as part of some group). Returns SQLCODE −904
    /// if the log is wedged by an earlier I/O failure or this batch's flush
    /// fails; the caller must then *not* publish its snapshot.
    pub fn commit(&self, ops: &[WalOp]) -> SqlResult<()> {
        let record = encode_record(ops);
        let wait_start = Instant::now();
        {
            let mut st = lock(&self.state);
            if let Some(e) = &st.io_error {
                return Err(SqlError::new(SqlCode::RESOURCE, format!("wal: {e}")));
            }
            if st.shutdown {
                return Err(SqlError::new(SqlCode::RESOURCE, "wal: already shut down"));
            }
            st.next_seq += 1;
            let seq = st.next_seq;
            st.pending.extend_from_slice(&record);
            self.work.notify_one();
            while st.durable_seq < seq {
                if let Some(e) = &st.io_error {
                    return Err(SqlError::new(SqlCode::RESOURCE, format!("wal: {e}")));
                }
                st = self.flushed.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let m = dbgw_obs::metrics();
        m.wal_records.inc();
        m.group_commit_wait_ns
            .observe_ns(wait_start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Current log size in bytes (the checkpoint trigger reads this).
    pub fn size(&self) -> u64 {
        lock(&self.file).written
    }

    /// Did a crash point fire on this log? (Checkpoints bail out so the
    /// on-disk state stays exactly as the simulated power cut left it.)
    pub fn crashed(&self) -> bool {
        lock(&self.file).crashed
    }

    /// Swap in a freshly written log (the checkpointer's rename just made it
    /// current). No-op after a simulated crash.
    pub(crate) fn swap_file(&self, file: File, written: u64) {
        let mut slot = lock(&self.file);
        if slot.crashed {
            return;
        }
        slot.file = file;
        slot.written = written;
        dbgw_obs::metrics().wal_size_bytes.set(written as i64);
    }

    /// Flush whatever is pending and stop the daemon. Commits after this
    /// fail with SQLCODE −904. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.state);
            st.shutdown = true;
            self.work.notify_all();
        }
        if let Some(handle) = lock(&self.daemon).take() {
            let _ = handle.join();
        }
    }

    fn daemon_loop(&self) {
        let m = dbgw_obs::metrics();
        loop {
            // Collect a batch (waiting for work, then lingering the
            // group-commit window so concurrent writers join it).
            let (batch, max_seq) = {
                let mut st = lock(&self.state);
                loop {
                    if !st.pending.is_empty() {
                        break;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                if self.group_commit_us > 0 && !st.shutdown {
                    drop(st);
                    std::thread::sleep(Duration::from_micros(self.group_commit_us));
                    st = lock(&self.state);
                }
                let batch = std::mem::take(&mut st.pending);
                (batch, st.next_seq)
            };
            // Write + fsync outside the state lock: arriving writers keep
            // queueing into the next batch while this one is in flight —
            // that overlap is where group commit's batching comes from.
            let outcome = {
                let mut slot = lock(&self.file);
                self.write_batch(&mut slot, &batch).map(|_| slot.written)
            };
            let mut st = lock(&self.state);
            match outcome {
                Ok(written) => {
                    st.durable_seq = max_seq;
                    if self.fsync {
                        m.wal_fsyncs.inc();
                    }
                    m.wal_bytes.add(batch.len() as u64);
                    m.wal_size_bytes.set(written as i64);
                }
                Err(e) => {
                    st.io_error = Some(e.to_string());
                }
            }
            self.flushed.notify_all();
            if st.shutdown && st.pending.is_empty() {
                return;
            }
        }
    }

    /// Append `batch` and make it durable — unless a crash point fires, in
    /// which case the slot latches into its crashed state (see module docs).
    fn write_batch(&self, slot: &mut FileSlot, batch: &[u8]) -> std::io::Result<()> {
        if slot.crashed {
            return Ok(());
        }
        if dbgw_testkit::crash::hit("wal.append") {
            // Power cut before the write reached the disk: the whole batch
            // (and everything after it) vanishes despite the ack.
            slot.crashed = true;
            return Ok(());
        }
        if dbgw_testkit::crash::hit("wal.torn") {
            // Power cut mid-write: half the batch lands on disk. Synced so
            // the torn tail is really there when the test reopens the file.
            let half = batch.len() / 2;
            slot.file.write_all(&batch[..half])?;
            let _ = slot.file.sync_data();
            slot.written += half as u64;
            slot.crashed = true;
            return Ok(());
        }
        slot.file.write_all(batch)?;
        if self.fsync {
            slot.file.sync_data()?;
        }
        slot.written += batch.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                table: "t".into(),
                id: RowId(3),
                row: vec![
                    Value::Null,
                    Value::Int(-7),
                    Value::Double(1.5),
                    Value::Text("quote ' and \u{1F980}".into()),
                    Value::Date(9_131),
                ],
            },
            WalOp::Update {
                table: "t".into(),
                id: RowId(0),
                row: vec![Value::Int(1)],
            },
            WalOp::Delete {
                table: "other".into(),
                id: RowId(42),
            },
            WalOp::Ddl {
                sql: "CREATE TABLE t (a INTEGER)".into(),
            },
        ]
    }

    #[test]
    fn record_round_trips() {
        let ops = sample_ops();
        let record = encode_record(&ops);
        let len = u32::from_le_bytes(record[..4].try_into().unwrap()) as usize;
        assert_eq!(record.len(), FRAME_LEN + len);
        let checksum = u64::from_le_bytes(record[4..12].try_into().unwrap());
        let payload = &record[FRAME_LEN..];
        assert_eq!(checksum, dbgw_cache::fnv1a_64(payload));
        assert_eq!(decode_payload(payload).unwrap(), ops);
    }

    #[test]
    fn truncated_payload_decodes_to_none() {
        let record = encode_record(&sample_ops());
        let payload = &record[FRAME_LEN..];
        for cut in 0..payload.len() {
            assert!(
                decode_payload(&payload[..cut]).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is also rejected (the frame length must be exact).
        let mut padded = payload.to_vec();
        padded.push(0);
        assert!(decode_payload(&padded).is_none());
    }

    #[test]
    fn empty_record_is_valid() {
        let record = encode_record(&[]);
        assert_eq!(decode_payload(&record[FRAME_LEN..]).unwrap(), Vec::new());
    }

    #[test]
    fn config_defaults() {
        let c = DurabilityConfig::default();
        assert!(c.fsync);
        assert_eq!(c.group_commit_us, 0);
        assert_eq!(c.checkpoint_bytes, 4 * 1024 * 1024);
    }

    #[test]
    fn commit_acks_only_after_durable() {
        let dir = std::env::temp_dir().join(format!("dbgw-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("commit_acks.log");
        let _ = std::fs::remove_file(&path);
        let wal = std::sync::Arc::new(
            Wal::open(
                &path,
                &DurabilityConfig {
                    fsync: false,
                    ..DurabilityConfig::default()
                },
            )
            .unwrap(),
        );
        wal.start();
        let ops = sample_ops();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let wal = std::sync::Arc::clone(&wal);
                let ops = ops.clone();
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        wal.commit(&ops).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        wal.shutdown();
        // Every acknowledged record is on disk, whole.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        let mut pos = 8usize;
        let mut records = 0;
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let payload = &bytes[pos + FRAME_LEN..pos + FRAME_LEN + len];
            assert_eq!(decode_payload(payload).unwrap(), ops);
            pos += FRAME_LEN + len;
            records += 1;
        }
        assert_eq!(records, 4 * 16);
        assert_eq!(wal.size(), bytes.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commit_after_shutdown_fails_with_resource_code() {
        let dir = std::env::temp_dir().join(format!("dbgw-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shutdown.log");
        let _ = std::fs::remove_file(&path);
        let wal = std::sync::Arc::new(Wal::open(&path, &DurabilityConfig::default()).unwrap());
        wal.start();
        wal.shutdown();
        let err = wal.commit(&[]).unwrap_err();
        assert_eq!(err.code, SqlCode::RESOURCE);
        std::fs::remove_file(&path).unwrap();
    }
}
