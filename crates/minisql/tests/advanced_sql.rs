//! Integration tests for the richer SQL surface: subqueries, set operations,
//! EXPLAIN, and the extended scalar function library — everything exercised
//! through the full text → parse → plan → execute path.

use minisql::{Database, ExecResult, SqlCode, Value};

fn db() -> Database {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE customers (custid INTEGER PRIMARY KEY, name VARCHAR(60), region VARCHAR(10));
         CREATE TABLE orders (orderid INTEGER PRIMARY KEY, custid INTEGER, amount DOUBLE);
         CREATE INDEX orders_cust ON orders (custid);
         INSERT INTO customers VALUES
           (1, 'Ada', 'west'), (2, 'Bob', 'east'), (3, 'Cyn', 'west'), (4, 'Dee', 'north');
         INSERT INTO orders VALUES
           (100, 1, 25.0), (101, 1, 75.0), (102, 2, 10.0), (103, 3, 300.0);",
    )
    .unwrap();
    db
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    match conn.execute(sql).unwrap() {
        ExecResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn texts(db: &Database, sql: &str) -> Vec<String> {
    rows(db, sql)
        .into_iter()
        .map(|r| r[0].to_display_string())
        .collect()
}

// ---------------------------------------------------------------------------
// Subqueries
// ---------------------------------------------------------------------------

#[test]
fn in_subquery() {
    let db = db();
    assert_eq!(
        texts(
            &db,
            "SELECT name FROM customers WHERE custid IN (SELECT custid FROM orders) ORDER BY name"
        ),
        vec!["Ada", "Bob", "Cyn"]
    );
    assert_eq!(
        texts(
            &db,
            "SELECT name FROM customers WHERE custid NOT IN (SELECT custid FROM orders)"
        ),
        vec!["Dee"]
    );
}

#[test]
fn scalar_subquery() {
    let db = db();
    assert_eq!(
        rows(&db, "SELECT (SELECT MAX(amount) FROM orders)"),
        vec![vec![Value::Double(300.0)]]
    );
    // Zero rows -> NULL.
    assert_eq!(
        rows(
            &db,
            "SELECT (SELECT amount FROM orders WHERE orderid = 999)"
        ),
        vec![vec![Value::Null]]
    );
    // Comparison against a scalar subquery in WHERE.
    assert_eq!(
        texts(
            &db,
            "SELECT name FROM customers WHERE custid = (SELECT custid FROM orders WHERE amount = 300.0)"
        ),
        vec!["Cyn"]
    );
}

#[test]
fn scalar_subquery_multi_row_is_error() {
    let db = db();
    let mut conn = db.connect();
    let err = conn
        .execute("SELECT (SELECT custid FROM orders)")
        .unwrap_err();
    assert_eq!(err.code, SqlCode::SYNTAX);
    assert!(err.message.contains("scalar subquery returned"));
}

#[test]
fn exists_and_not_exists() {
    let db = db();
    assert_eq!(
        rows(
            &db,
            "SELECT 1 FROM customers WHERE EXISTS (SELECT 1 FROM orders) LIMIT 1"
        )
        .len(),
        1
    );
    assert!(rows(
        &db,
        "SELECT 1 FROM customers WHERE NOT EXISTS (SELECT 1 FROM orders)"
    )
    .is_empty());
    assert!(rows(
        &db,
        "SELECT 1 WHERE EXISTS (SELECT 1 FROM orders WHERE amount > 1000)"
    )
    .is_empty());
}

#[test]
fn correlated_subquery_rejected_cleanly() {
    let db = db();
    let mut conn = db.connect();
    let err = conn
        .execute(
            "SELECT name FROM customers c \
             WHERE EXISTS (SELECT 1 FROM orders o WHERE o.custid = c.custid)",
        )
        .unwrap_err();
    // The inner query cannot resolve c.custid: surfaced as unknown column.
    assert_eq!(err.code, SqlCode::UNDEFINED_COLUMN);
}

#[test]
fn subquery_in_dml() {
    let db = db();
    let mut conn = db.connect();
    // DELETE customers with no orders.
    let r = conn
        .execute("DELETE FROM customers WHERE custid NOT IN (SELECT custid FROM orders)")
        .unwrap();
    assert_eq!(r, ExecResult::Count(1));
    // UPDATE using a scalar subquery on the right-hand side.
    conn.execute("UPDATE orders SET amount = (SELECT MAX(amount) FROM orders) WHERE orderid = 102")
        .unwrap();
    assert_eq!(
        rows(&db, "SELECT amount FROM orders WHERE orderid = 102"),
        vec![vec![Value::Double(300.0)]]
    );
    // INSERT with a scalar subquery value.
    conn.execute("INSERT INTO orders VALUES (200, 1, (SELECT MIN(amount) FROM orders))")
        .unwrap();
    assert_eq!(
        rows(&db, "SELECT amount FROM orders WHERE orderid = 200"),
        vec![vec![Value::Double(25.0)]]
    );
}

// ---------------------------------------------------------------------------
// Set operations
// ---------------------------------------------------------------------------

#[test]
fn union_dedups_union_all_does_not() {
    let db = db();
    let distinct = texts(
        &db,
        "SELECT region FROM customers UNION SELECT region FROM customers ORDER BY 1",
    );
    assert_eq!(distinct, vec!["east", "north", "west"]);
    let all = texts(
        &db,
        "SELECT region FROM customers UNION ALL SELECT region FROM customers",
    );
    assert_eq!(all.len(), 8);
}

#[test]
fn except_and_intersect() {
    let db = db();
    assert_eq!(
        texts(
            &db,
            "SELECT custid FROM customers EXCEPT SELECT custid FROM orders ORDER BY 1"
        ),
        vec!["4"]
    );
    assert_eq!(
        texts(
            &db,
            "SELECT custid FROM customers INTERSECT SELECT custid FROM orders ORDER BY 1"
        ),
        vec!["1", "2", "3"]
    );
}

#[test]
fn union_order_by_applies_to_whole() {
    let db = db();
    let got = texts(
        &db,
        "SELECT name FROM customers WHERE region = 'west' \
         UNION SELECT name FROM customers WHERE region = 'east' \
         ORDER BY name DESC LIMIT 2",
    );
    assert_eq!(got, vec!["Cyn", "Bob"]);
}

#[test]
fn union_column_count_mismatch_errors() {
    let db = db();
    let mut conn = db.connect();
    assert!(conn
        .execute("SELECT custid FROM customers UNION SELECT custid, name FROM customers")
        .is_err());
}

#[test]
fn interior_order_by_rejected() {
    let db = db();
    let mut conn = db.connect();
    assert!(conn
        .execute("SELECT name FROM customers ORDER BY 1 UNION SELECT name FROM customers")
        .is_err());
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

#[test]
fn explain_shows_index_probe_vs_scan() {
    let db = db();
    let probe = texts(&db, "EXPLAIN SELECT * FROM orders WHERE custid = 1");
    assert!(
        probe[0].contains("INDEX equality PROBE orders_cust"),
        "{probe:?}"
    );
    let scan = texts(&db, "EXPLAIN SELECT * FROM orders WHERE amount > 50");
    assert!(scan[0].contains("FULL SCAN orders (4 rows)"), "{scan:?}");
}

#[test]
fn explain_like_prefix_probe() {
    let db = db();
    db.run_script("CREATE INDEX cust_name ON customers (name)")
        .unwrap();
    let probe = texts(&db, "EXPLAIN SELECT * FROM customers WHERE name LIKE 'A%'");
    assert!(
        probe[0].contains("INDEX prefix PROBE cust_name"),
        "{probe:?}"
    );
    // Leading wildcard: no probe possible.
    let scan = texts(&db, "EXPLAIN SELECT * FROM customers WHERE name LIKE '%a%'");
    assert!(scan[0].contains("FULL SCAN"), "{scan:?}");
}

#[test]
fn explain_describes_operators() {
    let db = db();
    let plan = texts(
        &db,
        "EXPLAIN SELECT region, COUNT(*) FROM customers c JOIN orders o ON c.custid = o.custid \
         WHERE amount > 1 GROUP BY region HAVING COUNT(*) > 0 ORDER BY 2 LIMIT 3",
    );
    let joined = plan.join("\n");
    assert!(joined.contains("HASH JOIN orders (1 key)"), "{joined}");
    assert!(joined.contains("FILTER <where>"), "{joined}");
    assert!(joined.contains("AGGREGATE (group keys: 1)"), "{joined}");
    assert!(joined.contains("FILTER <having>"), "{joined}");
    assert!(joined.contains("TOP-K SORT (1 keys, k=3)"), "{joined}");
    assert!(joined.contains("LIMIT 3"), "{joined}");
}

#[test]
fn explain_does_not_execute_dml() {
    let db = db();
    let plan = texts(&db, "EXPLAIN DELETE FROM orders WHERE amount > 0");
    assert!(plan[0].contains("DELETE FROM orders"), "{plan:?}");
    assert_eq!(db.table_len("orders").unwrap(), 4); // nothing deleted
}

#[test]
fn explain_set_operation() {
    let db = db();
    let plan = texts(
        &db,
        "EXPLAIN SELECT custid FROM customers UNION SELECT custid FROM orders",
    );
    assert!(plan[0].contains("SET OPERATION (2 branches)"), "{plan:?}");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

#[test]
fn explain_analyze_annotates_multi_join_plan() {
    let db = db();
    db.run_script(
        "CREATE TABLE regions (region VARCHAR(10) PRIMARY KEY, mgr VARCHAR(20));
         INSERT INTO regions VALUES ('west', 'Wes'), ('east', 'Eli'), ('north', 'Nor');",
    )
    .unwrap();
    let plan = texts(
        &db,
        "EXPLAIN ANALYZE SELECT c.name, o.amount, r.mgr \
         FROM customers c JOIN orders o ON c.custid = o.custid \
         JOIN regions r ON c.region = r.region \
         WHERE o.amount > 20 ORDER BY o.amount",
    );
    let joined = plan.join("\n");
    // The cost-based planner prints the executed three-table order: the
    // filtered `orders` (est 3 rows) ties tiny `regions` and wins on
    // syntactic position.
    let order = plan.iter().find(|l| l.contains("JOIN ORDER:")).unwrap();
    assert!(
        order.contains("JOIN ORDER: o -> c -> r"),
        "{order}\n{joined}"
    );
    // Every executed operator line carries actuals alongside the estimate.
    let join_lines: Vec<&String> = plan
        .iter()
        .filter(|l| l.contains("HASH JOIN") || l.contains("NESTED LOOP"))
        .collect();
    assert_eq!(join_lines.len(), 2, "{joined}");
    for line in &join_lines {
        assert!(
            line.contains("(actual rows=") && line.contains("loops=1") && line.contains("time="),
            "join line missing actuals: {line}\n{joined}"
        );
    }
    let sort = plan.iter().find(|l| l.contains("SORT")).unwrap();
    assert!(sort.contains("(actual rows=3"), "{sort}\n{joined}");
    // amounts 25, 75, 300 survive `o.amount > 20`.
    let total = plan.last().unwrap();
    assert!(total.starts_with("TOTAL: 3 rows returned,"), "{total}");
}

#[test]
fn explain_analyze_shows_scan_and_filter_actuals() {
    let db = db();
    let plan = texts(
        &db,
        "EXPLAIN ANALYZE SELECT name FROM customers WHERE LENGTH(name) = 3",
    );
    let joined = plan.join("\n");
    // LENGTH(name) = 3 is not index- or pushdown-eligible: the scan reads all
    // 4 rows and the residual filter keeps all 4 three-letter names.
    let scan = plan.iter().find(|l| l.contains("FULL SCAN")).unwrap();
    assert!(scan.contains("(actual rows=4 in=4 loops=1"), "{joined}");
    assert!(
        joined.contains("FILTER <where> (actual rows=4 in=4 loops=1"),
        "{joined}"
    );
}

#[test]
fn explain_analyze_on_dml_plans_without_executing() {
    let db = db();
    let plan = texts(&db, "EXPLAIN ANALYZE DELETE FROM orders WHERE amount > 0");
    assert!(plan[0].contains("DELETE FROM orders"), "{plan:?}");
    assert!(!plan[0].contains("actual rows="), "{plan:?}");
    assert_eq!(db.table_len("orders").unwrap(), 4); // nothing deleted
}

#[test]
fn explain_analyze_aggregate_having_and_limit() {
    let db = db();
    let plan = texts(
        &db,
        "EXPLAIN ANALYZE SELECT region, COUNT(*) FROM customers \
         GROUP BY region HAVING COUNT(*) > 1 LIMIT 5",
    );
    let joined = plan.join("\n");
    // 4 customers collapse into 3 regions; only 'west' has more than one.
    assert!(
        joined.contains("AGGREGATE (group keys: 1) (actual rows=3 in=4"),
        "{joined}"
    );
    assert!(
        joined.contains("FILTER <having> (actual rows=1 in=3 loops=3"),
        "{joined}"
    );
    assert!(joined.contains("LIMIT 5 (actual rows=1 in=1"), "{joined}");
}

// ---------------------------------------------------------------------------
// Extended scalar functions
// ---------------------------------------------------------------------------

#[test]
fn string_function_library() {
    let db = db();
    assert_eq!(
        rows(&db, "SELECT REPLACE('banana', 'an', 'AN')"),
        vec![vec![Value::Text("bANANa".into())]]
    );
    assert_eq!(
        rows(
            &db,
            "SELECT POSITION('na', 'banana'), POSITION('x', 'banana')"
        ),
        vec![vec![Value::Int(3), Value::Int(0)]]
    );
    assert_eq!(
        rows(&db, "SELECT LEFT('banana', 3), RIGHT('banana', 2)"),
        vec![vec![Value::Text("ban".into()), Value::Text("na".into())]]
    );
    assert_eq!(
        rows(&db, "SELECT CONCAT('a', 1, 'b')"),
        vec![vec![Value::Text("a1b".into())]]
    );
    assert_eq!(
        rows(&db, "SELECT CONCAT('a', NULL)"),
        vec![vec![Value::Null]]
    );
}

#[test]
fn numeric_function_library() {
    let db = db();
    assert_eq!(
        rows(&db, "SELECT SIGN(-9), SIGN(0), SIGN(2.5)"),
        vec![vec![Value::Int(-1), Value::Int(0), Value::Int(1)]]
    );
    assert_eq!(
        rows(&db, "SELECT FLOOR(2.7), CEIL(2.1)"),
        vec![vec![Value::Double(2.0), Value::Double(3.0)]]
    );
}

#[test]
fn functions_usable_in_where_and_order() {
    let db = db();
    assert_eq!(
        texts(
            &db,
            "SELECT name FROM customers WHERE POSITION('e', name) > 0 ORDER BY RIGHT(name, 1)"
        ),
        vec!["Dee"]
    );
}

#[test]
fn multibyte_position_is_character_based() {
    let db = db();
    assert_eq!(
        rows(&db, "SELECT POSITION('llo', 'héllo')"),
        vec![vec![Value::Int(3)]]
    );
}
