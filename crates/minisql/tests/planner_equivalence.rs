//! Property: access-path selection never changes results.
//!
//! The planner turns eligible WHERE conjuncts into index probes; since every
//! candidate row is re-checked against the full predicate, an indexed table
//! must answer every query identically to an unindexed copy of the same
//! data. This is the core soundness property of `exec::choose_access_path`.

use dbgw_testkit::gen::{charset, ints, vec_of};
use dbgw_testkit::{prop_assert_eq, props};
use minisql::{Database, ExecResult, Value};

/// Load identical data into two databases; only one gets indexes.
fn twin_dbs(rows: &[(i64, String)]) -> (Database, Database) {
    let make = |with_index: bool| {
        let db = Database::new();
        db.run_script("CREATE TABLE t (k INTEGER, s VARCHAR(16))")
            .unwrap();
        if with_index {
            db.run_script("CREATE INDEX t_k ON t (k); CREATE INDEX t_s ON t (s)")
                .unwrap();
        }
        let mut conn = db.connect();
        for (k, s) in rows {
            conn.execute_with_params(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(*k), Value::Text(s.clone())],
            )
            .unwrap();
        }
        db
    };
    (make(true), make(false))
}

fn query(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    match conn.execute(sql).unwrap() {
        ExecResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

props! {
    config(cases = 48);

    fn indexed_and_unindexed_agree(
        rows in vec_of((ints(0..20), charset("abc", 0..=4)), 0..=39),
        probe_k in ints(0..20),
        lo in ints(0..10),
        span in ints(0..10),
        prefix in charset("abc", 0..=2),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        let hi = lo + span;
        let queries = [
            format!("SELECT k, s FROM t WHERE k = {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k < {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k >= {probe_k} AND s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k BETWEEN {lo} AND {hi} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k IN ({lo}, {hi}, {probe_k}) ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s = '{prefix}' ORDER BY 1, 2"),
            format!("SELECT COUNT(*) FROM t WHERE k = {probe_k} OR s LIKE '%{prefix}'"),
        ];
        for q in &queries {
            prop_assert_eq!(query(&indexed, q), query(&plain, q), "query {q}: indexed != plain");
        }
    }

    fn dml_agrees_under_indexes(
        rows in vec_of((ints(0..10), charset("ab", 0..=3)), 0..=24),
        target in ints(0..10),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        for db in [&indexed, &plain] {
            let mut conn = db.connect();
            conn.execute(&format!("UPDATE t SET k = k + 100 WHERE k = {target}")).unwrap();
            conn.execute(&format!("DELETE FROM t WHERE k = {}", target + 1)).unwrap();
        }
        let q = "SELECT k, s FROM t ORDER BY 1, 2";
        prop_assert_eq!(query(&indexed, q), query(&plain, q));
        // And the index still answers point queries correctly post-DML.
        let q2 = format!("SELECT COUNT(*) FROM t WHERE k = {}", target + 100);
        prop_assert_eq!(query(&indexed, &q2), query(&plain, &q2));
    }
}
