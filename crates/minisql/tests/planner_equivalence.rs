//! Property: plan selection never changes results.
//!
//! Two families of soundness checks on `plan::plan_select` + the executor:
//!
//! 1. **Access paths** — the planner turns eligible WHERE conjuncts into
//!    index probes; since every candidate row is re-checked against the full
//!    predicate, an indexed table must answer every query identically to an
//!    unindexed copy of the same data.
//! 2. **Join strategy + pushdown + top-k** — running the same query under
//!    [`PlanOptions::all`] (hash joins, predicate pushdown, index paths,
//!    bounded-heap ORDER BY…LIMIT) and [`PlanOptions::baseline`] (nested
//!    loops, no pushdown, full sorts) must produce identical results over
//!    randomized schemas including LEFT OUTER joins, NULL join keys, and
//!    mixed equi/non-equi ON conditions. Failures found while developing the
//!    planner are pinned as named regression tests below the properties.

use dbgw_obs::RequestCtx;
use dbgw_testkit::gen::{charset, ints, option_of, vec_of};
use dbgw_testkit::{prop_assert_eq, props};
use minisql::ast::Statement;
use minisql::state::DbState;
use minisql::{Database, ExecResult, PlanOptions, Value};

/// Load identical data into two databases; only one gets indexes.
fn twin_dbs(rows: &[(i64, String)]) -> (Database, Database) {
    let make = |with_index: bool| {
        let db = Database::new();
        db.run_script("CREATE TABLE t (k INTEGER, s VARCHAR(16))")
            .unwrap();
        if with_index {
            db.run_script("CREATE INDEX t_k ON t (k); CREATE INDEX t_s ON t (s)")
                .unwrap();
        }
        let mut conn = db.connect();
        for (k, s) in rows {
            conn.execute_with_params(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(*k), Value::Text(s.clone())],
            )
            .unwrap();
        }
        db
    };
    (make(true), make(false))
}

fn query(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    match conn.execute(sql).unwrap() {
        ExecResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

props! {
    config(cases = 48);

    fn indexed_and_unindexed_agree(
        rows in vec_of((ints(0..20), charset("abc", 0..=4)), 0..=39),
        probe_k in ints(0..20),
        lo in ints(0..10),
        span in ints(0..10),
        prefix in charset("abc", 0..=2),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        let hi = lo + span;
        let queries = [
            format!("SELECT k, s FROM t WHERE k = {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k < {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k >= {probe_k} AND s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k BETWEEN {lo} AND {hi} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k IN ({lo}, {hi}, {probe_k}) ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s = '{prefix}' ORDER BY 1, 2"),
            format!("SELECT COUNT(*) FROM t WHERE k = {probe_k} OR s LIKE '%{prefix}'"),
        ];
        for q in &queries {
            prop_assert_eq!(query(&indexed, q), query(&plain, q), "query {q}: indexed != plain");
        }
    }

    fn dml_agrees_under_indexes(
        rows in vec_of((ints(0..10), charset("ab", 0..=3)), 0..=24),
        target in ints(0..10),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        for db in [&indexed, &plain] {
            let mut conn = db.connect();
            conn.execute(&format!("UPDATE t SET k = k + 100 WHERE k = {target}")).unwrap();
            conn.execute(&format!("DELETE FROM t WHERE k = {}", target + 1)).unwrap();
        }
        let q = "SELECT k, s FROM t ORDER BY 1, 2";
        prop_assert_eq!(query(&indexed, q), query(&plain, q));
        // And the index still answers point queries correctly post-DML.
        let q2 = format!("SELECT COUNT(*) FROM t WHERE k = {}", target + 100);
        prop_assert_eq!(query(&indexed, &q2), query(&plain, &q2));
    }
}

// ---------------------------------------------------------------------------
// Join strategy / pushdown / top-k equivalence
// ---------------------------------------------------------------------------

/// Two joinable tables with nullable integer keys, loaded from row specs;
/// both key columns are indexed so the pushdown path can take index probes.
/// Returns a state snapshot so queries run straight through the executor
/// with explicit [`PlanOptions`] — bypassing the result cache, which would
/// otherwise serve the second plan's query from the first plan's answer.
fn join_state(left: &[(Option<i64>, i64)], right: &[(Option<i64>, i64)]) -> DbState {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, w INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX b_k ON b (k)",
    )
    .unwrap();
    let mut conn = db.connect();
    let val = |k: &Option<i64>| k.map(Value::Int).unwrap_or(Value::Null);
    for (k, v) in left {
        conn.execute_with_params("INSERT INTO a VALUES (?, ?)", &[val(k), Value::Int(*v)])
            .unwrap();
    }
    for (k, w) in right {
        conn.execute_with_params("INSERT INTO b VALUES (?, ?)", &[val(k), Value::Int(*w)])
            .unwrap();
    }
    db.snapshot()
}

/// Run one SELECT against a state under explicit plan options.
fn run_opts(state: &DbState, sql: &str, opts: &PlanOptions) -> Vec<Vec<Value>> {
    let Statement::Select(sel) = minisql::parse(sql).unwrap() else {
        panic!("not a select: {sql}");
    };
    minisql::exec::run_select_with_options(state, &sel, &[], &RequestCtx::unbounded(), opts)
        .unwrap()
        .rows
}

/// Canonicalize a result to a sorted multiset (for queries whose output
/// order is unspecified, e.g. GROUP BY without a total ORDER BY).
fn canon(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.order_key(y) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Assert optimized ≡ baseline for one query. `exact` additionally demands
/// identical row order — the executor guarantees hash joins and top-k emit
/// rows in nested-loop/full-sort order, so everything except hash-grouped
/// output is compared exactly.
fn assert_plans_agree(state: &DbState, sql: &str, exact: bool) -> Result<(), String> {
    let fast = run_opts(state, sql, &PlanOptions::all());
    let slow = run_opts(state, sql, &PlanOptions::baseline());
    let (fast, slow) = if exact {
        (fast, slow)
    } else {
        (canon(fast), canon(slow))
    };
    if fast != slow {
        return Err(format!(
            "plans diverge for {sql}:\n  optimized: {fast:?}\n  baseline:  {slow:?}"
        ));
    }
    Ok(())
}

props! {
    config(cases = 48);

    fn hash_join_matches_nested_loop(
        left in vec_of((option_of(ints(0..6)), ints(0..50)), 0..=20),
        right in vec_of((option_of(ints(0..6)), ints(0..50)), 0..=20),
        c in ints(0..6),
        d in ints(0..50),
    ) {
        let st = join_state(&left, &right);
        // Ordered comparison: hash joins must preserve nested-loop order.
        let exact = [
            "SELECT a.k, a.v, b.k, b.w FROM a JOIN b ON a.k = b.k".to_string(),
            "SELECT a.k, a.v, b.k, b.w FROM a LEFT JOIN b ON a.k = b.k".to_string(),
            format!("SELECT a.k, b.w FROM a JOIN b ON a.k = b.k AND b.w > {d}"),
            format!("SELECT a.k, b.w FROM a LEFT JOIN b ON a.k = b.k AND b.w > {d}"),
            format!("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.v < {d} AND b.w >= {c}"),
            "SELECT a.k FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL".to_string(),
            format!("SELECT a.k, a.v FROM a JOIN b ON a.k = b.k WHERE a.k = {c}"),
            format!("SELECT a.k, a.v FROM a JOIN b ON a.k = b.k ORDER BY a.v, b.w LIMIT 5"),
            "SELECT a.v, b.w FROM a JOIN b ON a.v = b.w AND a.k = b.k".to_string(),
        ];
        for q in &exact {
            if let Err(msg) = assert_plans_agree(&st, q, true) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
        // Multiset comparison: grouped output order is hash-map dependent.
        let multiset = [
            "SELECT a.k, COUNT(*) FROM a JOIN b ON a.k = b.k GROUP BY a.k".to_string(),
        ];
        for q in &multiset {
            if let Err(msg) = assert_plans_agree(&st, q, false) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
    }

    fn topk_matches_full_sort(
        rows in vec_of((option_of(ints(0..8)), ints(0..50)), 0..=30),
        k in ints(1..8),
        off in ints(0..4),
    ) {
        let st = join_state(&rows, &[]);
        for q in [
            format!("SELECT k, v FROM a ORDER BY v DESC, k LIMIT {k}"),
            format!("SELECT k, v FROM a ORDER BY k LIMIT {k} OFFSET {off}"),
            format!("SELECT v FROM a ORDER BY 1 LIMIT {k}"),
        ] {
            if let Err(msg) = assert_plans_agree(&st, &q, true) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
    }
}

// Pinned counterexamples: edge cases the randomized suite is not guaranteed
// to hit every run, kept as named regressions.

#[test]
fn pinned_null_keys_never_match_in_either_join() {
    let st = join_state(&[(None, 1), (Some(1), 2)], &[(None, 10), (Some(1), 20)]);
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    let outer = run_opts(
        &st,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY 1",
        &PlanOptions::all(),
    );
    // NULL key row is padded, never matched against the NULL on the right.
    assert_eq!(
        outer,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k", true).unwrap();
}

#[test]
fn pinned_is_null_probe_right_of_left_join_stays_above_join() {
    // `b.k IS NULL` must filter *after* padding — pushing it into b's scan
    // would select only NULL-keyed b rows and corrupt the anti-join idiom.
    let st = join_state(&[(Some(1), 1), (Some(2), 2)], &[(Some(1), 10)]);
    let rows = run_opts(
        &st,
        "SELECT a.v FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
        &PlanOptions::all(),
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
    assert_plans_agree(
        &st,
        "SELECT a.v FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
        true,
    )
    .unwrap();
}

#[test]
fn pinned_cross_type_numeric_keys_hash_alike() {
    // Int(3) = Double(3.0) is TRUE under SQL comparison; the hash table must
    // agree (Value's Hash impl hashes all numerics via their f64 image).
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k DOUBLE, w INTEGER);
         INSERT INTO a VALUES (3, 1);
         INSERT INTO b VALUES (3.0, 10);
         INSERT INTO b VALUES (3.5, 20)",
    )
    .unwrap();
    let st = db.snapshot();
    let sql = "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k";
    assert_plans_agree(&st, sql, true).unwrap();
    assert_eq!(
        run_opts(&st, sql, &PlanOptions::all()),
        vec![vec![Value::Int(1), Value::Int(10)]]
    );
}

#[test]
fn pinned_empty_build_side() {
    let st = join_state(&[(Some(1), 1), (Some(2), 2)], &[]);
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    let outer = run_opts(
        &st,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY 1",
        &PlanOptions::all(),
    );
    assert_eq!(
        outer,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ]
    );
    // Empty probe side too.
    let st2 = join_state(&[], &[(Some(1), 1)]);
    assert_plans_agree(&st2, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    assert_plans_agree(
        &st2,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k",
        true,
    )
    .unwrap();
}

// ---------------------------------------------------------------------------
// Equivalence under concurrent writers
// ---------------------------------------------------------------------------
//
// The snapshot engine promises that a pinned `DbState` is a frozen,
// internally consistent world. If that holds, plan equivalence must hold on
// *any* snapshot pinned mid-churn — including ones pinned between an index
// creation and its drop, or mid-way through a stream of row mutations. These
// tests pin snapshots while writers mutate rows and flip indexes on and off,
// and assert optimized ≡ baseline on every pinned state.

#[test]
fn plans_agree_on_snapshots_pinned_under_row_churn() {
    let db = Database::without_cache();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, w INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX b_k ON b (k)",
    )
    .unwrap();
    {
        let mut conn = db.connect();
        for i in 0..24i64 {
            conn.execute_with_params(
                "INSERT INTO a VALUES (?, ?)",
                &[Value::Int(i % 6), Value::Int(i)],
            )
            .unwrap();
            conn.execute_with_params(
                "INSERT INTO b VALUES (?, ?)",
                &[Value::Int(i % 6), Value::Int(i * 10)],
            )
            .unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = dbgw_testkit::StressConfig::named("plans_agree_under_row_churn");
    config.threads = 3;
    config.iters = 32;
    dbgw_testkit::stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            let k = w.rng.gen_range(0i64..6);
            let delta = w.rng.gen_range(1i64..100);
            match w.rng.gen_range(0u32..3) {
                0 => conn.execute_with_params(
                    "UPDATE a SET v = v + ? WHERE k = ?",
                    &[Value::Int(delta), Value::Int(k)],
                ),
                1 => conn.execute_with_params(
                    "INSERT INTO b VALUES (?, ?)",
                    &[Value::Int(k), Value::Int(delta)],
                ),
                _ => conn.execute_with_params(
                    "DELETE FROM b WHERE k = ? AND w > ?",
                    &[Value::Int(k), Value::Int(delta * 5)],
                ),
            }
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            // Pin once; every query in the pass sees this exact world, so an
            // optimized/baseline divergence can only come from the planner.
            let pinned = reader_db.pin();
            for sql in [
                "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.v < 500",
                "SELECT a.k, a.v FROM a LEFT JOIN b ON a.k = b.k AND b.w > 40",
                "SELECT a.k, a.v FROM a WHERE a.k = 3 ORDER BY a.v LIMIT 4",
                "SELECT a.k FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
            ] {
                assert_plans_agree(&pinned, sql, true)?;
            }
            assert_plans_agree(
                &pinned,
                "SELECT a.k, COUNT(*) FROM a JOIN b ON a.k = b.k GROUP BY a.k",
                false,
            )?;
            Ok(())
        },
    );
}

#[test]
fn plans_agree_while_indexes_flip_on_and_off() {
    // Writers add and drop the very indexes the optimized plan would probe.
    // A pinned snapshot either has the index (optimized takes the probe) or
    // doesn't (optimized degrades to a scan) — both must equal baseline.
    let db = Database::without_cache();
    db.run_script("CREATE TABLE a (k INTEGER, v INTEGER); CREATE TABLE b (k INTEGER, w INTEGER)")
        .unwrap();
    {
        let mut conn = db.connect();
        for i in 0..16i64 {
            conn.execute_with_params(
                "INSERT INTO a VALUES (?, ?)",
                &[Value::Int(i % 4), Value::Int(i)],
            )
            .unwrap();
            conn.execute_with_params(
                "INSERT INTO b VALUES (?, ?)",
                &[Value::Int(i % 4), Value::Int(i * 7)],
            )
            .unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = dbgw_testkit::StressConfig::named("plans_agree_under_index_flips");
    config.threads = 2;
    config.iters = 24;
    dbgw_testkit::stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            // Each thread owns its index names, so CREATE/DROP always pair.
            let table = if w.thread % 2 == 0 { "a" } else { "b" };
            let name = format!("flip_{}_{table}", w.thread);
            conn.execute(&format!("CREATE INDEX {name} ON {table} (k)"))
                .map_err(|e| e.to_string())?;
            conn.execute_with_params(
                "UPDATE a SET v = v + 1 WHERE k = ?",
                &[Value::Int(w.rng.gen_range(0i64..4))],
            )
            .map_err(|e| e.to_string())?;
            conn.execute(&format!("DROP INDEX {name}"))
                .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            let pinned = reader_db.pin();
            for sql in [
                "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k",
                "SELECT a.k, a.v FROM a WHERE a.k = 2",
                "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE b.w >= 21 ORDER BY a.v LIMIT 6",
            ] {
                assert_plans_agree(&pinned, sql, true)?;
            }
            Ok(())
        },
    );
}

#[test]
fn pinned_pushdown_survives_three_way_join() {
    let st = {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE a (k INTEGER, v INTEGER);
             CREATE TABLE b (k INTEGER, w INTEGER);
             CREATE TABLE c (k INTEGER, u INTEGER);
             INSERT INTO a VALUES (1, 1); INSERT INTO a VALUES (2, 2);
             INSERT INTO b VALUES (1, 10); INSERT INTO b VALUES (2, 20);
             INSERT INTO c VALUES (1, 100); INSERT INTO c VALUES (2, 200)",
        )
        .unwrap();
        db.snapshot()
    };
    let sql = "SELECT a.v, b.w, c.u FROM a \
               JOIN b ON a.k = b.k JOIN c ON b.k = c.k \
               WHERE c.u > 100 AND a.v < 10";
    assert_plans_agree(&st, sql, true).unwrap();
    assert_eq!(
        run_opts(&st, sql, &PlanOptions::all()),
        vec![vec![Value::Int(2), Value::Int(20), Value::Int(200)]]
    );
}
