//! Property: plan selection never changes results.
//!
//! Two families of soundness checks on `plan::plan_select` + the executor:
//!
//! 1. **Access paths** — the planner turns eligible WHERE conjuncts into
//!    index probes; since every candidate row is re-checked against the full
//!    predicate, an indexed table must answer every query identically to an
//!    unindexed copy of the same data.
//! 2. **Join strategy + pushdown + top-k** — running the same query under
//!    [`PlanOptions::all`] (hash joins, predicate pushdown, index paths,
//!    bounded-heap ORDER BY…LIMIT) and [`PlanOptions::baseline`] (nested
//!    loops, no pushdown, full sorts) must produce identical results over
//!    randomized schemas including LEFT OUTER joins, NULL join keys, and
//!    mixed equi/non-equi ON conditions. Failures found while developing the
//!    planner are pinned as named regression tests below the properties.

use dbgw_obs::RequestCtx;
use dbgw_testkit::gen::{charset, ints, option_of, vec_of};
use dbgw_testkit::{prop_assert_eq, props};
use minisql::ast::Statement;
use minisql::state::DbState;
use minisql::{Database, ExecResult, PlanOptions, Value};

/// Load identical data into two databases; only one gets indexes.
fn twin_dbs(rows: &[(i64, String)]) -> (Database, Database) {
    let make = |with_index: bool| {
        let db = Database::new();
        db.run_script("CREATE TABLE t (k INTEGER, s VARCHAR(16))")
            .unwrap();
        if with_index {
            db.run_script("CREATE INDEX t_k ON t (k); CREATE INDEX t_s ON t (s)")
                .unwrap();
        }
        let mut conn = db.connect();
        for (k, s) in rows {
            conn.execute_with_params(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(*k), Value::Text(s.clone())],
            )
            .unwrap();
        }
        db
    };
    (make(true), make(false))
}

fn query(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    match conn.execute(sql).unwrap() {
        ExecResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

props! {
    config(cases = 48);

    fn indexed_and_unindexed_agree(
        rows in vec_of((ints(0..20), charset("abc", 0..=4)), 0..=39),
        probe_k in ints(0..20),
        lo in ints(0..10),
        span in ints(0..10),
        prefix in charset("abc", 0..=2),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        let hi = lo + span;
        let queries = [
            format!("SELECT k, s FROM t WHERE k = {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k < {probe_k} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k >= {probe_k} AND s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k BETWEEN {lo} AND {hi} ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE k IN ({lo}, {hi}, {probe_k}) ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s LIKE '{prefix}%' ORDER BY 1, 2"),
            format!("SELECT k, s FROM t WHERE s = '{prefix}' ORDER BY 1, 2"),
            format!("SELECT COUNT(*) FROM t WHERE k = {probe_k} OR s LIKE '%{prefix}'"),
        ];
        for q in &queries {
            prop_assert_eq!(query(&indexed, q), query(&plain, q), "query {q}: indexed != plain");
        }
    }

    fn dml_agrees_under_indexes(
        rows in vec_of((ints(0..10), charset("ab", 0..=3)), 0..=24),
        target in ints(0..10),
    ) {
        let (indexed, plain) = twin_dbs(&rows);
        for db in [&indexed, &plain] {
            let mut conn = db.connect();
            conn.execute(&format!("UPDATE t SET k = k + 100 WHERE k = {target}")).unwrap();
            conn.execute(&format!("DELETE FROM t WHERE k = {}", target + 1)).unwrap();
        }
        let q = "SELECT k, s FROM t ORDER BY 1, 2";
        prop_assert_eq!(query(&indexed, q), query(&plain, q));
        // And the index still answers point queries correctly post-DML.
        let q2 = format!("SELECT COUNT(*) FROM t WHERE k = {}", target + 100);
        prop_assert_eq!(query(&indexed, &q2), query(&plain, &q2));
    }
}

// ---------------------------------------------------------------------------
// Join strategy / pushdown / top-k equivalence
// ---------------------------------------------------------------------------

/// Two joinable tables with nullable integer keys, loaded from row specs;
/// both key columns are indexed so the pushdown path can take index probes.
/// Returns a state snapshot so queries run straight through the executor
/// with explicit [`PlanOptions`] — bypassing the result cache, which would
/// otherwise serve the second plan's query from the first plan's answer.
fn join_state(left: &[(Option<i64>, i64)], right: &[(Option<i64>, i64)]) -> DbState {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, w INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX b_k ON b (k)",
    )
    .unwrap();
    let mut conn = db.connect();
    let val = |k: &Option<i64>| k.map(Value::Int).unwrap_or(Value::Null);
    for (k, v) in left {
        conn.execute_with_params("INSERT INTO a VALUES (?, ?)", &[val(k), Value::Int(*v)])
            .unwrap();
    }
    for (k, w) in right {
        conn.execute_with_params("INSERT INTO b VALUES (?, ?)", &[val(k), Value::Int(*w)])
            .unwrap();
    }
    db.snapshot()
}

/// Run one SELECT against a state under explicit plan options.
fn run_opts(state: &DbState, sql: &str, opts: &PlanOptions) -> Vec<Vec<Value>> {
    let Statement::Select(sel) = minisql::parse(sql).unwrap() else {
        panic!("not a select: {sql}");
    };
    minisql::exec::run_select_with_options(state, &sel, &[], &RequestCtx::unbounded(), opts)
        .unwrap()
        .rows
}

/// Canonicalize a result to a sorted multiset (for queries whose output
/// order is unspecified, e.g. GROUP BY without a total ORDER BY).
fn canon(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.order_key(y) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Assert optimized ≡ baseline for one query. `exact` additionally demands
/// identical row order — the executor guarantees hash joins and top-k emit
/// rows in nested-loop/full-sort order, so everything except hash-grouped
/// output is compared exactly.
fn assert_plans_agree(state: &DbState, sql: &str, exact: bool) -> Result<(), String> {
    let fast = run_opts(state, sql, &PlanOptions::all());
    let slow = run_opts(state, sql, &PlanOptions::baseline());
    let (fast, slow) = if exact {
        (fast, slow)
    } else {
        (canon(fast), canon(slow))
    };
    if fast != slow {
        return Err(format!(
            "plans diverge for {sql}:\n  optimized: {fast:?}\n  baseline:  {slow:?}"
        ));
    }
    Ok(())
}

props! {
    config(cases = 48);

    fn hash_join_matches_nested_loop(
        left in vec_of((option_of(ints(0..6)), ints(0..50)), 0..=20),
        right in vec_of((option_of(ints(0..6)), ints(0..50)), 0..=20),
        c in ints(0..6),
        d in ints(0..50),
    ) {
        let st = join_state(&left, &right);
        // Ordered comparison: hash joins must preserve nested-loop order.
        let exact = [
            "SELECT a.k, a.v, b.k, b.w FROM a JOIN b ON a.k = b.k".to_string(),
            "SELECT a.k, a.v, b.k, b.w FROM a LEFT JOIN b ON a.k = b.k".to_string(),
            format!("SELECT a.k, b.w FROM a JOIN b ON a.k = b.k AND b.w > {d}"),
            format!("SELECT a.k, b.w FROM a LEFT JOIN b ON a.k = b.k AND b.w > {d}"),
            format!("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.v < {d} AND b.w >= {c}"),
            "SELECT a.k FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL".to_string(),
            format!("SELECT a.k, a.v FROM a JOIN b ON a.k = b.k WHERE a.k = {c}"),
            format!("SELECT a.k, a.v FROM a JOIN b ON a.k = b.k ORDER BY a.v, b.w LIMIT 5"),
            "SELECT a.v, b.w FROM a JOIN b ON a.v = b.w AND a.k = b.k".to_string(),
        ];
        for q in &exact {
            if let Err(msg) = assert_plans_agree(&st, q, true) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
        // Multiset comparison: grouped output order is hash-map dependent.
        let multiset = [
            "SELECT a.k, COUNT(*) FROM a JOIN b ON a.k = b.k GROUP BY a.k".to_string(),
        ];
        for q in &multiset {
            if let Err(msg) = assert_plans_agree(&st, q, false) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
    }

    fn topk_matches_full_sort(
        rows in vec_of((option_of(ints(0..8)), ints(0..50)), 0..=30),
        k in ints(1..8),
        off in ints(0..4),
    ) {
        let st = join_state(&rows, &[]);
        for q in [
            format!("SELECT k, v FROM a ORDER BY v DESC, k LIMIT {k}"),
            format!("SELECT k, v FROM a ORDER BY k LIMIT {k} OFFSET {off}"),
            format!("SELECT v FROM a ORDER BY 1 LIMIT {k}"),
        ] {
            if let Err(msg) = assert_plans_agree(&st, &q, true) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
    }
}

// Pinned counterexamples: edge cases the randomized suite is not guaranteed
// to hit every run, kept as named regressions.

#[test]
fn pinned_null_keys_never_match_in_either_join() {
    let st = join_state(&[(None, 1), (Some(1), 2)], &[(None, 10), (Some(1), 20)]);
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    let outer = run_opts(
        &st,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY 1",
        &PlanOptions::all(),
    );
    // NULL key row is padded, never matched against the NULL on the right.
    assert_eq!(
        outer,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k", true).unwrap();
}

#[test]
fn pinned_is_null_probe_right_of_left_join_stays_above_join() {
    // `b.k IS NULL` must filter *after* padding — pushing it into b's scan
    // would select only NULL-keyed b rows and corrupt the anti-join idiom.
    let st = join_state(&[(Some(1), 1), (Some(2), 2)], &[(Some(1), 10)]);
    let rows = run_opts(
        &st,
        "SELECT a.v FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
        &PlanOptions::all(),
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
    assert_plans_agree(
        &st,
        "SELECT a.v FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
        true,
    )
    .unwrap();
}

#[test]
fn pinned_cross_type_numeric_keys_hash_alike() {
    // Int(3) = Double(3.0) is TRUE under SQL comparison; the hash table must
    // agree (Value's Hash impl hashes all numerics via their f64 image).
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k DOUBLE, w INTEGER);
         INSERT INTO a VALUES (3, 1);
         INSERT INTO b VALUES (3.0, 10);
         INSERT INTO b VALUES (3.5, 20)",
    )
    .unwrap();
    let st = db.snapshot();
    let sql = "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k";
    assert_plans_agree(&st, sql, true).unwrap();
    assert_eq!(
        run_opts(&st, sql, &PlanOptions::all()),
        vec![vec![Value::Int(1), Value::Int(10)]]
    );
}

#[test]
fn pinned_empty_build_side() {
    let st = join_state(&[(Some(1), 1), (Some(2), 2)], &[]);
    assert_plans_agree(&st, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    let outer = run_opts(
        &st,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY 1",
        &PlanOptions::all(),
    );
    assert_eq!(
        outer,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ]
    );
    // Empty probe side too.
    let st2 = join_state(&[], &[(Some(1), 1)]);
    assert_plans_agree(&st2, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k", true).unwrap();
    assert_plans_agree(
        &st2,
        "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k",
        true,
    )
    .unwrap();
}

// ---------------------------------------------------------------------------
// Equivalence under concurrent writers
// ---------------------------------------------------------------------------
//
// The snapshot engine promises that a pinned `DbState` is a frozen,
// internally consistent world. If that holds, plan equivalence must hold on
// *any* snapshot pinned mid-churn — including ones pinned between an index
// creation and its drop, or mid-way through a stream of row mutations. These
// tests pin snapshots while writers mutate rows and flip indexes on and off,
// and assert optimized ≡ baseline on every pinned state.

#[test]
fn plans_agree_on_snapshots_pinned_under_row_churn() {
    let db = Database::without_cache();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, w INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX b_k ON b (k)",
    )
    .unwrap();
    {
        let mut conn = db.connect();
        for i in 0..24i64 {
            conn.execute_with_params(
                "INSERT INTO a VALUES (?, ?)",
                &[Value::Int(i % 6), Value::Int(i)],
            )
            .unwrap();
            conn.execute_with_params(
                "INSERT INTO b VALUES (?, ?)",
                &[Value::Int(i % 6), Value::Int(i * 10)],
            )
            .unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = dbgw_testkit::StressConfig::named("plans_agree_under_row_churn");
    config.threads = 3;
    config.iters = 32;
    dbgw_testkit::stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            let k = w.rng.gen_range(0i64..6);
            let delta = w.rng.gen_range(1i64..100);
            match w.rng.gen_range(0u32..3) {
                0 => conn.execute_with_params(
                    "UPDATE a SET v = v + ? WHERE k = ?",
                    &[Value::Int(delta), Value::Int(k)],
                ),
                1 => conn.execute_with_params(
                    "INSERT INTO b VALUES (?, ?)",
                    &[Value::Int(k), Value::Int(delta)],
                ),
                _ => conn.execute_with_params(
                    "DELETE FROM b WHERE k = ? AND w > ?",
                    &[Value::Int(k), Value::Int(delta * 5)],
                ),
            }
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            // Pin once; every query in the pass sees this exact world, so an
            // optimized/baseline divergence can only come from the planner.
            let pinned = reader_db.pin();
            for sql in [
                "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k WHERE a.v < 500",
                "SELECT a.k, a.v FROM a LEFT JOIN b ON a.k = b.k AND b.w > 40",
                "SELECT a.k, a.v FROM a WHERE a.k = 3 ORDER BY a.v LIMIT 4",
                "SELECT a.k FROM a LEFT JOIN b ON a.k = b.k WHERE b.k IS NULL",
            ] {
                assert_plans_agree(&pinned, sql, true)?;
            }
            assert_plans_agree(
                &pinned,
                "SELECT a.k, COUNT(*) FROM a JOIN b ON a.k = b.k GROUP BY a.k",
                false,
            )?;
            Ok(())
        },
    );
}

#[test]
fn plans_agree_while_indexes_flip_on_and_off() {
    // Writers add and drop the very indexes the optimized plan would probe.
    // A pinned snapshot either has the index (optimized takes the probe) or
    // doesn't (optimized degrades to a scan) — both must equal baseline.
    let db = Database::without_cache();
    db.run_script("CREATE TABLE a (k INTEGER, v INTEGER); CREATE TABLE b (k INTEGER, w INTEGER)")
        .unwrap();
    {
        let mut conn = db.connect();
        for i in 0..16i64 {
            conn.execute_with_params(
                "INSERT INTO a VALUES (?, ?)",
                &[Value::Int(i % 4), Value::Int(i)],
            )
            .unwrap();
            conn.execute_with_params(
                "INSERT INTO b VALUES (?, ?)",
                &[Value::Int(i % 4), Value::Int(i * 7)],
            )
            .unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = dbgw_testkit::StressConfig::named("plans_agree_under_index_flips");
    config.threads = 2;
    config.iters = 24;
    dbgw_testkit::stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            // Each thread owns its index names, so CREATE/DROP always pair.
            let table = if w.thread % 2 == 0 { "a" } else { "b" };
            let name = format!("flip_{}_{table}", w.thread);
            conn.execute(&format!("CREATE INDEX {name} ON {table} (k)"))
                .map_err(|e| e.to_string())?;
            conn.execute_with_params(
                "UPDATE a SET v = v + 1 WHERE k = ?",
                &[Value::Int(w.rng.gen_range(0i64..4))],
            )
            .map_err(|e| e.to_string())?;
            conn.execute(&format!("DROP INDEX {name}"))
                .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            let pinned = reader_db.pin();
            for sql in [
                "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k",
                "SELECT a.k, a.v FROM a WHERE a.k = 2",
                "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k WHERE b.w >= 21 ORDER BY a.v LIMIT 6",
            ] {
                assert_plans_agree(&pinned, sql, true)?;
            }
            Ok(())
        },
    );
}

#[test]
fn pinned_pushdown_survives_three_way_join() {
    let st = {
        let db = Database::new();
        db.run_script(
            "CREATE TABLE a (k INTEGER, v INTEGER);
             CREATE TABLE b (k INTEGER, w INTEGER);
             CREATE TABLE c (k INTEGER, u INTEGER);
             INSERT INTO a VALUES (1, 1); INSERT INTO a VALUES (2, 2);
             INSERT INTO b VALUES (1, 10); INSERT INTO b VALUES (2, 20);
             INSERT INTO c VALUES (1, 100); INSERT INTO c VALUES (2, 200)",
        )
        .unwrap();
        db.snapshot()
    };
    let sql = "SELECT a.v, b.w, c.u FROM a \
               JOIN b ON a.k = b.k JOIN c ON b.k = c.k \
               WHERE c.u > 100 AND a.v < 10";
    assert_plans_agree(&st, sql, true).unwrap();
    assert_eq!(
        run_opts(&st, sql, &PlanOptions::all()),
        vec![vec![Value::Int(2), Value::Int(20), Value::Int(200)]]
    );
}

// ---------------------------------------------------------------------------
// Cost-based join ordering: plan choice must never change results
// ---------------------------------------------------------------------------
//
// The cost model is free to pick any join order for an eligible multi-way
// inner join; these properties pin the soundness contract: every order the
// greedy model can choose produces the same multiset of rows as the
// syntactic baseline. Reordering is compared both against the full baseline
// (nested loops, no pushdown) and against the optimized-but-unreordered
// plan, isolating the rewrite itself.

/// `PlanOptions::all` with only the cost-based reordering disabled.
fn no_reorder() -> PlanOptions {
    let mut opts = PlanOptions::all();
    opts.reorder = false;
    opts
}

/// Assert that optimized (reordered), optimized-unreordered, and baseline
/// plans agree as multisets for one query.
fn assert_orders_agree(state: &DbState, sql: &str) -> Result<(), String> {
    let reordered = canon(run_opts(state, sql, &PlanOptions::all()));
    let syntactic = canon(run_opts(state, sql, &no_reorder()));
    let baseline = canon(run_opts(state, sql, &PlanOptions::baseline()));
    if reordered != syntactic {
        return Err(format!(
            "reordering changed results for {sql}:\n  reordered: {reordered:?}\n  syntactic: {syntactic:?}"
        ));
    }
    if reordered != baseline {
        return Err(format!(
            "optimized != baseline for {sql}:\n  optimized: {reordered:?}\n  baseline:  {baseline:?}"
        ));
    }
    Ok(())
}

/// Four joinable tables with indexed keys, loaded from row specs.
fn graph_state(a: &[(i64, i64)], b: &[(i64, i64)], c: &[(i64, i64)], d: &[(i64, i64)]) -> DbState {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, v INTEGER);
         CREATE TABLE c (k INTEGER, v INTEGER);
         CREATE TABLE d (k INTEGER, v INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX c_k ON c (k)",
    )
    .unwrap();
    let mut conn = db.connect();
    for (table, rows) in [("a", a), ("b", b), ("c", c), ("d", d)] {
        for (k, v) in rows {
            conn.execute_with_params(
                &format!("INSERT INTO {table} VALUES (?, ?)"),
                &[Value::Int(*k), Value::Int(*v)],
            )
            .unwrap();
        }
    }
    db.snapshot()
}

props! {
    config(cases = 32);

    fn join_order_choice_is_invariant(
        a in vec_of((ints(0..4), ints(0..40)), 0..=10),
        b in vec_of((ints(0..4), ints(0..40)), 0..=10),
        c in vec_of((ints(0..4), ints(0..40)), 0..=10),
        d in vec_of((ints(0..4), ints(0..40)), 0..=10),
        x in ints(0..40),
    ) {
        let st = graph_state(&a, &b, &c, &d);
        let queries = [
            // Chain graph, WHERE filter on the syntactically-first table.
            format!(
                "SELECT a.v, b.v, c.v, d.v FROM a \
                 JOIN b ON a.k = b.k JOIN c ON b.k = c.k JOIN d ON c.k = d.k \
                 WHERE a.v < {x}"
            ),
            // Star graph around `a`, filter on the last table.
            format!(
                "SELECT a.v, b.v, c.v, d.v FROM a \
                 JOIN b ON a.k = b.k JOIN c ON a.k = c.k JOIN d ON a.k = d.k \
                 WHERE d.v >= {x}"
            ),
            // Comma joins: the same graph written entirely in WHERE.
            format!(
                "SELECT a.v, b.v, c.v FROM a, b, c \
                 WHERE a.k = b.k AND b.k = c.k AND c.v < {x}"
            ),
            // Disconnected component: `c` joins by a trivial condition, so
            // the greedy order must park the cross join without losing rows.
            format!(
                "SELECT a.v, b.v, c.v FROM a \
                 JOIN b ON a.k = b.k JOIN c ON 1 = 1 WHERE c.v < {x}"
            ),
            // Deterministic output: a full ORDER BY pins the rows exactly.
            format!(
                "SELECT a.v, b.v, c.v FROM a \
                 JOIN b ON a.k = b.k JOIN c ON b.k = c.k \
                 WHERE b.v <= {x} ORDER BY 1, 2, 3 LIMIT 7"
            ),
        ];
        for q in &queries {
            if let Err(msg) = assert_orders_agree(&st, q) {
                prop_assert_eq!(true, false, "{msg}");
            }
        }
    }
}

#[test]
fn pinned_reorder_handles_empty_and_skewed_tables() {
    // Empty middle table, heavily skewed edges: orders that start from the
    // empty table must still produce the (empty) correct answer.
    let big: Vec<(i64, i64)> = (0..50).map(|i| (i % 3, i)).collect();
    let st = graph_state(&big, &[], &[(0, 1), (1, 2)], &[(2, 9)]);
    for sql in [
        "SELECT a.v, b.v, c.v FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k",
        "SELECT a.v, c.v, d.v FROM a JOIN c ON a.k = c.k JOIN d ON c.k = d.k",
        "SELECT a.v, c.v, d.v FROM a, c, d WHERE a.k = c.k AND c.k = d.k AND a.v < 10",
    ] {
        assert_orders_agree(&st, sql).unwrap();
    }
}

#[test]
fn pinned_reorder_ineligible_shapes_run_unchanged() {
    let st = graph_state(&[(0, 1), (1, 2)], &[(0, 10)], &[(0, 100)], &[]);
    // LEFT JOIN anywhere, bare `*`, and duplicate table names must bypass
    // the rewrite entirely — and still agree with baseline.
    for sql in [
        "SELECT a.v, b.v, c.v FROM a JOIN b ON a.k = b.k LEFT JOIN c ON b.k = c.k",
        "SELECT a.v, b.v, c.v FROM a LEFT JOIN b ON a.k = b.k JOIN c ON a.k = c.k",
    ] {
        assert_plans_agree(&st, sql, true).unwrap();
    }
    let star = canon(run_opts(
        &st,
        "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k",
        &PlanOptions::all(),
    ));
    let star_base = canon(run_opts(
        &st,
        "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k",
        &PlanOptions::baseline(),
    ));
    assert_eq!(star, star_base);
}

// ---------------------------------------------------------------------------
// Set operations ≡ brute-force bag/set algebra
// ---------------------------------------------------------------------------

fn ref_distinct(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = Vec::new();
    for r in rows {
        if !out.contains(r) {
            out.push(r.clone());
        }
    }
    out
}

/// Reference semantics for one set operation over materialized branches,
/// written directly from the SQL definition (distinct = set algebra,
/// ALL = bag algebra with `min`/`max(l - r, 0)` copy counts).
fn ref_set_op(op: &str, all: bool, l: &[Vec<Value>], r: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut left = l.to_vec();
    match (op, all) {
        ("UNION", true) => {
            left.extend(r.iter().cloned());
            left
        }
        ("UNION", false) => {
            left.extend(r.iter().cloned());
            ref_distinct(&left)
        }
        ("EXCEPT", false) => ref_distinct(&left)
            .into_iter()
            .filter(|row| !r.contains(row))
            .collect(),
        ("EXCEPT", true) => {
            let mut remaining = r.to_vec();
            left.retain(|row| match remaining.iter().position(|x| x == row) {
                Some(i) => {
                    remaining.swap_remove(i);
                    false
                }
                None => true,
            });
            left
        }
        ("INTERSECT", false) => ref_distinct(&left)
            .into_iter()
            .filter(|row| r.contains(row))
            .collect(),
        ("INTERSECT", true) => {
            let mut remaining = r.to_vec();
            left.retain(|row| match remaining.iter().position(|x| x == row) {
                Some(i) => {
                    remaining.swap_remove(i);
                    true
                }
                None => false,
            });
            left
        }
        other => panic!("unknown op {other:?}"),
    }
}

/// Two tables whose full contents are the set-operation branches.
fn set_op_state(l: &[(i64, i64)], r: &[(i64, i64)]) -> DbState {
    let db = Database::new();
    db.run_script("CREATE TABLE l (k INTEGER, v INTEGER); CREATE TABLE r (k INTEGER, v INTEGER)")
        .unwrap();
    let mut conn = db.connect();
    for (table, rows) in [("l", l), ("r", r)] {
        for (k, v) in rows {
            conn.execute_with_params(
                &format!("INSERT INTO {table} VALUES (?, ?)"),
                &[Value::Int(*k), Value::Int(*v)],
            )
            .unwrap();
        }
    }
    db.snapshot()
}

fn int_rows(rows: &[(i64, i64)]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
        .collect()
}

props! {
    config(cases = 48);

    fn set_ops_match_bag_algebra(
        l in vec_of((ints(0..3), ints(0..3)), 0..=12),
        r in vec_of((ints(0..3), ints(0..3)), 0..=12),
    ) {
        let st = set_op_state(&l, &r);
        let lv = int_rows(&l);
        let rv = int_rows(&r);
        for op in ["UNION", "EXCEPT", "INTERSECT"] {
            for all in [false, true] {
                let kw = if all { format!("{op} ALL") } else { op.to_string() };
                let sql = format!("SELECT k, v FROM l {kw} SELECT k, v FROM r");
                let got = canon(run_opts(&st, &sql, &PlanOptions::all()));
                let want = canon(ref_set_op(op, all, &lv, &rv));
                prop_assert_eq!(got, want, "{kw} diverged from reference");
                // And plan options must not matter for set operations.
                let base = canon(run_opts(&st, &sql, &PlanOptions::baseline()));
                let fast = canon(run_opts(&st, &sql, &PlanOptions::all()));
                prop_assert_eq!(fast, base, "{kw} plan-sensitive");
            }
        }
    }

    fn chained_set_ops_fold_left(
        l in vec_of((ints(0..3), ints(0..2)), 0..=8),
        r in vec_of((ints(0..3), ints(0..2)), 0..=8),
        s in vec_of((ints(0..3), ints(0..2)), 0..=8),
    ) {
        // (l UNION ALL r) EXCEPT s — set operations associate left.
        let db = Database::new();
        db.run_script(
            "CREATE TABLE l (k INTEGER, v INTEGER);
             CREATE TABLE r (k INTEGER, v INTEGER);
             CREATE TABLE s (k INTEGER, v INTEGER)",
        )
        .unwrap();
        let mut conn = db.connect();
        for (table, rows) in [("l", &l), ("r", &r), ("s", &s)] {
            for (k, v) in rows {
                conn.execute_with_params(
                    &format!("INSERT INTO {table} VALUES (?, ?)"),
                    &[Value::Int(*k), Value::Int(*v)],
                )
                .unwrap();
            }
        }
        let st = db.snapshot();
        let sql = "SELECT k, v FROM l UNION ALL SELECT k, v FROM r EXCEPT SELECT k, v FROM s";
        let got = canon(run_opts(&st, sql, &PlanOptions::all()));
        let mut union_all = int_rows(&l);
        union_all.extend(int_rows(&r));
        let want = canon(ref_set_op("EXCEPT", false, &union_all, &int_rows(&s)));
        prop_assert_eq!(got, want);
    }
}

#[test]
fn pinned_set_op_empty_branches() {
    let st = set_op_state(&[(1, 1), (1, 1)], &[]);
    for (sql, expect_rows) in [
        ("SELECT k, v FROM l UNION SELECT k, v FROM r", 1),
        ("SELECT k, v FROM l UNION ALL SELECT k, v FROM r", 2),
        ("SELECT k, v FROM l EXCEPT SELECT k, v FROM r", 1),
        ("SELECT k, v FROM l EXCEPT ALL SELECT k, v FROM r", 2),
        ("SELECT k, v FROM l INTERSECT SELECT k, v FROM r", 0),
        ("SELECT k, v FROM l INTERSECT ALL SELECT k, v FROM r", 0),
        ("SELECT k, v FROM r EXCEPT ALL SELECT k, v FROM l", 0),
    ] {
        assert_eq!(
            run_opts(&st, sql, &PlanOptions::all()).len(),
            expect_rows,
            "{sql}"
        );
    }
}

// ---------------------------------------------------------------------------
// Window functions ≡ an O(n²) reference implementation
// ---------------------------------------------------------------------------

/// Reference window computation over `(k, v)` rows in insertion order:
/// partitions by `k`, orders by `v` (stable on insertion order), and emits
/// `[k, v, ROW_NUMBER, RANK, running SUM(v)]` per row with the default
/// RANGE frame (partition start through the current peer group).
fn ref_windows(rows: &[(i64, i64)]) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    let mut seen_parts: Vec<i64> = Vec::new();
    for (k, _) in rows {
        if !seen_parts.contains(k) {
            seen_parts.push(*k);
        }
    }
    for part in seen_parts {
        let mut members: Vec<(usize, i64)> = rows
            .iter()
            .enumerate()
            .filter(|(_, (k, _))| *k == part)
            .map(|(i, (_, v))| (i, *v))
            .collect();
        members.sort_by_key(|(i, v)| (*v, *i)); // stable order-by-v
        let n = members.len();
        let mut pos = 0;
        while pos < n {
            let mut end = pos + 1;
            while end < n && members[end].1 == members[pos].1 {
                end += 1;
            }
            let frame_sum: i64 = members[..end].iter().map(|(_, v)| v).sum();
            for (offset, (_, v)) in members[pos..end].iter().enumerate() {
                out.push(vec![
                    Value::Int(part),
                    Value::Int(*v),
                    Value::Int((pos + offset + 1) as i64), // ROW_NUMBER
                    Value::Int((pos + 1) as i64),          // RANK (with gaps)
                    Value::Int(frame_sum),                 // running SUM
                ]);
            }
            pos = end;
        }
    }
    out
}

props! {
    config(cases = 48);

    fn windows_match_quadratic_reference(
        rows in vec_of((ints(0..4), ints(0..6)), 0..=20),
    ) {
        let st = set_op_state(&rows, &[]);
        let sql = "SELECT k, v, \
                   ROW_NUMBER() OVER (PARTITION BY k ORDER BY v), \
                   RANK() OVER (PARTITION BY k ORDER BY v), \
                   SUM(v) OVER (PARTITION BY k ORDER BY v) \
                   FROM l";
        let got = canon(run_opts(&st, sql, &PlanOptions::all()));
        let want = canon(ref_windows(&rows));
        prop_assert_eq!(got, want, "window reference diverged");
        // Plan options must not matter for window computation.
        let base = canon(run_opts(&st, sql, &PlanOptions::baseline()));
        let fast = canon(run_opts(&st, sql, &PlanOptions::all()));
        prop_assert_eq!(fast, base);
    }

    fn unordered_window_sums_whole_partition(
        rows in vec_of((ints(0..3), ints(0..5)), 0..=16),
    ) {
        let st = set_op_state(&rows, &[]);
        // No ORDER BY in OVER: the frame is the entire partition.
        let sql = "SELECT k, v, SUM(v) OVER (PARTITION BY k) FROM l";
        let got = canon(run_opts(&st, sql, &PlanOptions::all()));
        let want = canon(
            rows.iter()
                .map(|(k, v)| {
                    let total: i64 = rows.iter().filter(|(k2, _)| k2 == k).map(|(_, v2)| v2).sum();
                    vec![Value::Int(*k), Value::Int(*v), Value::Int(total)]
                })
                .collect::<Vec<_>>(),
        );
        prop_assert_eq!(got, want);
    }
}

#[test]
fn pinned_window_edge_cases() {
    // Empty input, single row, all-ties, and a global (unpartitioned) window.
    let st = set_op_state(&[], &[]);
    assert!(run_opts(
        &st,
        "SELECT ROW_NUMBER() OVER (ORDER BY v) FROM l",
        &PlanOptions::all()
    )
    .is_empty());

    let st = set_op_state(&[(7, 3)], &[]);
    assert_eq!(
        run_opts(
            &st,
            "SELECT k, ROW_NUMBER() OVER (ORDER BY v), RANK() OVER (ORDER BY v) FROM l",
            &PlanOptions::all()
        ),
        vec![vec![Value::Int(7), Value::Int(1), Value::Int(1)]]
    );

    // All rows tie on the RANK key: RANK stays 1, ROW_NUMBER still counts.
    let st = set_op_state(&[(1, 5), (2, 5), (3, 5)], &[]);
    let rows = canon(run_opts(
        &st,
        "SELECT k, ROW_NUMBER() OVER (ORDER BY v), RANK() OVER (ORDER BY v) FROM l",
        &PlanOptions::all(),
    ));
    assert_eq!(
        rows.iter().map(|r| r[2].clone()).collect::<Vec<_>>(),
        vec![Value::Int(1); 3]
    );
    let mut rns: Vec<Value> = rows.iter().map(|r| r[1].clone()).collect();
    rns.sort_by(|a, b| a.order_key(b));
    assert_eq!(rns, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
}

// ---------------------------------------------------------------------------
// Subqueries ≡ manual nested evaluation
// ---------------------------------------------------------------------------

props! {
    config(cases = 48);

    fn subqueries_match_nested_evaluation(
        l in vec_of((ints(0..5), ints(0..10)), 0..=14),
        r in vec_of((ints(0..5), ints(0..10)), 0..=14),
        cut in ints(0..10),
    ) {
        let st = set_op_state(&l, &r);

        // Scalar subquery: v > (SELECT MAX(v) FROM r). Empty r → NULL → no rows.
        let got = canon(run_opts(
            &st,
            "SELECT k, v FROM l WHERE v > (SELECT MAX(v) FROM r)",
            &PlanOptions::all(),
        ));
        let max_r = r.iter().map(|(_, v)| *v).max();
        let want: Vec<Vec<Value>> = match max_r {
            Some(m) => l
                .iter()
                .filter(|(_, v)| *v > m)
                .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
                .collect(),
            None => Vec::new(),
        };
        prop_assert_eq!(got, canon(want), "scalar subquery diverged");

        // IN subquery with an inner filter.
        let sql = format!("SELECT k, v FROM l WHERE k IN (SELECT k FROM r WHERE v > {cut})");
        let got = canon(run_opts(&st, &sql, &PlanOptions::all()));
        let keys: Vec<i64> = r.iter().filter(|(_, v)| *v > cut).map(|(k, _)| *k).collect();
        let want: Vec<Vec<Value>> = l
            .iter()
            .filter(|(k, _)| keys.contains(k))
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect();
        prop_assert_eq!(got, canon(want), "IN subquery diverged");

        // NOT IN over a non-NULL inner set.
        let sql = format!("SELECT k, v FROM l WHERE k NOT IN (SELECT k FROM r WHERE v > {cut})");
        let got = canon(run_opts(&st, &sql, &PlanOptions::all()));
        let want: Vec<Vec<Value>> = l
            .iter()
            .filter(|(k, _)| !keys.contains(k))
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect();
        prop_assert_eq!(got, canon(want), "NOT IN subquery diverged");

        // Uncorrelated EXISTS: all-or-nothing.
        let sql = format!("SELECT k, v FROM l WHERE EXISTS (SELECT 1 FROM r WHERE v > {cut})");
        let got = canon(run_opts(&st, &sql, &PlanOptions::all()));
        let want = if keys.is_empty() { Vec::new() } else { int_rows(&l) };
        prop_assert_eq!(got, canon(want), "EXISTS diverged");
    }
}

// ---------------------------------------------------------------------------
// New operators under concurrent-writer snapshots
// ---------------------------------------------------------------------------

#[test]
fn reordered_joins_and_new_operators_agree_on_churning_snapshots() {
    let db = Database::without_cache();
    db.run_script(
        "CREATE TABLE a (k INTEGER, v INTEGER);
         CREATE TABLE b (k INTEGER, v INTEGER);
         CREATE TABLE c (k INTEGER, v INTEGER);
         CREATE INDEX a_k ON a (k);
         CREATE INDEX b_k ON b (k)",
    )
    .unwrap();
    {
        let mut conn = db.connect();
        for i in 0..30i64 {
            for t in ["a", "b", "c"] {
                conn.execute_with_params(
                    &format!("INSERT INTO {t} VALUES (?, ?)"),
                    &[Value::Int(i % 5), Value::Int(i)],
                )
                .unwrap();
            }
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = dbgw_testkit::StressConfig::named("planner_v2_under_row_churn");
    config.threads = 3;
    config.iters = 24;
    dbgw_testkit::stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            let k = w.rng.gen_range(0i64..5);
            let delta = w.rng.gen_range(1i64..50);
            let table = ["a", "b", "c"][w.rng.gen_range(0usize..3)];
            match w.rng.gen_range(0u32..3) {
                0 => conn.execute_with_params(
                    &format!("UPDATE {table} SET v = v + ? WHERE k = ?"),
                    &[Value::Int(delta), Value::Int(k)],
                ),
                1 => conn.execute_with_params(
                    &format!("INSERT INTO {table} VALUES (?, ?)"),
                    &[Value::Int(k), Value::Int(delta)],
                ),
                _ => conn.execute_with_params(
                    &format!("DELETE FROM {table} WHERE k = ? AND v > ?"),
                    &[Value::Int(k), Value::Int(delta * 4)],
                ),
            }
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            let pinned = reader_db.pin();
            // Reordered 3-way joins: any cost-model order must equal the
            // syntactic baseline on this frozen snapshot.
            for sql in [
                "SELECT a.v, b.v, c.v FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k \
                 WHERE a.v < 100",
                "SELECT a.v, b.v, c.v FROM a, b, c WHERE a.k = b.k AND a.k = c.k AND c.v >= 5",
            ] {
                assert_orders_agree(&pinned, sql)?;
            }
            // New operators: windows and set ops are plan-independent.
            for sql in [
                "SELECT k, SUM(v) OVER (PARTITION BY k) FROM a",
                "SELECT k, v FROM a EXCEPT ALL SELECT k, v FROM b",
                "SELECT k, v FROM a INTERSECT SELECT k, v FROM c",
            ] {
                let fast = canon(run_opts(&pinned, sql, &PlanOptions::all()));
                let slow = canon(run_opts(&pinned, sql, &PlanOptions::baseline()));
                if fast != slow {
                    return Err(format!("plan-sensitive on snapshot: {sql}"));
                }
            }
            // Statistics on a pinned snapshot stay internally consistent:
            // a table's row count never exceeds stats rows + staleness window.
            for t in ["a", "b", "c"] {
                if let Some(stats) = &pinned.tables[t].stats {
                    let heap = pinned.tables[t].heap.len() as i64;
                    let drift = (stats.rows as i64 - heap).abs();
                    if drift != 0 {
                        return Err(format!(
                            "stats incoherent on pinned snapshot for {t}: stats={} heap={heap}",
                            stats.rows
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}
