//! A sqllogictest-style golden corpus runner.
//!
//! Each `tests/data/*.slt` file is a sequence of records separated by blank
//! lines, executed on one connection in order:
//!
//! ```text
//! statement ok          # must succeed
//! CREATE TABLE t (a INT)
//!
//! statement error       # must fail (optionally: statement error -204)
//! CREATE TABLE t (a INT)
//!
//! statement count 2     # DML touching exactly 2 rows
//! UPDATE t SET a = 0
//!
//! query                 # rows below ---- must match exactly, in order;
//! SELECT a FROM t       # cells joined with |, NULL spelled NULL
//! ----
//! 1
//! 2
//! ```
//!
//! Lines starting with `#` are comments. The corpus is the behavioural
//! contract of the SQL substrate; grow it whenever a bug is fixed.

use minisql::{Database, ExecResult};
use std::fmt::Write as _;
use std::path::PathBuf;

fn run_file(name: &str, content: &str) {
    let db = Database::new();
    let mut conn = db.connect();
    let mut failures = String::new();

    for (record_no, record) in split_records(content).into_iter().enumerate() {
        let mut lines = record.lines().peekable();
        let directive = lines.next().expect("records are non-empty").trim();
        let rest: Vec<&str> = lines.collect();
        let (sql_lines, expected): (Vec<&str>, Option<Vec<&str>>) =
            match rest.iter().position(|l| l.trim() == "----") {
                Some(split) => (rest[..split].to_vec(), Some(rest[split + 1..].to_vec())),
                None => (rest, None),
            };
        let sql = sql_lines.join("\n");
        let label = format!("{name} record #{0} ({directive}): {sql}", record_no + 1);

        if directive == "statement ok" {
            if let Err(e) = conn.execute(&sql) {
                writeln!(failures, "{label}\n  expected success, got {e}").unwrap();
            }
        } else if let Some(code_text) = directive.strip_prefix("statement error") {
            // Optional SQLCODE: `statement error -204` pins the exact code.
            let want_code: Option<i32> = code_text.trim().parse().ok();
            match (conn.execute(&sql), want_code) {
                (Ok(_), _) => {
                    writeln!(failures, "{label}\n  expected an error, got success").unwrap();
                }
                (Err(e), Some(want)) if e.code.0 != want => {
                    writeln!(
                        failures,
                        "{label}\n  expected SQLCODE {want}, got {} ({})",
                        e.code.0, e.message
                    )
                    .unwrap();
                }
                (Err(_), _) => {}
            }
        } else if let Some(n) = directive.strip_prefix("statement count ") {
            let want: usize = n.trim().parse().expect("count directive");
            match conn.execute(&sql) {
                Ok(ExecResult::Count(got)) if got == want => {}
                Ok(other) => {
                    writeln!(failures, "{label}\n  expected Count({want}), got {other:?}").unwrap();
                }
                Err(e) => writeln!(failures, "{label}\n  expected Count({want}), got {e}").unwrap(),
            }
        } else if directive == "query" {
            let expected = expected.unwrap_or_default();
            match conn.execute(&sql) {
                Ok(ExecResult::Rows(rs)) => {
                    let got: Vec<String> = rs
                        .rows
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|v| {
                                    if v.is_null() {
                                        "NULL".to_owned()
                                    } else {
                                        v.to_display_string()
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join("|")
                        })
                        .collect();
                    let want: Vec<String> = expected.iter().map(|l| l.to_string()).collect();
                    if got != want {
                        writeln!(failures, "{label}\n  expected {want:?}\n  got      {got:?}")
                            .unwrap();
                    }
                }
                Ok(other) => writeln!(failures, "{label}\n  expected rows, got {other:?}").unwrap(),
                Err(e) => writeln!(failures, "{label}\n  query failed: {e}").unwrap(),
            }
        } else {
            panic!("{name}: unknown directive {directive:?}");
        }
    }
    assert!(failures.is_empty(), "\n{failures}");
}

fn split_records(content: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut current = String::new();
    for line in content.lines() {
        let is_comment = line.trim_start().starts_with('#');
        if line.trim().is_empty() {
            if !current.trim().is_empty() {
                records.push(std::mem::take(&mut current));
            }
            current.clear();
        } else if !is_comment {
            current.push_str(line);
            current.push('\n');
        }
    }
    if !current.trim().is_empty() {
        records.push(current);
    }
    records
}

#[test]
fn corpus() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/data exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "slt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .slt files in {dir:?}");
    for file in files {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let content = std::fs::read_to_string(&file).expect("readable corpus file");
        run_file(&name, &content);
    }
}
