//! Injectable time sources.
//!
//! Two distinct notions of time, deliberately kept apart:
//!
//! * [`Clock`] — a **monotonic** nanosecond counter for measuring durations.
//!   Binaries use [`StdClock`] (anchored `std::time::Instant`); tests use
//!   [`TestClock`] and advance it by hand, making every recorded duration
//!   deterministic.
//! * [`WallClock`] — **civil** time as seconds since the Unix epoch, for the
//!   access log's Common Log Format timestamps. [`TestWallClock`] pins it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (fixed per instance) origin.
    fn now_ns(&self) -> u64;
}

/// The std monotonic clock, anchored at construction.
#[derive(Debug)]
pub struct StdClock {
    origin: Instant,
}

impl StdClock {
    /// A clock whose origin is "now".
    pub fn new() -> StdClock {
        StdClock {
            origin: Instant::now(),
        }
    }
}

impl Default for StdClock {
    fn default() -> Self {
        StdClock::new()
    }
}

impl Clock for StdClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct TestClock {
    ns: AtomicU64,
}

impl TestClock {
    /// A clock reading zero.
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Move time forward by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.advance_ns(us * 1_000);
    }

    /// Move time forward by `ms` milliseconds.
    pub fn advance_millis(&self, ms: u64) {
        self.advance_ns(ms * 1_000_000);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Milliseconds of monotonic time since a fixed per-process origin (first
/// call). Unlike [`StdClock`] instances — each anchored at its own
/// construction — every caller in the process shares one origin, so values
/// recorded by different subsystems (e.g. the snapshot-publish gauge and the
/// `/stats` renderer) are directly comparable.
pub fn process_mono_ms() -> u64 {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// A civil-time source: seconds since the Unix epoch.
pub trait WallClock: Send + Sync {
    /// Seconds since 1970-01-01T00:00:00Z.
    fn epoch_secs(&self) -> u64;
}

/// The system wall clock.
#[derive(Debug, Default)]
pub struct SystemWallClock;

impl WallClock for SystemWallClock {
    fn epoch_secs(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A pinned, hand-advanced wall clock for tests.
#[derive(Debug, Default)]
pub struct TestWallClock {
    secs: AtomicU64,
}

impl TestWallClock {
    /// A wall clock reading `epoch_secs`.
    pub fn at(epoch_secs: u64) -> TestWallClock {
        TestWallClock {
            secs: AtomicU64::new(epoch_secs),
        }
    }

    /// Move time forward by `secs` seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.secs.fetch_add(secs, Ordering::SeqCst);
    }
}

impl WallClock for TestWallClock {
    fn epoch_secs(&self) -> u64 {
        self.secs.load(Ordering::SeqCst)
    }
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Format an epoch-seconds value as an NCSA Common Log Format timestamp,
/// e.g. `[10/Oct/1996:13:55:36 +0000]`. Always UTC — the 1996 httpd logged
/// the server's zone; the reproduction standardizes on `+0000` so log lines
/// compare bit-for-bit across machines.
pub fn format_clf(epoch_secs: u64) -> String {
    let days = epoch_secs / 86_400;
    let secs_of_day = epoch_secs % 86_400;
    let (year, month, day) = civil_from_days(days as i64);
    format!(
        "[{:02}/{}/{}:{:02}:{:02}:{:02} +0000]",
        day,
        MONTHS[(month - 1) as usize],
        year,
        secs_of_day / 3_600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60
    )
}

/// Days-since-epoch to (year, month, day), via the standard civil-calendar
/// algorithm (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_clock_is_monotonic() {
        let c = StdClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_advances_exactly() {
        let c = TestClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_micros(3);
        c.advance_millis(1);
        assert_eq!(c.now_ns(), 1_003_000);
    }

    #[test]
    fn clf_formats_known_instants() {
        // 1996-06-04 12:00:00 UTC (SIGMOD '96 week).
        assert_eq!(format_clf(833_889_600), "[04/Jun/1996:12:00:00 +0000]");
        // The epoch itself.
        assert_eq!(format_clf(0), "[01/Jan/1970:00:00:00 +0000]");
        // A leap-year day: 2000-02-29 23:59:59 UTC.
        assert_eq!(format_clf(951_868_799), "[29/Feb/2000:23:59:59 +0000]");
    }

    #[test]
    fn test_wall_clock_pins_and_advances() {
        let w = TestWallClock::at(833_889_600);
        assert_eq!(w.epoch_secs(), 833_889_600);
        w.advance_secs(61);
        assert_eq!(format_clf(w.epoch_secs()), "[04/Jun/1996:12:01:01 +0000]");
    }
}
