//! Per-request execution context: deadline, cancellation, resource budgets.
//!
//! The 1996 gateway ran one CGI **process** per request, so the operating
//! system bounded every request's lifetime for free: httpd killed the child,
//! and with it the DB2 connection, when the client went away or a timer
//! fired. A long-lived threaded server has no such backstop — a runaway
//! `SELECT` or a pathological macro would pin a worker thread forever. The
//! [`RequestCtx`] is the reproduction's stand-in for that process boundary:
//! one is created at the HTTP edge per request and threaded down through the
//! gateway, the macro engine, the substitution evaluator, and the MiniSQL
//! executor, each of which polls [`RequestCtx::check`] at loop boundaries
//! (cooperative cancellation — nothing is killed mid-statement).
//!
//! Deadlines are computed on the injectable [`Clock`], so a test can pin a
//! [`crate::TestClock`], advance it past the deadline by hand, and observe a
//! deterministic timeout. When no deadline, budget, or cancellation applies
//! (the [`RequestCtx::unbounded`] context), `check` is a single relaxed
//! atomic load — cheap enough for per-row strides in scan loops.
//!
//! When a cancelled request surfaces through SQL execution it wears DB2's
//! own dress: SQLCODE **−952**, "processing was cancelled due to an
//! interrupt" ([`CANCELLED_SQLCODE`]), so `%SQL_MESSAGE{-952 ...%}` handlers
//! in macros can intercept a timeout exactly like any other SQL error.

use crate::clock::{Clock, StdClock};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The SQLCODE a cancelled or timed-out request reports through the SQL
/// layer: DB2's −952, "processing was cancelled due to an interrupt".
pub const CANCELLED_SQLCODE: i32 = -952;

/// Why a request was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The per-request wall-clock deadline passed.
    DeadlineExceeded {
        /// The configured deadline, milliseconds.
        deadline_ms: u64,
    },
    /// [`RequestCtx::cancel`] was called (client gone, shutdown, ...).
    Cancelled,
    /// The request rendered more report rows than its budget allows.
    RowBudgetExceeded {
        /// The configured row budget.
        budget: u64,
    },
    /// The request produced more output bytes than its budget allows.
    ByteBudgetExceeded {
        /// The configured byte budget.
        budget: u64,
    },
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::DeadlineExceeded { deadline_ms } => {
                write!(f, "request deadline of {deadline_ms} ms exceeded")
            }
            CancelReason::Cancelled => write!(f, "request cancelled"),
            CancelReason::RowBudgetExceeded { budget } => {
                write!(f, "request row budget of {budget} rows exceeded")
            }
            CancelReason::ByteBudgetExceeded { budget } => {
                write!(f, "request byte budget of {budget} bytes exceeded")
            }
        }
    }
}

/// Per-request execution context. See the [module docs](self).
///
/// Construction is builder-style:
///
/// ```
/// use dbgw_obs::ctx::RequestCtx;
/// use dbgw_obs::TestClock;
/// use std::sync::Arc;
///
/// let clock = Arc::new(TestClock::new());
/// let ctx = RequestCtx::new(7, clock.clone()).with_deadline_ms(50);
/// assert!(ctx.check().is_ok());
/// clock.advance_millis(51);
/// assert!(ctx.check().is_err());
/// ```
pub struct RequestCtx {
    request_id: u64,
    clock: Arc<dyn Clock>,
    /// Absolute deadline on `clock`, with the configured relative value kept
    /// for the error message. `None` = no deadline.
    deadline: Option<(u64, u64)>, // (deadline_ns, deadline_ms)
    cancelled: AtomicBool,
    row_budget: Option<u64>,
    rows_used: AtomicU64,
    byte_budget: Option<u64>,
    bytes_used: AtomicU64,
}

impl fmt::Debug for RequestCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestCtx")
            .field("request_id", &self.request_id)
            .field("deadline_ms", &self.deadline.map(|(_, ms)| ms))
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .field("row_budget", &self.row_budget)
            .field("byte_budget", &self.byte_budget)
            .finish()
    }
}

impl RequestCtx {
    /// A context with no deadline and no budgets, on `clock`.
    pub fn new(request_id: u64, clock: Arc<dyn Clock>) -> RequestCtx {
        RequestCtx {
            request_id,
            clock,
            deadline: None,
            cancelled: AtomicBool::new(false),
            row_budget: None,
            rows_used: AtomicU64::new(0),
            byte_budget: None,
            bytes_used: AtomicU64::new(0),
        }
    }

    /// Set a wall-clock deadline `ms` milliseconds from now (on the context's
    /// clock). `0` means "already expired" — useful in tests.
    pub fn with_deadline_ms(mut self, ms: u64) -> RequestCtx {
        let now = self.clock.now_ns();
        self.deadline = Some((now.saturating_add(ms.saturating_mul(1_000_000)), ms));
        self
    }

    /// Cap the number of report rows this request may render.
    pub fn with_row_budget(mut self, rows: u64) -> RequestCtx {
        self.row_budget = Some(rows);
        self
    }

    /// Cap the number of output bytes this request may produce.
    pub fn with_byte_budget(mut self, bytes: u64) -> RequestCtx {
        self.byte_budget = Some(bytes);
        self
    }

    /// The shared do-nothing context: no deadline, no budgets, request id 0.
    /// Layers below the gateway default to this so direct library use (and
    /// every pre-existing call site) keeps working unbounded.
    pub fn unbounded() -> Arc<RequestCtx> {
        static UNBOUNDED: OnceLock<Arc<RequestCtx>> = OnceLock::new();
        UNBOUNDED
            .get_or_init(|| Arc::new(RequestCtx::new(0, Arc::new(StdClock::new()))))
            .clone()
    }

    /// The request id this context was created for.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The monotonic clock this context measures time on — the one clock a
    /// layer below the HTTP edge should use for instrumentation (EXPLAIN
    /// ANALYZE operator timings, digest latency), so a `TestClock` pinned at
    /// the edge makes every recorded duration deterministic.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The configured deadline in milliseconds, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline.map(|(_, ms)| ms)
    }

    /// Ask the request to stop at its next cancellation point.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// The cancellation point: `Err` once the flag is set or the deadline has
    /// passed. On the unbounded context this is one relaxed atomic load.
    pub fn check(&self) -> Result<(), CancelReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(CancelReason::Cancelled);
        }
        if let Some((deadline_ns, deadline_ms)) = self.deadline {
            if self.clock.now_ns() >= deadline_ns {
                return Err(CancelReason::DeadlineExceeded { deadline_ms });
            }
        }
        Ok(())
    }

    /// Like [`check`](Self::check), but returns the reason without the
    /// `Result` wrapper — for error-path code deciding how to report.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.check().err()
    }

    /// Charge `n` rendered rows against the row budget.
    pub fn charge_rows(&self, n: u64) -> Result<(), CancelReason> {
        let used = self.rows_used.fetch_add(n, Ordering::Relaxed) + n;
        match self.row_budget {
            Some(budget) if used > budget => Err(CancelReason::RowBudgetExceeded { budget }),
            _ => Ok(()),
        }
    }

    /// Charge `n` output bytes against the byte budget.
    pub fn charge_bytes(&self, n: u64) -> Result<(), CancelReason> {
        let used = self.bytes_used.fetch_add(n, Ordering::Relaxed) + n;
        match self.byte_budget {
            Some(budget) if used > budget => Err(CancelReason::ByteBudgetExceeded { budget }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn unbounded_never_cancels() {
        let ctx = RequestCtx::unbounded();
        assert!(ctx.check().is_ok());
        assert!(ctx.charge_rows(1_000_000).is_ok());
        assert!(ctx.charge_bytes(1 << 40).is_ok());
        assert_eq!(ctx.request_id(), 0);
    }

    #[test]
    fn deadline_trips_exactly_on_test_clock() {
        let clock = Arc::new(TestClock::new());
        let ctx = RequestCtx::new(42, clock.clone()).with_deadline_ms(100);
        clock.advance_millis(99);
        assert!(ctx.check().is_ok());
        clock.advance_millis(1);
        assert_eq!(
            ctx.check(),
            Err(CancelReason::DeadlineExceeded { deadline_ms: 100 })
        );
        assert_eq!(ctx.cancel_reason(), ctx.check().err());
    }

    #[test]
    fn cancel_flag_wins_over_deadline() {
        let clock = Arc::new(TestClock::new());
        let ctx = RequestCtx::new(1, clock).with_deadline_ms(100);
        ctx.cancel();
        assert_eq!(ctx.check(), Err(CancelReason::Cancelled));
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn row_and_byte_budgets_trip_past_limit() {
        let clock = Arc::new(TestClock::new());
        let ctx = RequestCtx::new(1, clock)
            .with_row_budget(10)
            .with_byte_budget(100);
        assert!(ctx.charge_rows(10).is_ok());
        assert_eq!(
            ctx.charge_rows(1),
            Err(CancelReason::RowBudgetExceeded { budget: 10 })
        );
        assert!(ctx.charge_bytes(100).is_ok());
        assert_eq!(
            ctx.charge_bytes(1),
            Err(CancelReason::ByteBudgetExceeded { budget: 100 })
        );
        // Budgets do not affect check(): they only trip where charged.
        assert!(ctx.check().is_ok());
    }

    #[test]
    fn reasons_render_for_error_pages() {
        let msg = CancelReason::DeadlineExceeded { deadline_ms: 250 }.to_string();
        assert!(msg.contains("250 ms"), "{msg}");
        assert!(CancelReason::Cancelled.to_string().contains("cancelled"));
    }
}
