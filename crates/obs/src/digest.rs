//! Query **digest** aggregation — `pg_stat_statements` for the gateway.
//!
//! Every statement the engine executes is folded into a per-*shape* row: the
//! digest text is the statement with literals masked (computed by the caller
//! with `dbgw_cache::digest_sql`; this crate stays dependency-free and takes
//! the precomputed key + text), so `WHERE id = 7` and `WHERE id = 9`
//! aggregate together and no user-supplied literal ever reaches `/stats`.
//!
//! The store is sharded (FNV key → shard, one `Mutex` each, held for a few
//! loads/stores) and **bounded**: each shard holds at most
//! `capacity / SHARDS` digests and evicts the least-recently-used shape when
//! a new one arrives, counting the eviction in
//! [`crate::metrics::Metrics::digest_evictions`]. A gateway fed pathological
//! SQL (every statement a new shape) therefore has a hard memory ceiling.
//!
//! Attribution that only deeper layers know — did the result cache serve
//! this statement, how long did the writer wait on latches — flows through
//! thread-local **notes** ([`note_cache_hit`], [`note_latch_wait_ns`])
//! stamped by `minisql` while the statement runs and folded into the digest
//! row by the single [`DigestStore::record`] call at statement end.

use crate::metrics::{metrics, BUCKET_BOUNDS_NS};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of shards. Power of two; the shard index is the key's low bits.
const SHARDS: usize = 8;

/// Latency bucket count: [`BUCKET_BOUNDS_NS`] plus the overflow bucket.
const NBUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// Everything one statement execution contributes to its digest row.
#[derive(Debug, Default, Clone, Copy)]
pub struct DigestObservation {
    /// Statement wall time, nanoseconds.
    pub dur_ns: u64,
    /// Did the statement fail (non-zero negative SQLCODE)?
    pub error: bool,
    /// Rows in the statement's result set (0 for DML/DDL).
    pub rows_returned: u64,
    /// Heap rows fetched while executing (scan + probe candidates).
    pub rows_scanned: u64,
    /// `Some(true)` if the SQL result cache served the statement,
    /// `Some(false)` on a miss, `None` when the cache was not consulted
    /// (DML, DDL, uncached connections).
    pub cache_hit: Option<bool>,
    /// Nanoseconds spent blocked on table latches.
    pub latch_wait_ns: u64,
}

/// One digest row, as stored (and snapshotted for rendering).
#[derive(Debug, Clone)]
pub struct DigestSnapshot {
    /// FNV-1a hash of the digest text — the row's identity.
    pub key: u64,
    /// The literal-masked statement text.
    pub text: String,
    /// Executions folded into this row.
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    /// Total result rows returned.
    pub rows_returned: u64,
    /// Total heap rows scanned.
    pub rows_scanned: u64,
    /// Executions served by the SQL result cache.
    pub cache_hits: u64,
    /// Executions that consulted the result cache and missed.
    pub cache_misses: u64,
    /// Total nanoseconds blocked on table latches.
    pub latch_wait_ns: u64,
    /// Total execution time, nanoseconds.
    pub total_ns: u64,
    /// Slowest single execution, nanoseconds.
    pub max_ns: u64,
    /// Latency histogram (non-cumulative; last entry is overflow) on
    /// [`BUCKET_BOUNDS_NS`].
    pub buckets: [u64; NBUCKETS],
}

impl DigestSnapshot {
    /// Mean execution time, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        if self.calls == 0 {
            0
        } else {
            self.total_ns / self.calls
        }
    }

    /// Estimated p99 execution time in nanoseconds (upper bound of the
    /// bucket holding the 99th-percentile observation).
    pub fn p99_ns(&self) -> u64 {
        quantile_from_buckets(&self.buckets, 0.99)
    }
}

/// Upper-bound quantile over non-cumulative bucket counts aligned with
/// [`BUCKET_BOUNDS_NS`] (last slot = overflow). Returns the bound of the
/// bucket containing the `q`-quantile observation; overflow reports twice
/// the last bound. Zero observations → 0.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return BUCKET_BOUNDS_NS
                .get(i)
                .copied()
                .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] * 2);
        }
    }
    BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] * 2
}

#[derive(Debug)]
struct Entry {
    text: String,
    calls: u64,
    errors: u64,
    rows_returned: u64,
    rows_scanned: u64,
    cache_hits: u64,
    cache_misses: u64,
    latch_wait_ns: u64,
    total_ns: u64,
    max_ns: u64,
    buckets: [u64; NBUCKETS],
    /// LRU stamp from the store's global tick.
    last_used: u64,
}

/// The sharded, bounded digest table. One per process ([`digests`]).
#[derive(Debug)]
pub struct DigestStore {
    shards: [Mutex<HashMap<u64, Entry>>; SHARDS],
    per_shard_cap: usize,
    tick: AtomicU64,
    enabled: AtomicBool,
}

impl DigestStore {
    /// A store holding at most `capacity` digests in total (rounded up to a
    /// multiple of the shard count), enabled per `enabled`.
    pub fn with_capacity(capacity: usize, enabled: bool) -> DigestStore {
        DigestStore {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
            enabled: AtomicBool::new(enabled),
        }
    }

    /// Is digest recording on? Callers check this before computing the
    /// digest text, so a disabled store costs one relaxed load per
    /// statement.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (benches measure both sides; `DBGW_DIGESTS=0`
    /// sets the process default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Fold one execution into the digest row for `key`, creating it (text
    /// is only cloned then) and LRU-evicting a cold digest if the shard is
    /// full.
    pub fn record(&self, key: u64, text: &str, obs: &DigestObservation) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[(key as usize) & (SHARDS - 1)];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        let entry = match map.get_mut(&key) {
            Some(e) => e,
            None => {
                if map.len() >= self.per_shard_cap {
                    if let Some(&cold) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
                    {
                        map.remove(&cold);
                        metrics().digest_evictions.inc();
                    }
                }
                map.entry(key).or_insert_with(|| Entry {
                    text: text.to_owned(),
                    calls: 0,
                    errors: 0,
                    rows_returned: 0,
                    rows_scanned: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    latch_wait_ns: 0,
                    total_ns: 0,
                    max_ns: 0,
                    buckets: [0; NBUCKETS],
                    last_used: stamp,
                })
            }
        };
        entry.last_used = stamp;
        entry.calls += 1;
        entry.errors += u64::from(obs.error);
        entry.rows_returned += obs.rows_returned;
        entry.rows_scanned += obs.rows_scanned;
        match obs.cache_hit {
            Some(true) => entry.cache_hits += 1,
            Some(false) => entry.cache_misses += 1,
            None => {}
        }
        entry.latch_wait_ns += obs.latch_wait_ns;
        entry.total_ns += obs.dur_ns;
        entry.max_ns = entry.max_ns.max(obs.dur_ns);
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| obs.dur_ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        entry.buckets[idx] += 1;
    }

    /// Snapshot every digest row (unordered).
    pub fn snapshot(&self) -> Vec<DigestSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.iter().map(|(&key, e)| DigestSnapshot {
                key,
                text: e.text.clone(),
                calls: e.calls,
                errors: e.errors,
                rows_returned: e.rows_returned,
                rows_scanned: e.rows_scanned,
                cache_hits: e.cache_hits,
                cache_misses: e.cache_misses,
                latch_wait_ns: e.latch_wait_ns,
                total_ns: e.total_ns,
                max_ns: e.max_ns,
                buckets: e.buckets,
            }));
        }
        out
    }

    /// The `n` digests with the largest total execution time, descending —
    /// the "where is the database spending its life" view.
    pub fn top_by_total_time(&self, n: usize) -> Vec<DigestSnapshot> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.key.cmp(&b.key)));
        all.truncate(n);
        all
    }

    /// The `n` most-called digests, descending.
    pub fn top_by_calls(&self, n: usize) -> Vec<DigestSnapshot> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.key.cmp(&b.key)));
        all.truncate(n);
        all
    }

    /// Digest rows currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every digest row (tests and `/stats` resets).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// The process-wide digest store. Capacity comes from `DBGW_DIGEST_MAX`
/// (default 512 digests); recording defaults on and `DBGW_DIGESTS=0`
/// disables it.
pub fn digests() -> &'static DigestStore {
    static STORE: OnceLock<DigestStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let cap = std::env::var("DBGW_DIGEST_MAX")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(512);
        let enabled = std::env::var("DBGW_DIGESTS").map_or(true, |v| v != "0");
        DigestStore::with_capacity(cap, enabled)
    })
}

// ---------------------------------------------------------------------------
// Thread-local per-statement notes.
// ---------------------------------------------------------------------------

thread_local! {
    static NOTE_CACHE_HIT: Cell<Option<bool>> = const { Cell::new(None) };
    static NOTE_LATCH_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Note that the running statement hit (`true`) or missed (`false`) the SQL
/// result cache. Recorded by `minisql`; folded into the digest at statement
/// end.
pub fn note_cache_hit(hit: bool) {
    NOTE_CACHE_HIT.with(|c| c.set(Some(hit)));
}

/// Note nanoseconds the running statement spent blocked on table latches
/// (additive — a rollback may latch twice).
pub fn note_latch_wait_ns(ns: u64) {
    NOTE_LATCH_WAIT_NS.with(|c| c.set(c.get() + ns));
}

/// Take (and clear) the notes accumulated since the last call — the
/// `(cache_hit, latch_wait_ns)` pair for the statement that just finished.
pub fn take_notes() -> (Option<bool>, u64) {
    let hit = NOTE_CACHE_HIT.with(|c| c.replace(None));
    let latch = NOTE_LATCH_WAIT_NS.with(|c| c.replace(0));
    (hit, latch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(dur_ns: u64) -> DigestObservation {
        DigestObservation {
            dur_ns,
            ..DigestObservation::default()
        }
    }

    #[test]
    fn aggregates_per_key() {
        let store = DigestStore::with_capacity(64, true);
        store.record(
            1,
            "select * from t where id = ?",
            &DigestObservation {
                dur_ns: 1_000,
                rows_returned: 3,
                rows_scanned: 10,
                cache_hit: Some(false),
                ..Default::default()
            },
        );
        store.record(
            1,
            "select * from t where id = ?",
            &DigestObservation {
                dur_ns: 3_000,
                rows_returned: 3,
                rows_scanned: 0,
                cache_hit: Some(true),
                ..Default::default()
            },
        );
        store.record(
            2,
            "delete from t",
            &DigestObservation {
                dur_ns: 500,
                error: true,
                latch_wait_ns: 42,
                ..Default::default()
            },
        );
        assert_eq!(store.len(), 2);
        let top = store.top_by_calls(10);
        assert_eq!(top[0].calls, 2);
        assert_eq!(top[0].rows_returned, 6);
        assert_eq!(top[0].rows_scanned, 10);
        assert_eq!(top[0].cache_hits, 1);
        assert_eq!(top[0].cache_misses, 1);
        assert_eq!(top[0].total_ns, 4_000);
        assert_eq!(top[0].max_ns, 3_000);
        assert_eq!(top[0].mean_ns(), 2_000);
        assert_eq!(top[1].errors, 1);
        assert_eq!(top[1].latch_wait_ns, 42);
    }

    #[test]
    fn top_by_total_time_orders_by_cost() {
        let store = DigestStore::with_capacity(64, true);
        store.record(1, "cheap", &obs(10));
        for _ in 0..5 {
            store.record(2, "expensive", &obs(1_000_000));
        }
        let top = store.top_by_total_time(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].text, "expensive");
    }

    #[test]
    fn lru_evicts_the_coldest_digest() {
        // Keys in one shard: multiples of SHARDS land in shard 0.
        let store = DigestStore::with_capacity(2 * SHARDS, true);
        let k = |i: u64| i * SHARDS as u64;
        store.record(k(1), "one", &obs(1));
        store.record(k(2), "two", &obs(1));
        store.record(k(1), "one", &obs(1)); // touch "one": "two" is now coldest
        store.record(k(3), "three", &obs(1)); // shard full → evict "two"
        let texts: Vec<String> = store.snapshot().into_iter().map(|s| s.text).collect();
        assert!(texts.contains(&"one".to_owned()), "{texts:?}");
        assert!(texts.contains(&"three".to_owned()), "{texts:?}");
        assert!(!texts.contains(&"two".to_owned()), "{texts:?}");
    }

    #[test]
    fn p99_reports_the_slow_bucket_bound() {
        let store = DigestStore::with_capacity(8, true);
        for _ in 0..50 {
            store.record(1, "q", &obs(900)); // ≤ 1 µs bucket
        }
        store.record(1, "q", &obs(1_900_000)); // ≤ 2,048,000 ns bucket
                                               // 51 observations: the p99 rank (⌈0.99·51⌉ = 51) is the slow one.
        let snap = &store.top_by_calls(1)[0];
        assert_eq!(snap.p99_ns(), 2_048_000);
        // p50 stays in the fast bucket.
        assert_eq!(quantile_from_buckets(&snap.buckets, 0.50), 1_000);
    }

    #[test]
    fn quantiles_handle_empty_and_overflow() {
        assert_eq!(quantile_from_buckets(&[0; NBUCKETS], 0.99), 0);
        let mut b = [0u64; NBUCKETS];
        b[NBUCKETS - 1] = 1; // one overflow observation
        assert_eq!(
            quantile_from_buckets(&b, 0.99),
            BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] * 2
        );
    }

    #[test]
    fn notes_round_trip_and_clear() {
        assert_eq!(take_notes(), (None, 0));
        note_cache_hit(true);
        note_latch_wait_ns(5);
        note_latch_wait_ns(7);
        assert_eq!(take_notes(), (Some(true), 12));
        assert_eq!(take_notes(), (None, 0));
    }

    #[test]
    fn disabled_flag_round_trips() {
        let store = DigestStore::with_capacity(8, false);
        assert!(!store.enabled());
        store.set_enabled(true);
        assert!(store.enabled());
    }
}
