//! Exporters: JSON-lines trace sink, Prometheus-style metrics text, and a
//! human-readable trace tree.
//!
//! All output is assembled by hand (zero-dependency policy); the JSON subset
//! emitted here is exactly what the trajectory tooling and the CI smoke test
//! consume, and the Prometheus text is the standard exposition format so any
//! scraper can parse `/stats?format=prometheus`.

use crate::digest::DigestStore;
use crate::metrics::{Counter, Gauge, Metrics, BUCKET_BOUNDS_NS};
use crate::slo::SloReport;
use crate::trace::{Span, Trace};
use std::io::Write;

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_json(trace: &Trace, idx: usize, span: &Span) -> String {
    let parent = match span.parent {
        Some(p) => p.to_string(),
        None => "null".to_owned(),
    };
    let mut notes = String::new();
    for (i, (key, value)) in span.notes.iter().enumerate() {
        if i > 0 {
            notes.push(',');
        }
        notes.push_str(&format!(
            "\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        ));
    }
    format!(
        "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\"depth\":{},\
         \"start_ns\":{},\"dur_ns\":{},\"notes\":{{{}}}}}",
        trace.request_id,
        idx,
        parent,
        json_escape(span.name),
        span.depth,
        span.start_ns,
        span.dur_ns,
        notes,
    )
}

impl Trace {
    /// Render the trace as JSON lines: one object per span, in start order,
    /// each carrying the owning trace's request id. Ends with a newline.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (idx, span) in self.spans.iter().enumerate() {
            out.push_str(&span_json(self, idx, span));
            out.push('\n');
        }
        out
    }

    /// Append the trace's JSON lines to the file at `path` (created if
    /// absent). Concurrent appenders interleave whole lines at worst.
    pub fn append_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(self.to_json_lines().as_bytes())
    }

    /// Render as a human-readable tree (see [`TraceTree`]).
    pub fn render_tree(&self) -> String {
        TraceTree(self).to_string()
    }
}

/// Human-readable rendering of a [`Trace`]: one line per span, indented by
/// depth, with durations and notes. `Display` does the work so it can be
/// written into anything.
pub struct TraceTree<'a>(pub &'a Trace);

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

impl std::fmt::Display for TraceTree<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let trace = self.0;
        writeln!(
            f,
            "trace request={} spans={} total={}{}",
            trace.request_id,
            trace.spans.len(),
            fmt_ns(trace.total_ns()),
            if trace.dropped > 0 {
                format!(" dropped={}", trace.dropped)
            } else {
                String::new()
            }
        )?;
        for span in &trace.spans {
            let mut label = format!("{}{}", "  ".repeat(span.depth + 1), span.name);
            for (key, value) in &span.notes {
                label.push_str(&format!(" {key}={value:?}"));
            }
            let pad = label.chars().count();
            let pad = if pad < 48 { 48 - pad } else { 1 };
            writeln!(f, "{label}{:pad$}{}", "", fmt_ns(span.dur_ns))?;
        }
        Ok(())
    }
}

/// The gateway's counters, as `(exposition name, help text, field)` — the
/// single vocabulary shared by [`render_prometheus`] and [`metrics_json`].
fn counters(m: &Metrics) -> [(&'static str, &'static str, &Counter); 34] {
    [
        (
            "dbgw_requests_total",
            "Requests handled by the gateway.",
            &m.requests,
        ),
        (
            "dbgw_request_errors_total",
            "Requests that produced an error page (HTTP status >= 400).",
            &m.request_errors,
        ),
        (
            "dbgw_macro_parses_total",
            "Macro files parsed.",
            &m.macro_parses,
        ),
        (
            "dbgw_substitutions_total",
            "Variable-substitution passes run.",
            &m.substitutions,
        ),
        (
            "dbgw_sql_statements_total",
            "SQL statements the engine executed.",
            &m.sql_statements,
        ),
        (
            "dbgw_rows_rendered_total",
            "Report rows rendered into HTML.",
            &m.rows_rendered,
        ),
        (
            "dbgw_slow_queries_total",
            "SQL statements that exceeded the slow-query threshold.",
            &m.slow_queries,
        ),
        (
            "dbgw_traces_recorded_total",
            "Traces recorded (DBGW_TRACE mode).",
            &m.traces_recorded,
        ),
        (
            "dbgw_requests_shed_total",
            "Connections shed with 503 because the accept queue was full.",
            &m.requests_shed,
        ),
        (
            "dbgw_request_timeouts_total",
            "Requests that hit their deadline and returned a timeout page.",
            &m.request_timeouts,
        ),
        (
            "dbgw_cache_hits_total",
            "SQL result-cache lookups that returned a fresh row set.",
            &m.cache_hits,
        ),
        (
            "dbgw_cache_misses_total",
            "SQL result-cache lookups that found nothing usable.",
            &m.cache_misses,
        ),
        (
            "dbgw_cache_evictions_total",
            "Result-cache entries pushed out by the byte budget or TTL.",
            &m.cache_evictions,
        ),
        (
            "dbgw_cache_invalidations_total",
            "Result-cache entries rejected because a referenced table changed.",
            &m.cache_invalidations,
        ),
        (
            "dbgw_stmt_cache_hits_total",
            "Prepared-statement cache hits (parse skipped).",
            &m.stmt_cache_hits,
        ),
        (
            "dbgw_stmt_cache_misses_total",
            "Prepared-statement cache misses (statement parsed and stored).",
            &m.stmt_cache_misses,
        ),
        (
            "dbgw_http_not_modified_total",
            "Conditional GETs answered 304 Not Modified from the ETag.",
            &m.http_not_modified,
        ),
        (
            "dbgw_join_hash_total",
            "Join steps executed with the hash strategy.",
            &m.join_hash,
        ),
        (
            "dbgw_join_nested_total",
            "Join steps executed with the nested-loop strategy.",
            &m.join_nested,
        ),
        (
            "dbgw_pushdown_applied_total",
            "Join queries with at least one WHERE conjunct pushed below the join.",
            &m.pushdown_applied,
        ),
        (
            "dbgw_rows_scanned_total",
            "Rows fetched from table heaps by scans.",
            &m.rows_scanned,
        ),
        (
            "dbgw_latch_waits_total",
            "Table-latch acquisitions that had to wait for another writer.",
            &m.latch_waits,
        ),
        (
            "dbgw_digest_evictions_total",
            "Query digests evicted from the bounded digest store.",
            &m.digest_evictions,
        ),
        (
            "dbgw_stats_refreshes_total",
            "Full table-statistics rebuilds (initial builds and refreshes).",
            &m.stats_refreshes,
        ),
        (
            "dbgw_join_reorders_total",
            "Multi-way joins reordered by the cost-based planner.",
            &m.join_reorders,
        ),
        (
            "dbgw_snapshots_published_total",
            "Database snapshots published.",
            &m.snapshots_published,
        ),
        (
            "dbgw_wal_records_total",
            "Logical records appended to the write-ahead log.",
            &m.wal_records,
        ),
        (
            "dbgw_wal_fsyncs_total",
            "Group-commit flushes fsynced to the write-ahead log.",
            &m.wal_fsyncs,
        ),
        (
            "dbgw_wal_bytes_total",
            "Bytes appended to the write-ahead log.",
            &m.wal_bytes,
        ),
        (
            "dbgw_checkpoints_total",
            "Checkpoints completed (log rewritten as a base snapshot).",
            &m.checkpoints,
        ),
        (
            "dbgw_keepalive_reuses_total",
            "Requests served over an already-established keep-alive connection.",
            &m.keepalive_reuses,
        ),
        (
            "dbgw_pipelined_requests_total",
            "Requests already buffered behind an earlier one on the same connection.",
            &m.pipelined_requests,
        ),
        (
            "dbgw_responses_streamed_total",
            "Responses sent chunked because the body crossed the streaming watermark.",
            &m.responses_streamed,
        ),
        (
            "dbgw_client_disconnects_total",
            "Requests aborted because the client vanished mid-response.",
            &m.client_disconnects,
        ),
    ]
}

/// The gauges, same shape as [`counters`].
fn gauges(m: &Metrics) -> [(&'static str, &'static str, &Gauge); 8] {
    [
        (
            "dbgw_requests_in_flight",
            "Requests currently being processed by pool workers.",
            &m.requests_in_flight,
        ),
        (
            "dbgw_queue_depth",
            "Accepted connections waiting in the bounded queue for a worker.",
            &m.queue_depth,
        ),
        (
            "dbgw_cache_bytes",
            "Bytes currently resident in the statement + result caches.",
            &m.cache_bytes,
        ),
        (
            "dbgw_snapshot_epoch",
            "Epoch of the most recently published database snapshot.",
            &m.snapshot_epoch,
        ),
        (
            "dbgw_wal_size_bytes",
            "Current size of the write-ahead log file in bytes.",
            &m.wal_size_bytes,
        ),
        (
            "dbgw_checkpoint_last_bytes",
            "Size in bytes of the log the most recent checkpoint wrote.",
            &m.checkpoint_last_bytes,
        ),
        (
            "dbgw_open_connections",
            "TCP connections currently open on the evented HTTP edge.",
            &m.open_connections,
        ),
        (
            "dbgw_idle_connections",
            "Open connections currently idle between requests.",
            &m.idle_connections,
        ),
    ]
}

fn histogram_block(out: &mut String, name: &str, help: &str, h: &crate::metrics::Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
        cumulative += counts[i];
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            *bound as f64 / 1e9
        ));
    }
    cumulative += counts[BUCKET_BOUNDS_NS.len()];
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum_ns() as f64 / 1e9));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Age in milliseconds of the most recently published database snapshot
/// (0 until the first publication). A large value on a write-active gateway
/// would mean publication has stalled — the snapshot-read analogue of
/// replication lag.
pub fn snapshot_age_ms(m: &Metrics) -> u64 {
    if m.snapshots_published.get() == 0 {
        return 0;
    }
    crate::clock::process_mono_ms().saturating_sub(m.snapshot_publish_ms.get().max(0) as u64)
}

/// Render a metric registry in the Prometheus text exposition format.
/// Latency histograms are exported in seconds, per convention. Every family
/// carries `# HELP` and `# TYPE` headers (scrapers and the conformance
/// property suite both require them).
pub fn render_prometheus(m: &Metrics) -> String {
    let mut out = String::new();
    for (name, help, counter) in counters(m) {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
            counter.get()
        ));
    }
    for (name, help, gauge) in gauges(m) {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
            gauge.get()
        ));
    }
    out.push_str(&format!(
        "# HELP dbgw_snapshot_age_ms Age of the newest published database snapshot.\n\
         # TYPE dbgw_snapshot_age_ms gauge\ndbgw_snapshot_age_ms {}\n",
        snapshot_age_ms(m)
    ));
    out.push_str(
        "# HELP dbgw_sqlcode_errors_total Error occurrences by SQLCODE.\n\
         # TYPE dbgw_sqlcode_errors_total counter\n",
    );
    for (code, count) in m.sqlcode_errors.snapshot() {
        out.push_str(&format!(
            "dbgw_sqlcode_errors_total{{code=\"{code}\"}} {count}\n"
        ));
    }
    histogram_block(
        &mut out,
        "dbgw_request_latency_seconds",
        "End-to-end gateway request latency.",
        &m.request_latency_ns,
    );
    histogram_block(
        &mut out,
        "dbgw_sql_latency_seconds",
        "Per-statement SQL latency.",
        &m.sql_latency_ns,
    );
    histogram_block(
        &mut out,
        "dbgw_latch_wait_seconds",
        "Per-write-statement time blocked on table latches.",
        &m.latch_wait_ns,
    );
    histogram_block(
        &mut out,
        "dbgw_group_commit_wait_seconds",
        "Time committing writers spent waiting for the group-commit fsync.",
        &m.group_commit_wait_ns,
    );
    histogram_block(
        &mut out,
        "dbgw_ttfb_seconds",
        "Time from accepting a request to the first response byte on the socket.",
        &m.ttfb_ns,
    );
    out
}

/// Escape a string for use as a Prometheus label value (`\\`, `"`, `\n`).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the top-`n` query digests (by total execution time) as Prometheus
/// families labelled by digest key and masked statement text — the scraped
/// counterpart of the `/stats` digest table.
pub fn digest_prometheus(store: &DigestStore, n: usize) -> String {
    let top = store.top_by_total_time(n);
    let mut out = String::new();
    let families: [(&str, &str, fn(&crate::digest::DigestSnapshot) -> String); 7] = [
        (
            "dbgw_digest_calls_total",
            "Executions folded into this query digest.",
            |d| d.calls.to_string(),
        ),
        (
            "dbgw_digest_errors_total",
            "Executions of this digest that returned an error.",
            |d| d.errors.to_string(),
        ),
        (
            "dbgw_digest_rows_returned_total",
            "Result rows returned by this digest.",
            |d| d.rows_returned.to_string(),
        ),
        (
            "dbgw_digest_rows_scanned_total",
            "Heap rows scanned executing this digest.",
            |d| d.rows_scanned.to_string(),
        ),
        (
            "dbgw_digest_cache_hits_total",
            "Executions of this digest served by the SQL result cache.",
            |d| d.cache_hits.to_string(),
        ),
        (
            "dbgw_digest_time_seconds_total",
            "Total execution time of this digest.",
            |d| format!("{}", d.total_ns as f64 / 1e9),
        ),
        (
            "dbgw_digest_latch_wait_seconds_total",
            "Time this digest spent blocked on table latches.",
            |d| format!("{}", d.latch_wait_ns as f64 / 1e9),
        ),
    ];
    for (name, help, value) in families {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for d in &top {
            out.push_str(&format!(
                "{name}{{digest=\"{:016x}\",text=\"{}\"}} {}\n",
                d.key,
                label_escape(&d.text),
                value(d)
            ));
        }
    }
    out
}

/// Render an [`SloReport`] as Prometheus gauges (families are emitted even
/// when unconfigured, with the unconfigured halves omitted).
pub fn slo_prometheus(report: &SloReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# HELP dbgw_slo_window_error_rate Error fraction over the sampled window.\n\
         # TYPE dbgw_slo_window_error_rate gauge\ndbgw_slo_window_error_rate {}\n",
        report.error_rate
    ));
    if let Some(att) = report.latency_attainment_pct {
        out.push_str(&format!(
            "# HELP dbgw_slo_latency_attainment_pct Share of sampled intervals meeting the p99 target.\n\
             # TYPE dbgw_slo_latency_attainment_pct gauge\ndbgw_slo_latency_attainment_pct {att}\n"
        ));
    }
    if let Some(burn) = report.burn_rate {
        out.push_str(&format!(
            "# HELP dbgw_slo_burn_rate Error-budget burn rate (1 = burning exactly at budget).\n\
             # TYPE dbgw_slo_burn_rate gauge\ndbgw_slo_burn_rate {burn}\n"
        ));
    }
    out
}

/// Render a metric registry as one JSON object keyed by the same names the
/// Prometheus exposition uses, so BENCH_JSON consumers and `/stats` scrapers
/// agree on vocabulary. Histograms export their `_count` and `_sum` (seconds).
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::from("{");
    for (name, _, counter) in counters(m) {
        out.push_str(&format!("\"{name}\":{},", counter.get()));
    }
    for (name, _, gauge) in gauges(m) {
        out.push_str(&format!("\"{name}\":{},", gauge.get()));
    }
    out.push_str(&format!("\"dbgw_snapshot_age_ms\":{},", snapshot_age_ms(m)));
    for (name, h) in [
        ("dbgw_request_latency_seconds", &m.request_latency_ns),
        ("dbgw_sql_latency_seconds", &m.sql_latency_ns),
        ("dbgw_latch_wait_seconds", &m.latch_wait_ns),
        ("dbgw_group_commit_wait_seconds", &m.group_commit_wait_ns),
        ("dbgw_ttfb_seconds", &m.ttfb_ns),
    ] {
        out.push_str(&format!(
            "\"{name}_count\":{},\"{name}_sum\":{},",
            h.count(),
            h.sum_ns() as f64 / 1e9
        ));
    }
    out.push_str("\"dbgw_sqlcode_errors_total\":{");
    for (i, (code, count)) in m.sqlcode_errors.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{code}\":{count}"));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::trace;
    use std::sync::Arc;

    fn sample_trace() -> Trace {
        let clock = Arc::new(TestClock::new());
        trace::start_trace(clock.clone(), 42);
        {
            let _request = trace::span("request");
            clock.advance_micros(2);
            let _sql = trace::span("exec_sql");
            trace::note("sql", "SELECT \"x\"\nFROM t");
            clock.advance_micros(8);
        }
        trace::finish_trace().unwrap()
    }

    #[test]
    fn json_lines_shape_and_escaping() {
        let t = sample_trace();
        let jsonl = t.to_json_lines();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace\":42"));
        assert!(lines[0].contains("\"name\":\"request\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[1].contains("\"dur_ns\":8000"));
        // The note survives with its quote and newline escaped.
        assert!(lines[1].contains("SELECT \\\"x\\\"\\nFROM t"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn tree_renders_nesting_and_durations() {
        let t = sample_trace();
        let tree = t.render_tree();
        assert!(tree.starts_with("trace request=42 spans=2 total=10.0us"));
        assert!(tree.contains("\n  request"));
        assert!(tree.contains("\n    exec_sql"));
        assert!(tree.contains("8.0us"));
    }

    #[test]
    fn jsonl_sink_appends() {
        let t = sample_trace();
        let path = std::env::temp_dir().join(format!("dbgw-obs-sink-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        t.append_jsonl(&path).unwrap();
        t.append_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prometheus_render_is_well_formed() {
        let m = Metrics::new();
        m.requests.add(3);
        m.sqlcode_errors.record(-204);
        m.request_latency_ns.observe_ns(1_500);
        m.request_latency_ns.observe_ns(3_000_000);
        let text = render_prometheus(&m);
        assert!(text.contains("# TYPE dbgw_requests_total counter\ndbgw_requests_total 3\n"));
        assert!(text.contains("dbgw_sqlcode_errors_total{code=\"-204\"} 1"));
        // Cumulative buckets: the 2µs bucket holds the 1.5µs sample…
        assert!(text.contains("dbgw_request_latency_seconds_bucket{le=\"0.000002\"} 1"));
        // …and +Inf holds everything.
        assert!(text.contains("dbgw_request_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dbgw_request_latency_seconds_count 2"));
    }

    #[test]
    fn every_family_has_help_and_type() {
        let text = render_prometheus(&Metrics::new());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(&['{', ' '][..]).next().unwrap();
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
        }
    }

    #[test]
    fn latch_wait_exports_as_histogram() {
        let m = Metrics::new();
        m.latch_wait_ns.observe_ns(1_500); // ≤ 2 µs bucket
        m.latch_wait_ns.observe_ns(600_000_000); // overflow
        let text = render_prometheus(&m);
        assert!(text.contains("# TYPE dbgw_latch_wait_seconds histogram"));
        assert!(text.contains("dbgw_latch_wait_seconds_bucket{le=\"0.000002\"} 1"));
        assert!(text.contains("dbgw_latch_wait_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dbgw_latch_wait_seconds_count 2"));
        // The old bare-sum counter is gone.
        assert!(!text.contains("dbgw_latch_wait_ns_total"));
    }

    #[test]
    fn digest_families_render_top_n_with_labels() {
        let store = crate::digest::DigestStore::with_capacity(16, true);
        store.record(
            0xabc,
            "select \"q\" from t where x = ?",
            &crate::digest::DigestObservation {
                dur_ns: 2_000_000_000,
                rows_returned: 4,
                ..Default::default()
            },
        );
        store.record(
            0xdef,
            "cheap",
            &crate::digest::DigestObservation {
                dur_ns: 10,
                ..Default::default()
            },
        );
        let text = digest_prometheus(&store, 1);
        assert!(text.contains("# TYPE dbgw_digest_calls_total counter"));
        assert!(text.contains("# HELP dbgw_digest_calls_total"));
        // Only the top-1 (by time) digest appears, with escaped text label.
        assert!(text.contains("digest=\"0000000000000abc\""), "{text}");
        assert!(!text.contains("cheap"));
        assert!(text.contains("text=\"select \\\"q\\\" from t where x = ?\""));
        assert!(text.contains("dbgw_digest_time_seconds_total{digest=\"0000000000000abc\""));
        assert!(text.contains("} 2\n"), "seconds value: {text}");
    }

    #[test]
    fn slo_gauges_render_when_configured() {
        let report = crate::slo::evaluate(
            &[crate::series::SamplePoint {
                requests: 100,
                errors: 1,
                p99_ms: 5.0,
                ..Default::default()
            }],
            &crate::slo::SloConfig {
                p99_target_ms: Some(10.0),
                error_budget: Some(0.01),
            },
        );
        let text = slo_prometheus(&report);
        assert!(text.contains("dbgw_slo_window_error_rate 0.01"));
        assert!(text.contains("dbgw_slo_latency_attainment_pct 100"));
        assert!(text.contains("dbgw_slo_burn_rate 1\n"));
        assert!(text.contains("# TYPE dbgw_slo_burn_rate gauge"));
    }

    #[test]
    fn metrics_json_uses_prometheus_names() {
        let m = Metrics::new();
        m.sql_statements.add(5);
        m.sqlcode_errors.record(100);
        m.sql_latency_ns.observe_ns(2_000_000);
        let json = metrics_json(&m);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dbgw_sql_statements_total\":5"));
        assert!(json.contains("\"dbgw_sql_latency_seconds_count\":1"));
        assert!(json.contains("\"dbgw_sql_latency_seconds_sum\":0.002"));
        assert!(json.contains("\"dbgw_sqlcode_errors_total\":{\"100\":1}"));
    }
}
