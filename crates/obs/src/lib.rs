//! **dbgw-obs** — observability for the gateway reproduction, with zero
//! external dependencies (the same policy as `dbgw-testkit`).
//!
//! The 1996 DB2 WWW Connection was a black box: a CGI process that either
//! returned a report or an SQLCODE message, with nothing in between. This
//! crate makes the reproduction's request path visible without giving up the
//! hermetic build:
//!
//! * [`clock`] — injectable time sources: a monotonic [`Clock`] (std
//!   [`std::time::Instant`] in binaries, a hand-advanced [`TestClock`] in
//!   tests) and a [`WallClock`] for access-log timestamps.
//! * [`trace`] — hierarchical **spans** recorded into a per-request
//!   [`Trace`]. The active trace lives in a thread local, so instrumentation
//!   points in `minisql`, `dbgw-core`, and `dbgw-cgi` need no threaded-through
//!   context argument; when no trace is active a span is a single
//!   thread-local flag read (the "cheap no-op default").
//! * [`ctx`] — the per-request execution context ([`RequestCtx`]): request
//!   id, deadline on the injectable clock, cancellation flag, and row/byte
//!   budgets, polled cooperatively by every layer below the HTTP edge.
//! * [`mod@metrics`] — process-wide counters and fixed-bucket latency
//!   histograms over `AtomicU64`, plus a per-SQLCODE error table. All
//!   increments are single relaxed atomic ops and are always on.
//! * [`export`] — a JSON-lines trace sink, a Prometheus-style text dump of
//!   the global metrics, and a human-readable [`TraceTree`] renderer.
//! * [`mod@digest`] — a `pg_stat_statements`-style table aggregating per
//!   query *shape* (literal-masked SQL): calls, errors, rows, latency
//!   histogram, cache-hit split, latch waits — sharded, bounded, LRU.
//! * [`series`] — a fixed-size ring of periodic metric snapshots (request
//!   rate, p50/p99, error rate, cache hit ratio), driven opportunistically
//!   from the request path on the injectable clock.
//! * [`slo`] — attainment and error-budget burn rate evaluated over the
//!   ring against `DBGW_SLO_P99_MS` / `DBGW_SLO_ERROR_BUDGET`.
//!
//! ```
//! use dbgw_obs::{clock::TestClock, trace};
//! use std::sync::Arc;
//!
//! let clock = Arc::new(TestClock::new());
//! trace::start_trace(clock.clone(), 7);
//! {
//!     let _req = trace::span("request");
//!     clock.advance_micros(5);
//!     let _sql = trace::span("exec_sql");
//!     clock.advance_micros(20);
//! }
//! let t = trace::finish_trace().unwrap();
//! assert_eq!(t.spans[0].name, "request");
//! assert_eq!(t.spans[1].name, "exec_sql");
//! assert_eq!(t.spans[1].dur_ns, 20_000);
//! assert!(t.render_tree().contains("exec_sql"));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod ctx;
pub mod digest;
pub mod export;
pub mod metrics;
pub mod series;
pub mod slo;
pub mod trace;

pub use clock::{
    process_mono_ms, Clock, StdClock, SystemWallClock, TestClock, TestWallClock, WallClock,
};
pub use ctx::{CancelReason, RequestCtx, CANCELLED_SQLCODE};
pub use digest::{digests, DigestObservation, DigestSnapshot, DigestStore};
pub use export::{digest_prometheus, metrics_json, render_prometheus, slo_prometheus, TraceTree};
pub use metrics::{metrics, CodeCounters, Counter, Gauge, Histogram, Metrics};
pub use series::{sparkline, SamplePoint, Sampler};
pub use slo::{SloConfig, SloReport};
pub use trace::{current_request_id, next_request_id, set_request_id, Span, Trace};
