//! Process-wide metrics: counters, fixed-bucket latency histograms, and a
//! per-SQLCODE error table — all lock-free over `AtomicU64`.
//!
//! Unlike traces (opt-in, per request), metrics are **always on**: every
//! increment is a single relaxed atomic add, cheap enough to leave in the
//! hot paths unconditionally. The global registry is [`metrics`]; exporters
//! render it (see [`crate::export::render_prometheus`]) and the CGI server
//! serves that rendering at `/stats`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const, so registries can be statics).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (in-flight requests, queue depth): goes up *and*
/// down, unlike [`Counter`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (const, so registries can be statics).
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds in nanoseconds: 1 µs doubling up to
/// ~0.5 s, plus an implicit overflow bucket. Fixed at compile time so
/// `observe` is a shift-free scan over a small array and snapshots from
/// different processes always align.
pub const BUCKET_BOUNDS_NS: [u64; 20] = {
    let mut bounds = [0u64; 20];
    let mut i = 0;
    while i < 20 {
        bounds[i] = 1_000u64 << i;
        i += 1;
    }
    bounds
};

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A fixed-bucket latency histogram (bounds: [`BUCKET_BOUNDS_NS`] + overflow).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [ZERO; BUCKET_BOUNDS_NS.len() + 1],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), the last entry being overflow.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

const CODE_SLOTS: usize = 64;
const EMPTY_SLOT: i64 = i64::MIN;

/// Per-SQLCODE error counters: a small lock-free open-addressed table.
/// SQLCODE cardinality is tiny (a few dozen codes exist at all), so 64
/// linear-probed slots never fill in practice; if they somehow do, the
/// overflow counter keeps the total honest.
#[derive(Debug)]
pub struct CodeCounters {
    codes: [AtomicI64; CODE_SLOTS],
    counts: [AtomicU64; CODE_SLOTS],
    overflow: Counter,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: AtomicI64 = AtomicI64::new(EMPTY_SLOT);

impl Default for CodeCounters {
    fn default() -> Self {
        CodeCounters::new()
    }
}

impl CodeCounters {
    /// An empty table.
    pub const fn new() -> CodeCounters {
        CodeCounters {
            codes: [EMPTY; CODE_SLOTS],
            counts: [ZERO; CODE_SLOTS],
            overflow: Counter::new(),
        }
    }

    /// Count one occurrence of `code`.
    pub fn record(&self, code: i32) {
        let code = code as i64;
        let start = (code.unsigned_abs() as usize) % CODE_SLOTS;
        for probe in 0..CODE_SLOTS {
            let slot = (start + probe) % CODE_SLOTS;
            let current = self.codes[slot].load(Ordering::Acquire);
            if current == code {
                self.counts[slot].fetch_add(1, Ordering::Relaxed);
                return;
            }
            if current == EMPTY_SLOT {
                match self.codes[slot].compare_exchange(
                    EMPTY_SLOT,
                    code,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.counts[slot].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(actual) if actual == code => {
                        self.counts[slot].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => continue, // raced with a different code; probe on
                }
            }
        }
        self.overflow.inc();
    }

    /// Count recorded for `code`.
    pub fn get(&self, code: i32) -> u64 {
        let code = code as i64;
        let start = (code.unsigned_abs() as usize) % CODE_SLOTS;
        for probe in 0..CODE_SLOTS {
            let slot = (start + probe) % CODE_SLOTS;
            match self.codes[slot].load(Ordering::Acquire) {
                c if c == code => return self.counts[slot].load(Ordering::Relaxed),
                EMPTY_SLOT => return 0,
                _ => continue,
            }
        }
        0
    }

    /// All `(code, count)` pairs, sorted by code.
    pub fn snapshot(&self) -> Vec<(i32, u64)> {
        let mut out: Vec<(i32, u64)> = (0..CODE_SLOTS)
            .filter_map(|slot| {
                let code = self.codes[slot].load(Ordering::Acquire);
                if code == EMPTY_SLOT {
                    return None;
                }
                let count = self.counts[slot].load(Ordering::Relaxed);
                (count > 0).then_some((code as i32, count))
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// The gateway's metric registry. One static instance per process
/// ([`metrics`]); fields are public so instrumentation points write
/// `metrics().sql_statements.inc()` with no registry lookups.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests handled by the gateway.
    pub requests: Counter,
    /// Requests that produced an error page (HTTP status >= 400).
    pub request_errors: Counter,
    /// Macro files parsed.
    pub macro_parses: Counter,
    /// Variable-substitution passes run.
    pub substitutions: Counter,
    /// SQL statements the engine executed.
    pub sql_statements: Counter,
    /// Report rows rendered into HTML.
    pub rows_rendered: Counter,
    /// SQL statements that exceeded the slow-query threshold.
    pub slow_queries: Counter,
    /// Traces recorded (DBGW_TRACE mode).
    pub traces_recorded: Counter,
    /// Connections shed with `503 Retry-After` because the accept queue was
    /// full.
    pub requests_shed: Counter,
    /// Requests that hit their `RequestCtx` deadline and returned a timeout
    /// page.
    pub request_timeouts: Counter,
    /// SQL result-cache lookups that returned a fresh row set.
    pub cache_hits: Counter,
    /// SQL result-cache lookups that found nothing usable (absent, expired,
    /// or invalidated).
    pub cache_misses: Counter,
    /// Result-cache entries pushed out by the byte budget or TTL.
    pub cache_evictions: Counter,
    /// Result-cache entries rejected at lookup because a referenced table
    /// changed since the entry was stored.
    pub cache_invalidations: Counter,
    /// Prepared-statement cache hits (parse skipped).
    pub stmt_cache_hits: Counter,
    /// Prepared-statement cache misses (statement parsed and stored).
    pub stmt_cache_misses: Counter,
    /// Conditional GETs answered `304 Not Modified` from the `ETag`.
    pub http_not_modified: Counter,
    /// Join steps executed with the hash strategy.
    pub join_hash: Counter,
    /// Join steps executed with the nested-loop strategy.
    pub join_nested: Counter,
    /// Join queries with at least one WHERE conjunct pushed below the join.
    pub pushdown_applied: Counter,
    /// Rows fetched from table heaps by scans (probe candidates + full-scan
    /// rows) — the raw cost of access-path choices.
    pub rows_scanned: Counter,
    /// Table-latch acquisitions that had to wait for another writer.
    pub latch_waits: Counter,
    /// Query digests evicted from the bounded digest store (cold shapes
    /// pushed out by the per-shard capacity).
    pub digest_evictions: Counter,
    /// Full table-statistics rebuilds (initial builds plus refreshes
    /// triggered by the write-staleness threshold or recovery).
    pub stats_refreshes: Counter,
    /// Multi-way joins whose evaluation order the cost-based planner
    /// changed away from the syntactic order.
    pub join_reorders: Counter,
    /// Database snapshots published (one per applied write statement or
    /// rollback).
    pub snapshots_published: Counter,
    /// Logical records appended to the write-ahead log (one per committed
    /// statement or rollback when durability is on).
    pub wal_records: Counter,
    /// Group-commit flushes fsynced to the log. The ratio
    /// `wal_records / wal_fsyncs` is the achieved batching factor.
    pub wal_fsyncs: Counter,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: Counter,
    /// Checkpoints completed (log rewritten as a base snapshot).
    pub checkpoints: Counter,
    /// Requests served over an already-established keep-alive connection
    /// (every request on a connection after its first).
    pub keepalive_reuses: Counter,
    /// Requests that were already buffered behind an earlier request on the
    /// same connection when the worker picked it up (HTTP/1.1 pipelining).
    pub pipelined_requests: Counter,
    /// Responses sent with `Transfer-Encoding: chunked` because the body
    /// crossed the streaming watermark before rendering finished.
    pub responses_streamed: Counter,
    /// Requests aborted because the client vanished mid-response (write
    /// error on the socket cancelled the executor).
    pub client_disconnects: Counter,
    /// Requests currently being processed by pool workers.
    pub requests_in_flight: Gauge,
    /// Accepted connections waiting in the bounded queue for a worker.
    pub queue_depth: Gauge,
    /// Bytes currently resident in the statement + result caches.
    pub cache_bytes: Gauge,
    /// Epoch (publication count) of the most recently published database
    /// snapshot — strictly monotonic while the process lives.
    pub snapshot_epoch: Gauge,
    /// [`crate::process_mono_ms`] reading at the last snapshot publication;
    /// exporters subtract it from "now" to report the snapshot's age.
    pub snapshot_publish_ms: Gauge,
    /// Current size of the write-ahead log file in bytes (checkpoints
    /// shrink it back to the base-snapshot size).
    pub wal_size_bytes: Gauge,
    /// Size in bytes of the log the most recent checkpoint wrote.
    pub checkpoint_last_bytes: Gauge,
    /// TCP connections currently open on the evented HTTP edge (parked in
    /// the epoll set or owned by a worker).
    pub open_connections: Gauge,
    /// Open connections currently idle between requests (keep-alive sockets
    /// parked in the epoll set with no bytes buffered).
    pub idle_connections: Gauge,
    /// End-to-end gateway request latency.
    pub request_latency_ns: Histogram,
    /// Per-statement SQL latency.
    pub sql_latency_ns: Histogram,
    /// Per-write-statement latch wait: one observation per latch set a
    /// writer acquired, valued at the nanoseconds it spent blocked. A full
    /// histogram (PR 6 exported only the sum, which hid the latch-wait p99
    /// behind the mean).
    pub latch_wait_ns: Histogram,
    /// Time a committing writer spent blocked on the group-commit daemon,
    /// from enqueueing its record to the durable acknowledgment — the
    /// latency cost of durability, batch-amortized fsync included.
    pub group_commit_wait_ns: Histogram,
    /// Time from accepting a request to the first response byte hitting the
    /// socket — the streaming render path exists to shrink this.
    pub ttfb_ns: Histogram,
    /// Error occurrences by SQLCODE.
    pub sqlcode_errors: CodeCounters,
}

impl Metrics {
    /// A zeroed registry (const — usable as a `static`).
    pub const fn new() -> Metrics {
        Metrics {
            requests: Counter::new(),
            request_errors: Counter::new(),
            macro_parses: Counter::new(),
            substitutions: Counter::new(),
            sql_statements: Counter::new(),
            rows_rendered: Counter::new(),
            slow_queries: Counter::new(),
            traces_recorded: Counter::new(),
            requests_shed: Counter::new(),
            request_timeouts: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            cache_invalidations: Counter::new(),
            stmt_cache_hits: Counter::new(),
            stmt_cache_misses: Counter::new(),
            http_not_modified: Counter::new(),
            join_hash: Counter::new(),
            join_nested: Counter::new(),
            pushdown_applied: Counter::new(),
            rows_scanned: Counter::new(),
            latch_waits: Counter::new(),
            digest_evictions: Counter::new(),
            stats_refreshes: Counter::new(),
            join_reorders: Counter::new(),
            snapshots_published: Counter::new(),
            wal_records: Counter::new(),
            wal_fsyncs: Counter::new(),
            wal_bytes: Counter::new(),
            checkpoints: Counter::new(),
            keepalive_reuses: Counter::new(),
            pipelined_requests: Counter::new(),
            responses_streamed: Counter::new(),
            client_disconnects: Counter::new(),
            requests_in_flight: Gauge::new(),
            queue_depth: Gauge::new(),
            cache_bytes: Gauge::new(),
            snapshot_epoch: Gauge::new(),
            snapshot_publish_ms: Gauge::new(),
            wal_size_bytes: Gauge::new(),
            checkpoint_last_bytes: Gauge::new(),
            open_connections: Gauge::new(),
            idle_connections: Gauge::new(),
            request_latency_ns: Histogram::new(),
            sql_latency_ns: Histogram::new(),
            latch_wait_ns: Histogram::new(),
            group_commit_wait_ns: Histogram::new(),
            ttfb_ns: Histogram::new(),
            sqlcode_errors: CodeCounters::new(),
        }
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide metric registry.
pub fn metrics() -> &'static Metrics {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new();
        // Exactly on a bound lands in that bucket (bounds are inclusive).
        h.observe_ns(1_000); // bucket 0: <= 1 µs
        h.observe_ns(1_001); // bucket 1: <= 2 µs
        h.observe_ns(2_000); // bucket 1
        h.observe_ns(0); // bucket 0
        h.observe_ns(BUCKET_BOUNDS_NS[19]); // last bounded bucket
        h.observe_ns(BUCKET_BOUNDS_NS[19] + 1); // overflow
        h.observe_ns(u64::MAX); // overflow
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[19], 1);
        assert_eq!(counts[20], 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_concurrent_observations() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.observe_ns(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn bucket_bounds_double_from_one_micro() {
        assert_eq!(BUCKET_BOUNDS_NS[0], 1_000);
        assert_eq!(BUCKET_BOUNDS_NS[1], 2_000);
        assert_eq!(BUCKET_BOUNDS_NS[19], 524_288_000);
    }

    #[test]
    fn code_counters_record_and_snapshot() {
        let t = CodeCounters::new();
        t.record(-204);
        t.record(-204);
        t.record(100);
        t.record(-803);
        assert_eq!(t.get(-204), 2);
        assert_eq!(t.get(100), 1);
        assert_eq!(t.get(0), 0);
        assert_eq!(t.snapshot(), vec![(-803, 1), (-204, 2), (100, 1)]);
    }

    #[test]
    fn code_counters_concurrent_mixed_codes() {
        let t = CodeCounters::new();
        std::thread::scope(|s| {
            for i in 0..8i32 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        t.record(-100 - (i % 4));
                    }
                });
            }
        });
        let total: u64 = t.snapshot().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 8_000);
        assert_eq!(t.get(-100), 2_000);
        assert_eq!(t.get(-103), 2_000);
    }

    #[test]
    fn global_registry_is_live() {
        let before = metrics().requests.get();
        metrics().requests.inc();
        assert!(metrics().requests.get() > before);
    }
}
