//! Time-series history: a fixed-size ring of metric snapshots.
//!
//! The global [`crate::metrics::Metrics`] registry answers "how many, since
//! process start" — useless for "is p99 degrading *right now*". The
//! [`Sampler`] closes that gap without a background thread: callers on the
//! request path (the HTTP edge, after each response) hand it the current
//! time, and once per configured interval it snapshots the cumulative
//! counters, differences them against the previous snapshot, and pushes one
//! [`SamplePoint`] — per-interval request rate, error rate, p50/p99 from the
//! *delta* of the latency histogram buckets, cache hit ratio, snapshot age,
//! and in-flight level — into a bounded ring.
//!
//! Time is always supplied by the caller (milliseconds on whatever clock the
//! gateway runs), so a `TestClock` drives a fully deterministic series:
//! advance 1 s, tick, and the sample covers exactly the traffic recorded in
//! between. The ring is rendered as sparklines on `/stats` and is the input
//! to the [`crate::slo`] evaluator.

use crate::metrics::{Metrics, BUCKET_BOUNDS_NS};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One interval's worth of derived metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SamplePoint {
    /// Caller-clock timestamp (ms) at which the sample was taken.
    pub at_ms: u64,
    /// Interval actually covered, ms (≥ the configured interval).
    pub span_ms: u64,
    /// Requests completed during the interval.
    pub requests: u64,
    /// Requests that produced an error page (HTTP ≥ 400) during the interval.
    pub errors: u64,
    /// Requests per second over the interval.
    pub req_rate: f64,
    /// Errors as a fraction of requests (0 when idle).
    pub error_rate: f64,
    /// Median request latency over the interval, ms (bucket upper bound).
    pub p50_ms: f64,
    /// 99th-percentile request latency over the interval, ms.
    pub p99_ms: f64,
    /// Result-cache hits / (hits + misses) during the interval (0 when the
    /// cache saw no traffic).
    pub cache_hit_ratio: f64,
    /// Age of the newest published database snapshot at sample time, ms.
    pub snapshot_age_ms: u64,
    /// Requests in flight at sample time.
    pub in_flight: i64,
}

/// Cumulative counter values captured at the previous sample.
#[derive(Debug, Default, Clone)]
struct CumSnapshot {
    requests: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    req_buckets: Vec<u64>,
}

impl CumSnapshot {
    fn capture(m: &Metrics) -> CumSnapshot {
        CumSnapshot {
            requests: m.requests.get(),
            errors: m.request_errors.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            req_buckets: m.request_latency_ns.bucket_counts(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    last_ms: Option<u64>,
    prev: CumSnapshot,
    points: VecDeque<SamplePoint>,
}

/// The opportunistically-driven sampler. See the [module docs](self).
#[derive(Debug)]
pub struct Sampler {
    interval_ms: u64,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Sampler {
    /// A sampler emitting one point per `interval_ms`, keeping the last
    /// `capacity` points.
    pub fn new(interval_ms: u64, capacity: usize) -> Sampler {
        Sampler {
            interval_ms: interval_ms.max(1),
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Configuration from the environment: `DBGW_SAMPLE_MS` (default
    /// 1000 ms) and `DBGW_SAMPLE_CAP` (default 120 points — two minutes of
    /// history at the default interval).
    pub fn from_env() -> Sampler {
        let interval = std::env::var("DBGW_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(1_000);
        let cap = std::env::var("DBGW_SAMPLE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(120);
        Sampler::new(interval, cap)
    }

    /// The configured sampling interval, ms.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Offer the sampler the current time; if a full interval elapsed since
    /// the previous sample it captures one [`SamplePoint`] from `m` and
    /// returns `true`. The first call only anchors the baseline.
    pub fn tick(&self, now_ms: u64, m: &Metrics) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(last) = inner.last_ms else {
            inner.last_ms = Some(now_ms);
            inner.prev = CumSnapshot::capture(m);
            return false;
        };
        let span_ms = now_ms.saturating_sub(last);
        if span_ms < self.interval_ms {
            return false;
        }
        let cur = CumSnapshot::capture(m);
        let requests = cur.requests.saturating_sub(inner.prev.requests);
        let errors = cur.errors.saturating_sub(inner.prev.errors);
        let hits = cur.cache_hits.saturating_sub(inner.prev.cache_hits);
        let misses = cur.cache_misses.saturating_sub(inner.prev.cache_misses);
        let deltas: Vec<u64> = cur
            .req_buckets
            .iter()
            .zip(inner.prev.req_buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(c, p)| c.saturating_sub(*p))
            .collect();
        let publish_ms = m.snapshot_publish_ms.get();
        let point = SamplePoint {
            at_ms: now_ms,
            span_ms,
            requests,
            errors,
            req_rate: requests as f64 * 1_000.0 / span_ms as f64,
            error_rate: if requests == 0 {
                0.0
            } else {
                errors as f64 / requests as f64
            },
            p50_ms: crate::digest::quantile_from_buckets(&deltas, 0.50) as f64 / 1e6,
            p99_ms: crate::digest::quantile_from_buckets(&deltas, 0.99) as f64 / 1e6,
            cache_hit_ratio: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            snapshot_age_ms: if publish_ms <= 0 {
                0
            } else {
                crate::clock::process_mono_ms().saturating_sub(publish_ms as u64)
            },
            in_flight: m.requests_in_flight.get(),
        };
        inner.last_ms = Some(now_ms);
        inner.prev = cur;
        if inner.points.len() == self.capacity {
            inner.points.pop_front();
        }
        inner.points.push_back(point);
        true
    }

    /// The ring's contents, oldest first.
    pub fn points(&self) -> Vec<SamplePoint> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .points
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all history and the baseline (tests).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Inner::default();
    }
}

/// Highest-resolution latency the request histogram can express, ms — the
/// value [`SamplePoint::p99_ms`] saturates to when observations overflow the
/// last bucket.
pub fn max_representable_ms() -> f64 {
    (BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1] * 2) as f64 / 1e6
}

/// Render `values` as a unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to the
/// maximum value. Empty input renders empty; an all-zero series renders as a
/// flat baseline.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_anchors_without_emitting() {
        let m = Metrics::new();
        let s = Sampler::new(1_000, 8);
        assert!(!s.tick(0, &m));
        assert!(s.points().is_empty());
    }

    #[test]
    fn deltas_cover_exactly_one_interval() {
        let m = Metrics::new();
        let s = Sampler::new(1_000, 8);
        s.tick(0, &m);
        m.requests.add(10);
        m.request_errors.add(2);
        m.cache_hits.add(3);
        m.cache_misses.add(1);
        for _ in 0..9 {
            m.request_latency_ns.observe_ns(900_000); // ≤ 1,024,000 ns
        }
        m.request_latency_ns.observe_ns(400_000_000); // ≤ 524,288,000 ns
        assert!(!s.tick(999, &m), "interval not yet elapsed");
        assert!(s.tick(1_000, &m));
        let pts = s.points();
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.requests, 10);
        assert_eq!(p.errors, 2);
        assert!((p.req_rate - 10.0).abs() < 1e-9);
        assert!((p.error_rate - 0.2).abs() < 1e-9);
        assert!((p.cache_hit_ratio - 0.75).abs() < 1e-9);
        assert!((p.p50_ms - 1.024).abs() < 1e-9, "p50 {}", p.p50_ms);
        assert!((p.p99_ms - 524.288).abs() < 1e-9, "p99 {}", p.p99_ms);
        // The next interval starts from the new baseline: no traffic → zeros.
        assert!(s.tick(2_000, &m));
        let p2 = &s.points()[1];
        assert_eq!(p2.requests, 0);
        assert_eq!(p2.p99_ms, 0.0);
    }

    #[test]
    fn ring_is_bounded_oldest_dropped() {
        let m = Metrics::new();
        let s = Sampler::new(100, 3);
        s.tick(0, &m);
        for i in 1..=5u64 {
            assert!(s.tick(i * 100, &m));
        }
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].at_ms, 300);
        assert_eq!(pts[2].at_ms, 500);
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[1.0, 4.0, 8.0]), "▂▅█");
    }
}
