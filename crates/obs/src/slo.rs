//! SLO evaluation over the sampled time series.
//!
//! Two targets, both optional, both from the environment:
//!
//! * **`DBGW_SLO_P99_MS`** — the latency objective: the per-interval p99
//!   (from [`crate::series::SamplePoint::p99_ms`]) should stay at or under
//!   this many milliseconds. Attainment is the share of *traffic-bearing*
//!   intervals that met the target (idle intervals say nothing about
//!   latency and are excluded).
//! * **`DBGW_SLO_ERROR_BUDGET`** — the availability objective, as the
//!   allowed error fraction (e.g. `0.01` = 99% availability). The **burn
//!   rate** is the observed window error rate divided by the budget: 1.0
//!   means errors arrive exactly as fast as the budget allows, >1 means the
//!   budget is being consumed faster than it refills — the standard
//!   multi-window burn-rate alerting input.
//!
//! Evaluation is pure arithmetic over the ring; it holds no state and can be
//! recomputed on every `/stats` render.

use crate::series::SamplePoint;

/// The configured objectives (absent values leave that half unevaluated).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloConfig {
    /// Latency target: per-interval p99 must be ≤ this many milliseconds.
    pub p99_target_ms: Option<f64>,
    /// Availability target: allowed error fraction in `(0, 1]`.
    pub error_budget: Option<f64>,
}

impl SloConfig {
    /// Read `DBGW_SLO_P99_MS` / `DBGW_SLO_ERROR_BUDGET`. Unset, empty, or
    /// non-positive values disable the corresponding objective.
    pub fn from_env() -> SloConfig {
        let num = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|&v| v > 0.0 && v.is_finite())
        };
        SloConfig {
            p99_target_ms: num("DBGW_SLO_P99_MS"),
            error_budget: num("DBGW_SLO_ERROR_BUDGET"),
        }
    }

    /// Is at least one objective set?
    pub fn is_configured(&self) -> bool {
        self.p99_target_ms.is_some() || self.error_budget.is_some()
    }
}

/// The result of evaluating the ring against an [`SloConfig`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloReport {
    /// Samples in the evaluated window.
    pub samples: usize,
    /// Samples that carried at least one request.
    pub busy_samples: usize,
    /// Total requests across the window.
    pub requests: u64,
    /// Total errors across the window.
    pub errors: u64,
    /// Window error fraction (0 when idle).
    pub error_rate: f64,
    /// Echo of the latency target, if set.
    pub p99_target_ms: Option<f64>,
    /// Share (0–100) of traffic-bearing samples whose p99 met the target.
    /// `None` when no target is set or no sample carried traffic.
    pub latency_attainment_pct: Option<f64>,
    /// Echo of the error budget, if set.
    pub error_budget: Option<f64>,
    /// `error_rate / error_budget`; `None` when no budget is set.
    pub burn_rate: Option<f64>,
    /// Budget left in the window, percent: `100 × (1 − burn_rate)`. Negative
    /// when the window already overspent.
    pub budget_remaining_pct: Option<f64>,
}

/// Evaluate `points` (oldest first, as [`crate::series::Sampler::points`]
/// returns them) against `cfg`.
pub fn evaluate(points: &[SamplePoint], cfg: &SloConfig) -> SloReport {
    let requests: u64 = points.iter().map(|p| p.requests).sum();
    let errors: u64 = points.iter().map(|p| p.errors).sum();
    let error_rate = if requests == 0 {
        0.0
    } else {
        errors as f64 / requests as f64
    };
    let busy: Vec<&SamplePoint> = points.iter().filter(|p| p.requests > 0).collect();
    let latency_attainment_pct = cfg.p99_target_ms.and_then(|target| {
        if busy.is_empty() {
            return None;
        }
        let met = busy.iter().filter(|p| p.p99_ms <= target).count();
        Some(met as f64 * 100.0 / busy.len() as f64)
    });
    let burn_rate = cfg.error_budget.map(|budget| error_rate / budget);
    SloReport {
        samples: points.len(),
        busy_samples: busy.len(),
        requests,
        errors,
        error_rate,
        p99_target_ms: cfg.p99_target_ms,
        latency_attainment_pct,
        error_budget: cfg.error_budget,
        burn_rate,
        budget_remaining_pct: burn_rate.map(|b| 100.0 * (1.0 - b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(requests: u64, errors: u64, p99_ms: f64) -> SamplePoint {
        SamplePoint {
            requests,
            errors,
            p99_ms,
            ..SamplePoint::default()
        }
    }

    #[test]
    fn attainment_counts_only_busy_samples() {
        let cfg = SloConfig {
            p99_target_ms: Some(10.0),
            error_budget: None,
        };
        let points = [
            point(100, 0, 5.0),  // met
            point(100, 0, 50.0), // missed
            point(0, 0, 0.0),    // idle — excluded
            point(100, 0, 10.0), // met (boundary inclusive)
        ];
        let r = evaluate(&points, &cfg);
        assert_eq!(r.busy_samples, 3);
        let att = r.latency_attainment_pct.unwrap();
        assert!((att - 66.666).abs() < 0.01, "{att}");
        assert!(r.burn_rate.is_none());
    }

    #[test]
    fn burn_rate_is_error_rate_over_budget() {
        let cfg = SloConfig {
            p99_target_ms: None,
            error_budget: Some(0.01),
        };
        // 2% errors against a 1% budget: burning 2× too fast.
        let points = [point(50, 1, 0.0), point(50, 1, 0.0)];
        let r = evaluate(&points, &cfg);
        assert!((r.error_rate - 0.02).abs() < 1e-9);
        assert!((r.burn_rate.unwrap() - 2.0).abs() < 1e-9);
        assert!((r.budget_remaining_pct.unwrap() + 100.0).abs() < 1e-9);
    }

    #[test]
    fn idle_window_reports_zero_burn_and_no_attainment() {
        let cfg = SloConfig {
            p99_target_ms: Some(10.0),
            error_budget: Some(0.01),
        };
        let r = evaluate(&[], &cfg);
        assert_eq!(r.samples, 0);
        assert_eq!(r.error_rate, 0.0);
        assert_eq!(r.burn_rate, Some(0.0));
        assert_eq!(r.latency_attainment_pct, None);
        assert_eq!(r.budget_remaining_pct, Some(100.0));
    }

    #[test]
    fn unconfigured_slo_reports_counts_only() {
        let r = evaluate(&[point(10, 5, 1.0)], &SloConfig::default());
        assert_eq!(r.requests, 10);
        assert_eq!(r.errors, 5);
        assert!((r.error_rate - 0.5).abs() < 1e-9);
        assert!(r.burn_rate.is_none() && r.latency_attainment_pct.is_none());
        assert!(!SloConfig::default().is_configured());
    }
}
