//! Per-request execution traces: hierarchical spans over an injectable clock.
//!
//! A request's trace is built up by instrumentation points scattered across
//! the gateway → engine → minisql stack. Rather than threading a context
//! argument through every layer's signatures, the *active* trace lives in a
//! thread local (each request is handled by one thread, as in the CGI model):
//!
//! * the request owner calls [`start_trace`] / [`finish_trace`];
//! * every layer calls [`span`] and holds the returned guard for the
//!   duration of the operation; nesting falls out of guard scopes;
//! * [`note`] attaches key/value metadata (the SQL text, row counts) to the
//!   innermost open span.
//!
//! When no trace is active — the default — [`span`] reads one thread-local
//! flag and returns a no-op guard; that is the entire overhead, which is what
//! keeps the always-instrumented hot paths benchmark-neutral.

use crate::clock::Clock;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on spans per trace; a report rendering thousands of rows must
/// not balloon the trace (or the HTML comment it is exported into).
pub const MAX_SPANS: usize = 4_096;

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Operation name, e.g. `exec_sql`.
    pub name: &'static str,
    /// Start offset, nanoseconds on the trace's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth; the root `request` span is 0.
    pub depth: usize,
    /// Index of the parent span within the trace, if any.
    pub parent: Option<usize>,
    /// Attached metadata, in attachment order.
    pub notes: Vec<(&'static str, String)>,
}

/// A finished per-request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The request this trace belongs to (see [`next_request_id`]).
    pub request_id: u64,
    /// Spans in start order (a pre-order walk of the span tree).
    pub spans: Vec<Span>,
    /// Spans discarded because the trace hit [`MAX_SPANS`].
    pub dropped: u64,
}

impl Trace {
    /// Total duration: the root span's, or the max span end seen.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0)
            - self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0)
    }

    /// Spans with the given name, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }
}

struct ActiveTrace {
    clock: Arc<dyn Clock>,
    request_id: u64,
    spans: Vec<Span>,
    /// Stack of indices into `spans` for the currently open spans.
    open: Vec<usize>,
    dropped: u64,
}

thread_local! {
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    static REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

static REQUEST_IDS: AtomicU64 = AtomicU64::new(1);

/// Draw the next process-wide request id (counter-derived, no wall clock).
pub fn next_request_id() -> u64 {
    REQUEST_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Mark `id` as the request this thread is serving, until the returned guard
/// drops (which restores the previous value). Instrumentation deep in the
/// stack — the slow-query log, error correlation — reads it back with
/// [`current_request_id`] instead of threading the id through signatures.
#[must_use = "the request id resets when the guard drops"]
pub fn set_request_id(id: u64) -> RequestIdGuard {
    let prev = REQUEST_ID.with(|r| r.replace(id));
    RequestIdGuard { prev }
}

/// The id set by the innermost live [`set_request_id`] guard on this thread,
/// or 0 when no request is being served.
pub fn current_request_id() -> u64 {
    REQUEST_ID.with(|r| r.get())
}

/// Restores the previous thread request id on drop.
#[derive(Debug)]
pub struct RequestIdGuard {
    prev: u64,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|r| r.set(self.prev));
    }
}

/// Is a trace being recorded on this thread?
pub fn trace_active() -> bool {
    TRACING.with(|t| t.get())
}

/// Begin recording a trace on this thread. Returns `false` (and leaves the
/// existing trace untouched) if one is already active — the outermost owner
/// wins, so a gateway embedded in an already-traced binary nests instead of
/// clobbering.
pub fn start_trace(clock: Arc<dyn Clock>, request_id: u64) -> bool {
    if trace_active() {
        return false;
    }
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(ActiveTrace {
            clock,
            request_id,
            spans: Vec::with_capacity(32),
            open: Vec::new(),
            dropped: 0,
        });
    });
    TRACING.with(|t| t.set(true));
    true
}

/// Stop recording and return the trace, closing any spans still open (their
/// guards outlive the trace owner only in error paths). `None` if no trace
/// was active.
pub fn finish_trace() -> Option<Trace> {
    if !trace_active() {
        return None;
    }
    TRACING.with(|t| t.set(false));
    let active = ACTIVE.with(|a| a.borrow_mut().take())?;
    let end = active.clock.now_ns();
    let mut spans = active.spans;
    for idx in active.open {
        spans[idx].dur_ns = end.saturating_sub(spans[idx].start_ns);
    }
    crate::metrics::metrics().traces_recorded.inc();
    Some(Trace {
        request_id: active.request_id,
        spans,
        dropped: active.dropped,
    })
}

/// Open a span. Returns a guard that closes the span when dropped. When no
/// trace is active this is a single thread-local flag read.
#[must_use = "the span closes when the guard drops; binding to _ closes it immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_active() {
        return SpanGuard { index: None };
    }
    let index = ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let active = borrow.as_mut()?;
        if active.spans.len() >= MAX_SPANS {
            active.dropped += 1;
            return None;
        }
        let index = active.spans.len();
        active.spans.push(Span {
            name,
            start_ns: active.clock.now_ns(),
            dur_ns: 0,
            depth: active.open.len(),
            parent: active.open.last().copied(),
            notes: Vec::new(),
        });
        active.open.push(index);
        Some(index)
    });
    SpanGuard { index }
}

/// Attach `key = value` metadata to the innermost open span, if any.
pub fn note(key: &'static str, value: impl Into<String>) {
    if !trace_active() {
        return;
    }
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        if let Some(active) = borrow.as_mut() {
            if let Some(&idx) = active.open.last() {
                active.spans[idx].notes.push((key, value.into()));
            }
        }
    });
}

/// Closes its span on drop. A no-op when tracing was inactive at open time
/// or the trace was already full.
#[derive(Debug)]
pub struct SpanGuard {
    index: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else { return };
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            let Some(active) = borrow.as_mut() else {
                return;
            };
            let end = active.clock.now_ns();
            // Guards drop in LIFO order in straight-line code; if an inner
            // guard was leaked past its parent (error unwinding), close
            // everything above this span too, at the same instant.
            while let Some(open_idx) = active.open.pop() {
                active.spans[open_idx].dur_ns = end.saturating_sub(active.spans[open_idx].start_ns);
                if open_idx == index {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    fn fixed_clock() -> Arc<TestClock> {
        Arc::new(TestClock::new())
    }

    #[test]
    fn spans_nest_and_order() {
        let clock = fixed_clock();
        assert!(start_trace(clock.clone(), 1));
        {
            let _request = span("request");
            clock.advance_micros(10);
            {
                let _sql = span("exec_sql");
                note("sql", "SELECT 1");
                clock.advance_micros(30);
            }
            {
                let _render = span("render_report");
                clock.advance_micros(5);
            }
        }
        let t = finish_trace().unwrap();
        assert_eq!(t.request_id, 1);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["request", "exec_sql", "render_report"]);
        assert_eq!(t.spans[0].depth, 0);
        assert_eq!(t.spans[1].depth, 1);
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[2].parent, Some(0));
        // Durations are exact under the TestClock.
        assert_eq!(t.spans[0].dur_ns, 45_000);
        assert_eq!(t.spans[1].dur_ns, 30_000);
        assert_eq!(t.spans[1].start_ns, 10_000);
        assert_eq!(t.spans[2].start_ns, 40_000);
        assert_eq!(t.spans[1].notes, vec![("sql", "SELECT 1".to_owned())]);
    }

    #[test]
    fn no_active_trace_is_a_noop() {
        assert!(!trace_active());
        let _g = span("ignored");
        note("k", "v");
        assert!(finish_trace().is_none());
    }

    #[test]
    fn second_start_does_not_clobber() {
        let clock = fixed_clock();
        assert!(start_trace(clock.clone(), 1));
        assert!(!start_trace(clock.clone(), 2));
        let t = finish_trace().unwrap();
        assert_eq!(t.request_id, 1);
    }

    #[test]
    fn finish_closes_leaked_open_spans() {
        let clock = fixed_clock();
        start_trace(clock.clone(), 3);
        let guard = span("request");
        clock.advance_micros(7);
        let t = finish_trace().unwrap();
        drop(guard); // after finish: must not panic or corrupt anything
        assert_eq!(t.spans[0].dur_ns, 7_000);
    }

    #[test]
    fn trace_caps_at_max_spans() {
        let clock = fixed_clock();
        start_trace(clock.clone(), 4);
        let _root = span("request");
        for _ in 0..MAX_SPANS + 10 {
            let _s = span("substitute");
        }
        let t = finish_trace().unwrap();
        assert_eq!(t.spans.len(), MAX_SPANS);
        assert_eq!(t.dropped, 11);
    }

    #[test]
    fn deterministic_under_test_clock() {
        let run = || {
            let clock = fixed_clock();
            start_trace(clock.clone(), 9);
            {
                let _a = span("request");
                clock.advance_ns(100);
                let _b = span("exec_sql");
                clock.advance_ns(250);
            }
            finish_trace().unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "identical clock programs → identical traces");
    }

    #[test]
    fn request_id_guard_scopes_and_restores() {
        assert_eq!(current_request_id(), 0);
        {
            let _outer = set_request_id(7);
            assert_eq!(current_request_id(), 7);
            {
                let _inner = set_request_id(8);
                assert_eq!(current_request_id(), 8);
            }
            assert_eq!(current_request_id(), 7);
        }
        assert_eq!(current_request_id(), 0);
    }

    #[test]
    fn request_ids_are_unique_across_threads() {
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|_| next_request_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800);
    }
}
