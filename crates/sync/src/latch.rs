//! [`LatchTable`] — named exclusive latches with a deadlock-free protocol.
//!
//! A latch table hands out short-lived exclusive latches keyed by name (the
//! database uses lowercased table names, plus the reserved catalog name
//! [`CATALOG_LATCH`]). Deadlock freedom is by *total acquisition order*:
//! [`LatchTable::acquire`] sorts and dedupes the requested names and locks
//! them in that order, so two writers can never hold latches in conflicting
//! orders. The catalog name is the empty string, which sorts before every
//! legal table name — a DDL statement that takes the catalog latch first and
//! a table latch second therefore still respects the global order.
//!
//! Latches are *not* std mutexes handed to the caller: a [`LatchSet`] guard
//! releases on drop, including a drop that happens during a panic unwind, so
//! a writer that dies mid-statement cannot strand the table. The waiting
//! primitive underneath is a [`Mutex`]`<bool>` + `Condvar` pair, and the
//! poison-recovering [`Mutex`] wrapper means a panic inside the (tiny)
//! critical sections cannot cascade either.

use crate::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// The reserved latch name that serializes DDL (catalog-shape changes).
/// Empty, so it sorts before every real table name in the total order.
pub const CATALOG_LATCH: &str = "";

/// One named exclusive latch: a held flag and the queue waiting on it.
#[derive(Debug, Default)]
struct Latch {
    state: Mutex<bool>,
    unlocked: Condvar,
}

impl Latch {
    /// Block until the latch is free, then take it. Returns the time spent
    /// waiting (zero when the latch was free).
    fn lock(&self) -> Duration {
        let mut held = self.state.lock();
        if !*held {
            *held = true;
            return Duration::ZERO;
        }
        let start = Instant::now();
        while *held {
            held = self
                .unlocked
                .wait(held)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        *held = true;
        start.elapsed()
    }

    fn unlock(&self) {
        *self.state.lock() = false;
        self.unlocked.notify_one();
    }
}

/// A registry of named exclusive latches.
///
/// Latch objects are created on first use and live for the table's lifetime;
/// the registry itself is only locked long enough to look names up, never
/// while waiting for a latch.
#[derive(Debug, Default)]
pub struct LatchTable {
    latches: Mutex<HashMap<String, Arc<Latch>>>,
}

impl LatchTable {
    /// An empty table.
    pub fn new() -> LatchTable {
        LatchTable::default()
    }

    /// Acquire exclusive latches on every name in `names` (any order, dups
    /// fine), blocking until all are held. Acquisition happens in sorted
    /// order — the total order that makes deadlock impossible as long as
    /// every multi-latch acquisition goes through this method.
    ///
    /// The returned guard releases every latch on drop (panic-safe) and
    /// reports the total time spent waiting, for lock-contention metrics.
    pub fn acquire<S: AsRef<str>>(&self, names: &[S]) -> LatchSet {
        let mut sorted: Vec<&str> = names.iter().map(|s| s.as_ref()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let handles: Vec<Arc<Latch>> = {
            let mut registry = self.latches.lock();
            sorted
                .iter()
                .map(|name| {
                    Arc::clone(
                        registry
                            .entry((*name).to_owned())
                            .or_insert_with(|| Arc::new(Latch::default())),
                    )
                })
                .collect()
        };
        let mut set = LatchSet {
            held: Vec::with_capacity(handles.len()),
            waited: Duration::ZERO,
        };
        for latch in handles {
            // If a later lock() somehow unwound, `set` would drop and release
            // the prefix already held — no latch can leak.
            set.waited += latch.lock();
            set.held.push(latch);
        }
        set
    }

    /// Number of distinct latch names ever seen (registry size; tests).
    pub fn len(&self) -> usize {
        self.latches.lock().len()
    }

    /// Whether no latch has ever been requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard over one sorted-order acquisition; releases all latches on
/// drop, in reverse acquisition order.
#[derive(Debug)]
pub struct LatchSet {
    held: Vec<Arc<Latch>>,
    waited: Duration,
}

impl LatchSet {
    /// Total time this acquisition spent blocked on other holders.
    pub fn waited(&self) -> Duration {
        self.waited
    }

    /// How many distinct latches the set holds.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether the set holds no latches (an empty write set).
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

impl Drop for LatchSet {
    fn drop(&mut self) {
        for latch in self.held.drain(..).rev() {
            latch.unlock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn exclusive_within_one_name() {
        let table = Arc::new(LatchTable::new());
        let in_section = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let table = Arc::clone(&table);
                let in_section = Arc::clone(&in_section);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _guard = table.acquire(&["t"]);
                        assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }

    #[test]
    fn sorted_multi_latch_never_deadlocks() {
        // Every thread asks for a random-order subset; sorted acquisition
        // must let all of them finish.
        let table = Arc::new(LatchTable::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let table = Arc::clone(&table);
                s.spawn(move || {
                    let names = ["a", "b", "c", "d"];
                    for i in 0..300usize {
                        let first = (t + i) % names.len();
                        let second = (t + 3 * i + 1) % names.len();
                        let _guard = table.acquire(&[names[first], names[second]]);
                    }
                });
            }
        });
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn duplicate_names_collapse() {
        let table = LatchTable::new();
        let guard = table.acquire(&["t", "t", "t"]);
        assert_eq!(guard.len(), 1);
    }

    #[test]
    fn catalog_latch_sorts_first() {
        // Just the ordering property the DDL protocol relies on.
        let mut names = vec!["guest", CATALOG_LATCH, "accounts"];
        names.sort_unstable();
        assert_eq!(names[0], CATALOG_LATCH);
    }

    #[test]
    fn panicking_holder_releases_latches() {
        let table = Arc::new(LatchTable::new());
        let table2 = Arc::clone(&table);
        let _ = std::thread::spawn(move || {
            let _guard = table2.acquire(&["t", "u"]);
            panic!("die mid-statement");
        })
        .join();
        // Both latches must be free again; a leak would hang here.
        let guard = table.acquire(&["t", "u"]);
        assert_eq!(guard.len(), 2);
    }

    #[test]
    fn waited_reports_contention() {
        let table = Arc::new(LatchTable::new());
        let held = table.acquire(&["t"]);
        let table2 = Arc::clone(&table);
        let waiter = std::thread::spawn(move || table2.acquire(&["t"]).waited());
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap() > Duration::ZERO);
        // And an uncontended acquisition reports zero.
        assert_eq!(table.acquire(&["free"]).waited(), Duration::ZERO);
    }
}
