//! **dbgw-sync** — poison-recovering wrappers over `std::sync` locks.
//!
//! The workspace builds with zero external dependencies, so the locks that
//! used to come from `parking_lot` are std locks with its ergonomics: `read`,
//! `write`, and `lock` return guards directly instead of `Result`s. A
//! poisoned lock (a holder panicked) yields its inner guard rather than
//! panicking again — the engine's state transitions are exception-safe per
//! statement, so recovering is strictly better than cascading the poison.
//!
//! The guards are the plain `std::sync` guard types, so a
//! [`std::sync::Condvar`] can `wait` on a [`Mutex`] guard directly; the HTTP
//! worker pool in `dbgw-cgi` relies on this for its bounded accept queue.
//!
//! On top of the lock wrappers sit the two primitives of the snapshot-read
//! concurrency protocol (DESIGN.md §11):
//!
//! * [`SnapshotCell`] — an atomically publishable `Arc<T>`: readers pin the
//!   current value and then run lock-free against it; writers install a
//!   replacement atomically (optionally derived from the latest value via
//!   [`SnapshotCell::rcu`]).
//! * [`LatchTable`] / [`LatchSet`] — named exclusive latches acquired in
//!   sorted order (a total order, so writer-writer deadlock is impossible),
//!   released on drop even through a panic unwind.

#![warn(missing_docs)]

mod latch;
mod snapshot;

pub use latch::{LatchSet, LatchTable, CATALOG_LATCH};
pub use snapshot::SnapshotCell;

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock whose guards ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire shared read access, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now; `None` if contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_waits_on_guard() {
        use std::sync::{Arc, Condvar};
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                started = cond.wait(started).unwrap_or_else(|e| e.into_inner());
            }
        });
        {
            let (lock, cond) = &*pair;
            *lock.lock() = true;
            cond.notify_one();
        }
        t.join().unwrap();
    }
}
