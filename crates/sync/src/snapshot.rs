//! [`SnapshotCell`] — an atomically publishable, shared, immutable value.
//!
//! The cell holds an `Arc<T>`; readers *pin* the current value with
//! [`SnapshotCell::load`] (a shared lock held only long enough to clone the
//! `Arc`) and then work against the pinned snapshot with no lock at all.
//! Writers prepare a replacement off to the side and install it with
//! [`SnapshotCell::store`] or — when the replacement must be derived from
//! whatever is current at the instant of publication — [`SnapshotCell::rcu`],
//! which runs the caller's closure under the exclusive lock so no concurrent
//! publication can be lost.
//!
//! The exclusive section of a publication is O(pointer swap) plus whatever
//! the `rcu` closure does; the database keeps that closure to a shallow
//! map-patching pass, so readers are never blocked for the duration of a
//! statement — the property the snapshot-read engine is built on.

use crate::RwLock;
use std::sync::Arc;

/// A cell holding an `Arc<T>` that can be read (pinned) concurrently and
/// replaced atomically.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> SnapshotCell<T> {
        SnapshotCell::new(T::default())
    }
}

impl<T> SnapshotCell<T> {
    /// A cell initially publishing `value`.
    pub fn new(value: T) -> SnapshotCell<T> {
        SnapshotCell {
            current: RwLock::new(Arc::new(value)),
        }
    }

    /// Pin the currently published snapshot. The internal lock is held only
    /// for the `Arc` clone; the returned snapshot is valid (and immutable)
    /// for as long as the caller keeps it, regardless of later publications.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Publish `value`, replacing the current snapshot outright. Readers that
    /// pinned the old snapshot keep it; new loads see `value`.
    pub fn store(&self, value: Arc<T>) {
        *self.current.write() = value;
    }

    /// Read-copy-update: derive the next snapshot from the current one under
    /// the exclusive lock, so no concurrent publication can be lost between
    /// reading `current` and installing the replacement. Returns the closure's
    /// second output. Keep the closure cheap — loads wait while it runs.
    pub fn rcu<R>(&self, f: impl FnOnce(&Arc<T>) -> (Arc<T>, R)) -> R {
        let mut guard = self.current.write();
        let (next, out) = f(&guard);
        *guard = next;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_pins_across_store() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let pinned = cell.load();
        cell.store(Arc::new(vec![9]));
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn rcu_sees_latest_value() {
        let cell = SnapshotCell::new(0usize);
        for _ in 0..10 {
            cell.rcu(|cur| (Arc::new(**cur + 1), ()));
        }
        assert_eq!(*cell.load(), 10);
    }

    #[test]
    fn concurrent_rcu_increments_never_lost() {
        let cell = Arc::new(SnapshotCell::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        cell.rcu(|cur| (Arc::new(**cur + 1), ()));
                    }
                });
            }
        });
        assert_eq!(*cell.load(), 8_000);
    }

    #[test]
    fn readers_see_only_published_states() {
        // Publish (n, 2n) pairs; a torn read would observe a mismatched pair.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        std::thread::scope(|s| {
            let writer = Arc::clone(&cell);
            s.spawn(move || {
                for n in 1..=5_000u64 {
                    writer.store(Arc::new((n, 2 * n)));
                }
            });
            for _ in 0..4 {
                let reader = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        let snap = reader.load();
                        assert_eq!(snap.1, 2 * snap.0);
                    }
                });
            }
        });
    }
}
