//! Poison recovery under concurrent panic.
//!
//! The engine's crash story leans on two properties of this crate: a panic
//! while holding a lock must not cascade (`Mutex`/`RwLock` recover the
//! poisoned guard), and a panic while holding latches must not strand them
//! (`LatchSet` releases on unwind). The unit tests prove both single-threaded;
//! these regressions prove them with the panic racing live traffic — a writer
//! dying inside the publication critical section while other writers are
//! mid-publish and readers are mid-pin. The stress watchdog converts a
//! stranded latch or poisoned-and-stuck cell into a named failure, not a hang.

use dbgw_sync::{LatchTable, SnapshotCell};
use dbgw_testkit::stress::{self, StressConfig};
use dbgw_testkit::{prop_assert, prop_assert_eq};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Counter {
    cell: SnapshotCell<u64>,
    committed: AtomicU64,
}

/// Writers randomly panic *inside* the rcu closure — while holding the
/// cell's exclusive write lock, the exact moment std would poison it. The
/// wrapper must recover: every non-panicking increment still lands, none is
/// lost, and the value a concurrent reader pins never runs ahead of what has
/// actually been committed.
#[test]
fn rcu_survives_writers_panicking_inside_the_critical_section() {
    let shared = Arc::new(Counter {
        cell: SnapshotCell::new(0u64),
        committed: AtomicU64::new(0),
    });
    let writers = Arc::clone(&shared);
    let readers = Arc::clone(&shared);
    let mut config = StressConfig::named("rcu_poison_recovery");
    config.threads = 4;
    config.iters = 128;
    stress::run_observed(
        &config,
        move |w| {
            if w.rng.gen_bool(0.25) {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    writers
                        .cell
                        .rcu::<()>(|_| panic!("die holding the write lock"));
                }));
                prop_assert!(result.is_err(), "panic hook swallowed the unwind");
            } else {
                writers.cell.rcu(|cur| (Arc::new(**cur + 1), ()));
                writers.committed.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        },
        move || {
            // A committed count read *before* the pin is a floor: each
            // increment bumps the cell before it bumps the counter.
            let floor = readers.committed.load(Ordering::SeqCst);
            let pinned = readers.cell.load();
            prop_assert!(
                *pinned >= floor,
                "lost increment: pinned {} < committed floor {floor}",
                *pinned
            );
            Ok(())
        },
    );
    assert_eq!(
        *shared.cell.load(),
        shared.committed.load(Ordering::SeqCst),
        "increments lost or duplicated across panics"
    );
}

/// Latch holders randomly panic while holding multi-name latch sets, racing
/// other threads waiting on those very latches. The unwind must release
/// every latch (no stranded waiter — the watchdog would name it) and the
/// exclusivity guarantee must hold throughout.
#[test]
fn latch_waiters_survive_concurrent_holder_panics() {
    struct Latched {
        table: LatchTable,
        in_section: AtomicU64,
    }
    let shared = Arc::new(Latched {
        table: LatchTable::new(),
        in_section: AtomicU64::new(0),
    });
    let workers = Arc::clone(&shared);
    let mut config = StressConfig::named("latch_poison_recovery");
    config.threads = 8;
    config.iters = 96;
    stress::run(&config, move |w| {
        let names = ["accounts", "orders", "items"];
        let a = names[w.rng.gen_range(0usize..3)];
        let b = names[w.rng.gen_range(0usize..3)];
        let guard = workers.table.acquire(&[a, b]);
        // Exclusivity: with latches on `a` (and `b`) held, the critical
        // section below must never be concurrently entered for the same
        // name; a global entrant count of distinct-name holders suffices
        // to catch a release-during-unwind bug that frees a latch early.
        workers.in_section.fetch_add(1, Ordering::SeqCst);
        let die = w.rng.gen_bool(0.2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            if die {
                panic!("die holding {a}+{b}");
            }
            drop(guard);
        }));
        workers.in_section.fetch_sub(1, Ordering::SeqCst);
        prop_assert_eq!(result.is_err(), die);
        Ok(())
    });
    // Every latch must be free again: an immediate full acquisition would
    // hang (and trip the watchdog of a later run) if one leaked.
    let guard = shared.table.acquire(&["accounts", "orders", "items"]);
    assert_eq!(guard.len(), 3);
}

/// The classic poison cascade: one thread panics holding the write lock,
/// and *many* other threads immediately pile onto the same cell from both
/// the read and write side. Every one of them must get through.
#[test]
fn poisoned_cell_serves_all_comers() {
    let cell = Arc::new(SnapshotCell::new(vec![1u64, 2, 3]));
    let victim = Arc::clone(&cell);
    let _ = std::thread::spawn(move || {
        victim.rcu::<()>(|_| panic!("poison the snapshot lock"));
    })
    .join();
    // The poisoned cell still holds the pre-panic value.
    assert_eq!(*cell.load(), vec![1, 2, 3]);

    let survivors = Arc::clone(&cell);
    let mut config = StressConfig::named("poisoned_cell_all_comers");
    config.threads = 6;
    config.iters = 64;
    stress::run(&config, move |w| {
        if w.rng.gen_bool(0.5) {
            let pinned = survivors.load();
            prop_assert!(!pinned.is_empty(), "snapshot vanished after poison");
        } else {
            survivors.rcu(|cur| {
                let mut next = (**cur).clone();
                next.push(w.iter);
                (Arc::new(next), ())
            });
        }
        Ok(())
    });
    assert_eq!(&cell.load()[..3], &[1, 2, 3], "pre-panic prefix corrupted");
}
