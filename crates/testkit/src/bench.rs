//! A micro-benchmark timer: warmup, auto-calibrated batching, median-of-N.
//!
//! Replaces criterion for this workspace's benches. Results print as aligned
//! human-readable lines; set `BENCH_JSON=<path>` (or `-` for stdout) to also
//! emit one JSON object per benchmark, the format the `BENCH_*.json`
//! trajectory files consume. `BENCH_QUICK=1` cuts samples and batch time for
//! smoke runs.
//!
//! ```no_run
//! let mut suite = dbgw_testkit::bench::Suite::new("parse_macro");
//! let mut group = suite.group("E1_parse_by_sections");
//! group.throughput(dbgw_testkit::bench::Throughput::Bytes(1024));
//! group.bench("4", || 2 + 2);
//! drop(group);
//! suite.finish();
//! ```

use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Units processed per iteration, for derived rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Items per iteration.
    Elements(u64),
}

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// `group/bench` identifier.
    pub id: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations batched per sample.
    pub iters_per_sample: u64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

impl Stats {
    fn human_rate(&self) -> String {
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (self.median_ns / 1e9);
                format!("  ({})", format_bytes_rate(per_sec))
            }
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (self.median_ns / 1e9);
                format!("  ({per_sec:.0} elem/s)")
            }
            None => String::new(),
        }
    }
}

fn format_bytes_rate(bytes_per_sec: f64) -> String {
    const UNITS: &[&str] = &["B/s", "KiB/s", "MiB/s", "GiB/s", "TiB/s"];
    let mut rate = bytes_per_sec;
    let mut unit = 0;
    while rate >= 1024.0 && unit + 1 < UNITS.len() {
        rate /= 1024.0;
        unit += 1;
    }
    format!("{rate:.1} {}", UNITS[unit])
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmark groups; one per bench binary.
pub struct Suite {
    name: String,
    quick: bool,
    json: Option<JsonSink>,
    count: usize,
    started: Instant,
}

enum JsonSink {
    Stdout,
    File(std::fs::File),
}

impl Suite {
    /// Read `BENCH_JSON` / `BENCH_QUICK` from the environment and announce
    /// the suite.
    pub fn new(name: &str) -> Suite {
        let json = match std::env::var("BENCH_JSON") {
            Ok(path) if path == "-" => Some(JsonSink::Stdout),
            Ok(path) => Some(JsonSink::File(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .unwrap_or_else(|e| panic!("BENCH_JSON={path}: {e}")),
            )),
            Err(_) => None,
        };
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
        println!("suite {name}{}", if quick { " (quick)" } else { "" });
        Suite {
            name: name.to_owned(),
            quick,
            json,
            count: 0,
            started: Instant::now(),
        }
    }

    /// Open a benchmark group (a series over one parameter).
    pub fn group(&mut self, id: &str) -> Group<'_> {
        Group {
            suite: self,
            id: id.to_owned(),
            samples: 0, // 0 = default
            throughput: None,
        }
    }

    /// Record a named scalar metric alongside the timing results — e.g. the
    /// gateway's `dbgw_*` counters after a bench run. Printed with the human
    /// output and, under `BENCH_JSON`, emitted as its own JSON line:
    /// `{"suite":…,"metric":name,"value":n}`.
    pub fn record_metric(&mut self, name: &str, value: f64) {
        println!("  metric {name} = {value}");
        if let Some(sink) = &mut self.json {
            let line = format!(
                "{{\"suite\":\"{}\",\"metric\":\"{name}\",\"value\":{value}}}\n",
                self.name
            );
            match sink {
                JsonSink::Stdout => print!("{line}"),
                JsonSink::File(f) => {
                    let _ = f.write_all(line.as_bytes());
                }
            }
        }
    }

    /// Print the closing summary line.
    pub fn finish(self) {
        println!(
            "suite {}: {} benchmarks in {:.1} s",
            self.name,
            self.count,
            self.started.elapsed().as_secs_f64()
        );
    }

    fn record(&mut self, stats: &Stats) {
        self.count += 1;
        println!(
            "  {:<44} median {:>10}   [{} .. {}]{}",
            stats.id,
            format_ns(stats.median_ns),
            format_ns(stats.min_ns),
            format_ns(stats.max_ns),
            stats.human_rate(),
        );
        if let Some(sink) = &mut self.json {
            let throughput = match stats.throughput {
                Some(Throughput::Bytes(n)) => format!(",\"bytes_per_iter\":{n}"),
                Some(Throughput::Elements(n)) => format!(",\"elements_per_iter\":{n}"),
                None => String::new(),
            };
            let line = format!(
                "{{\"suite\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\
                 \"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{}}}\n",
                self.name,
                stats.id,
                stats.median_ns,
                stats.min_ns,
                stats.max_ns,
                stats.samples,
                stats.iters_per_sample,
                throughput,
            );
            match sink {
                JsonSink::Stdout => print!("{line}"),
                JsonSink::File(f) => {
                    let _ = f.write_all(line.as_bytes());
                }
            }
        }
    }
}

/// A series of related benchmarks sharing throughput and sample settings.
pub struct Group<'a> {
    suite: &'a mut Suite,
    id: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Override the number of samples (default 9, quick mode 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Declare per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn effective_samples(&self) -> usize {
        let n = if self.samples == 0 { 9 } else { self.samples };
        if self.suite.quick {
            n.min(3)
        } else {
            n
        }
    }

    fn target_sample_ns(&self) -> u64 {
        if self.suite.quick {
            1_000_000 // 1 ms
        } else {
            5_000_000 // 5 ms
        }
    }

    /// Benchmark `f`, batching calls so each timed sample is long enough to
    /// swamp timer resolution; report the median per-iteration time.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        let samples = self.effective_samples();
        // Warmup doubles as calibration: how long does one call take?
        let mut one_ns = u64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(f());
            one_ns = one_ns.min(start.elapsed().as_nanos() as u64);
        }
        let iters = (self.target_sample_ns() / one_ns.max(1)).clamp(1, 1_000_000);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.report(id, times, iters);
    }

    /// Benchmark `routine` with a fresh, untimed `setup` product per call.
    /// Each sample is a single timed call (no batching), so prefer routines
    /// well above timer resolution.
    pub fn bench_with_setup<S, T>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let samples = self.effective_samples();
        // One warmup pass.
        black_box(routine(setup()));
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.report(id, times, 1);
    }

    fn report(&mut self, id: &str, mut times: Vec<f64>, iters: u64) {
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let stats = Stats {
            id: format!("{}/{id}", self.id),
            median_ns: median,
            min_ns: times[0],
            max_ns: *times.last().unwrap(),
            samples: times.len(),
            iters_per_sample: iters,
            throughput: self.throughput,
        };
        self.suite.record(&stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_stats() {
        let mut suite = Suite::new("selftest");
        {
            let mut group = suite.group("g");
            group.sample_size(3);
            group.bench("noop", || black_box(1 + 1));
        }
        assert_eq!(suite.count, 1);
        suite.finish();
    }

    #[test]
    fn bench_with_setup_runs_setup_per_sample() {
        let mut suite = Suite::new("selftest2");
        let mut setups = 0usize;
        {
            let mut group = suite.group("g");
            group.sample_size(4);
            group.bench_with_setup(
                "b",
                || {
                    setups += 1;
                    vec![0u8; 64]
                },
                |v| v.len(),
            );
        }
        // 1 warmup + 4 samples.
        assert_eq!(setups, 5);
    }

    #[test]
    fn record_metric_does_not_count_as_benchmark() {
        let mut suite = Suite::new("selftest3");
        suite.record_metric("dbgw_requests_total", 12.0);
        assert_eq!(suite.count, 0);
        suite.finish();
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(format_bytes_rate(512.0), "512.0 B/s");
        assert_eq!(format_bytes_rate(2048.0), "2.0 KiB/s");
        assert!(format_ns(1500.0).contains("µs"));
    }
}
