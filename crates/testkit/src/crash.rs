//! Deterministic crash-point injection.
//!
//! Recovery code is only trustworthy if the crashes it recovers from can be
//! produced on demand. This module is a process-wide registry of named
//! *crash points*: production code calls [`hit`] at the places where a real
//! power cut would bite (before a log append, mid-record, before a checkpoint
//! rename), and a test arms the point it wants with [`arm`]. Unarmed points
//! cost one relaxed atomic load — cheap enough to leave in release builds,
//! which is what lets `scripts/ci.sh` and the stress harness exercise the
//! exact binary that ships.
//!
//! Semantics: `arm(point, n)` makes the `n`-th call to `hit(point)` return
//! `true` exactly once (the point disarms itself on firing). The subsystem
//! that observes `true` is expected to latch its own "crashed" state — e.g.
//! a WAL silently dropping writes from that moment on, simulating the
//! process dying at that instant while the test harness stays alive to
//! reopen the files and assert on what recovery sees.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of armed points; lets [`hit`] bail with one atomic load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `point` to fire on its `after_hits`-th [`hit`] (1-based: `1` fires on
/// the very next hit). Re-arming an armed point replaces its counter.
pub fn arm(point: &str, after_hits: u64) {
    assert!(after_hits > 0, "crash points are 1-based: arm with >= 1");
    let mut map = registry().lock().unwrap();
    if map.insert(point.to_owned(), after_hits).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarm `point` if armed.
pub fn disarm(point: &str) {
    let mut map = registry().lock().unwrap();
    if map.remove(point).is_some() {
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarm every point (test teardown).
pub fn disarm_all() {
    let mut map = registry().lock().unwrap();
    if !map.is_empty() {
        map.clear();
        ARMED.store(0, Ordering::SeqCst);
    }
}

/// Is `point` currently armed?
pub fn armed(point: &str) -> bool {
    ARMED.load(Ordering::SeqCst) > 0 && registry().lock().unwrap().contains_key(point)
}

/// Record one pass through `point`. Returns `true` exactly when the armed
/// countdown reaches zero — the caller should then behave as if the process
/// died here. The point disarms itself on firing.
pub fn hit(point: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let mut map = registry().lock().unwrap();
    let Some(left) = map.get_mut(point) else {
        return false;
    };
    *left -= 1;
    if *left == 0 {
        map.remove(point);
        ARMED.fetch_sub(1, Ordering::SeqCst);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share one process-wide registry; distinct point names keep them
    // independent under the parallel test runner.

    #[test]
    fn unarmed_points_never_fire() {
        assert!(!hit("crash.test.never"));
        assert!(!armed("crash.test.never"));
    }

    #[test]
    fn fires_on_nth_hit_then_disarms() {
        arm("crash.test.third", 3);
        assert!(!hit("crash.test.third"));
        assert!(!hit("crash.test.third"));
        assert!(hit("crash.test.third"));
        // Self-disarmed: further hits pass through.
        assert!(!hit("crash.test.third"));
        assert!(!armed("crash.test.third"));
    }

    #[test]
    fn disarm_cancels_a_pending_point() {
        arm("crash.test.cancel", 1);
        assert!(armed("crash.test.cancel"));
        disarm("crash.test.cancel");
        assert!(!hit("crash.test.cancel"));
    }

    #[test]
    fn rearm_replaces_the_countdown() {
        arm("crash.test.rearm", 5);
        assert!(!hit("crash.test.rearm"));
        arm("crash.test.rearm", 1);
        assert!(hit("crash.test.rearm"));
    }
}
