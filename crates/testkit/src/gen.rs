//! Value generators for property-based tests.
//!
//! A [`Gen`] produces random values from an [`Rng`] and, on failure, proposes
//! *smaller* candidate values via [`Gen::shrink`]. The runner greedily walks
//! shrink candidates until none of them reproduces the failure, so the value
//! reported to the developer is locally minimal.
//!
//! Generators compose structurally: tuples of generators generate tuples,
//! [`vec_of`] generates vectors, [`option_of`] generates options. String
//! generators are built from explicit character sets instead of regexes —
//! `charset("abc%_", 0..=6)` replaces proptest's `"[a-c%_]{0,6}"`.

use crate::rng::Rng;
use std::fmt::Debug;

/// A source of random values with structural shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
    /// Candidate simpler values to try when `value` fails a property.
    /// An empty vector means the value is already minimal.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Inclusive length bounds for strings and collections. Accepts both `0..10`
/// (half-open, like slice indexing) and `0..=9`.
pub trait LenRange {
    /// `(min, max)`, both inclusive.
    fn bounds(self) -> (usize, usize);
}

impl LenRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl LenRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range");
        (*self.start(), *self.end())
    }
}

// ---------------------------------------------------------------- integers

/// Uniform `i64` in an inclusive interval; shrinks toward the in-range value
/// closest to zero.
#[derive(Debug, Clone)]
pub struct IntGen {
    lo: i64,
    hi: i64,
}

/// Uniform integer from a half-open range, e.g. `ints(-100..100)`.
pub fn ints(range: std::ops::Range<i64>) -> IntGen {
    assert!(range.start < range.end, "empty integer range");
    IntGen {
        lo: range.start,
        hi: range.end - 1,
    }
}

/// Uniform over the full `i64` domain.
pub fn any_i64() -> IntGen {
    IntGen {
        lo: i64::MIN,
        hi: i64::MAX,
    }
}

impl IntGen {
    fn anchor(&self) -> i64 {
        if self.lo <= 0 && 0 <= self.hi {
            0
        } else if self.lo > 0 {
            self.lo
        } else {
            self.hi
        }
    }
}

impl Gen for IntGen {
    type Value = i64;
    fn generate(&self, rng: &mut Rng) -> i64 {
        rng.gen_range(self.lo..=self.hi)
    }
    fn shrink(&self, value: &i64) -> Vec<i64> {
        let v = *value;
        let anchor = self.anchor();
        let mut out = Vec::new();
        let mut push = |c: i64| {
            if c != v && c >= self.lo && c <= self.hi && !out.contains(&c) {
                out.push(c);
            }
        };
        if v != anchor {
            push(anchor);
            // Midpoint toward the anchor (i128 avoids overflow at extremes).
            push(((v as i128 + anchor as i128) / 2) as i64);
            // One step toward the anchor.
            push(if v > anchor { v - 1 } else { v + 1 });
        }
        out
    }
}

/// Uniform `usize` from a half-open range; shrinks toward the minimum.
#[derive(Debug, Clone)]
pub struct UsizeGen {
    lo: usize,
    hi: usize,
}

/// Uniform `usize`, e.g. `usizes(0..50)`.
pub fn usizes(range: std::ops::Range<usize>) -> UsizeGen {
    assert!(range.start < range.end, "empty integer range");
    UsizeGen {
        lo: range.start,
        hi: range.end - 1,
    }
}

impl Gen for UsizeGen {
    type Value = usize;
    fn generate(&self, rng: &mut Rng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
    fn shrink(&self, value: &usize) -> Vec<usize> {
        let v = *value;
        let mut out = Vec::new();
        let mut push = |c: usize| {
            if c != v && c >= self.lo && c <= self.hi && !out.contains(&c) {
                out.push(c);
            }
        };
        push(self.lo);
        push(self.lo + (v - self.lo) / 2);
        push(v.saturating_sub(1));
        out
    }
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward zero and whole numbers.
#[derive(Debug, Clone)]
pub struct F64Gen {
    lo: f64,
    hi: f64,
}

/// Uniform float, e.g. `f64s(-1.0e6..1.0e6)`.
pub fn f64s(range: std::ops::Range<f64>) -> F64Gen {
    assert!(range.start < range.end, "empty float range");
    F64Gen {
        lo: range.start,
        hi: range.end,
    }
}

impl Gen for F64Gen {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        let mut push = |c: f64| {
            if c != v && c >= self.lo && c < self.hi && !out.iter().any(|x: &f64| x == &c) {
                out.push(c);
            }
        };
        if self.lo <= 0.0 && 0.0 < self.hi {
            push(0.0);
        }
        push(v.trunc());
        push(v / 2.0);
        out
    }
}

// ----------------------------------------------------------------- strings

/// A string from explicit character sets, with optional distinct first-char
/// set (for identifier-shaped strings).
#[derive(Debug, Clone)]
pub struct StringGen {
    first: Vec<char>,
    rest: Vec<char>,
    min: usize,
    max: usize,
}

/// A string whose chars all come from `chars`, e.g.
/// `charset("abc%_", 0..=6)` for the regex `[a-c%_]{0,6}`.
pub fn charset(chars: &str, len: impl LenRange) -> StringGen {
    let rest: Vec<char> = chars.chars().collect();
    assert!(!rest.is_empty(), "empty character set");
    let (min, max) = len.bounds();
    StringGen {
        first: Vec::new(),
        rest,
        min,
        max,
    }
}

/// Like [`charset`] but the first character is drawn from its own set —
/// `charset_first("ab", "ab0", 1..=9)` for `[ab][ab0]{0,8}`.
pub fn charset_first(first: &str, rest: &str, len: impl LenRange) -> StringGen {
    let mut g = charset(rest, len);
    g.first = first.chars().collect();
    assert!(!g.first.is_empty(), "empty first-character set");
    assert!(g.min >= 1, "a distinct first char needs length >= 1");
    g
}

/// Printable characters: the ASCII visible range plus a pool of multi-byte
/// code points, standing in for proptest's `\PC` class. Multi-byte chars are
/// deliberately frequent enough (~10%) to catch byte/char index confusion.
pub fn printable(len: impl LenRange) -> StringGen {
    const EXOTIC: &str = "é߀λΩ᭎日𝄞\u{FFFD}¡×\u{2028}";
    let mut chars: Vec<char> = (' '..='~').collect();
    chars.extend(EXOTIC.chars());
    let (min, max) = len.bounds();
    StringGen {
        first: Vec::new(),
        rest: chars,
        min,
        max,
    }
}

/// An identifier: `[A-Za-z_][A-Za-z0-9_]*` with the given *total* length.
pub fn ident(len: impl LenRange) -> StringGen {
    charset_first(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_",
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
        len,
    )
}

/// The full printable-ASCII set (`[ -~]`).
pub fn ascii(len: impl LenRange) -> StringGen {
    let (min, max) = len.bounds();
    StringGen {
        first: Vec::new(),
        rest: (' '..='~').collect(),
        min,
        max,
    }
}

impl StringGen {
    /// Remove characters from both sets (`printable(..).exclude("$")` for the
    /// regex `[^$]`).
    pub fn exclude(mut self, chars: &str) -> StringGen {
        self.first.retain(|c| !chars.contains(*c));
        self.rest.retain(|c| !chars.contains(*c));
        assert!(!self.rest.is_empty(), "exclusion emptied the character set");
        self
    }
}

impl Gen for StringGen {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let len = rng.gen_range(self.min..=self.max);
        let mut out = String::with_capacity(len);
        for i in 0..len {
            let pool = if i == 0 && !self.first.is_empty() {
                &self.first
            } else {
                &self.rest
            };
            out.push(*rng.choose(pool));
        }
        out
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let n = chars.len();
        let mut out: Vec<String> = Vec::new();
        let mut push = |cand: String| {
            if cand != *value && !out.contains(&cand) {
                out.push(cand);
            }
        };
        // Shorter first: half, then one-off, then drop-leading when legal.
        if n > self.min {
            let half = self.min.max(n / 2);
            push(chars[..half].iter().collect());
            push(chars[..n - 1].iter().collect());
            if self.first.is_empty() {
                push(chars[1..].iter().collect());
            }
        }
        // Then simpler characters: rewrite positions to the canonical char.
        let simple_rest = self.rest[0];
        for i in 0..n.min(12) {
            let canonical = if i == 0 && !self.first.is_empty() {
                self.first[0]
            } else {
                simple_rest
            };
            if chars[i] != canonical {
                let mut cand = chars.clone();
                cand[i] = canonical;
                push(cand.into_iter().collect());
            }
        }
        out
    }
}

/// A string concatenated from whole tokens out of a fixed pool — the stand-in
/// for alternation regexes like `(SELECT|INSERT|')+`. Shrinks by truncation.
#[derive(Debug, Clone)]
pub struct TokenGen {
    pool: Vec<String>,
    min: usize,
    max: usize,
}

/// `tokens(&["SELECT ", "'", "("], 1..=40)` concatenates 1–40 pool entries.
pub fn tokens(pool: &[&str], count: impl LenRange) -> TokenGen {
    assert!(!pool.is_empty(), "empty token pool");
    let (min, max) = count.bounds();
    TokenGen {
        pool: pool.iter().map(|s| s.to_string()).collect(),
        min,
        max,
    }
}

impl Gen for TokenGen {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.gen_range(self.min..=self.max);
        let mut out = String::new();
        for _ in 0..n {
            let token: &String = rng.choose(&self.pool);
            out.push_str(token);
        }
        out
    }
    fn shrink(&self, value: &String) -> Vec<String> {
        // Token boundaries are lost in the concatenation; plain truncation is
        // enough for the totality fuzzing these drive.
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        if chars.len() > 1 {
            out.push(chars[..chars.len() / 2].iter().collect());
            out.push(chars[..chars.len() - 1].iter().collect());
        } else if chars.len() == 1 && self.min == 0 {
            out.push(String::new());
        }
        out
    }
}

// ------------------------------------------------------------- collections

/// A vector of values from an element generator.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// `vec_of(ints(0..10), 0..=39)` — a vector of 0 to 39 small integers.
pub fn vec_of<G: Gen>(elem: G, len: impl LenRange) -> VecGen<G> {
    let (min, max) = len.bounds();
    VecGen { elem, min, max }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let n = value.len();
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        // Structurally smaller: first half, then each single removal (capped).
        if n > self.min {
            out.push(value[..self.min.max(n / 2)].to_vec());
            for i in (0..n).rev().take(12) {
                let mut cand = value.to_vec();
                cand.remove(i);
                out.push(cand);
            }
        }
        // Element-wise simpler, a few candidates per slot.
        for i in 0..n.min(12) {
            for simpler in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut cand = value.to_vec();
                cand[i] = simpler;
                out.push(cand);
            }
        }
        out
    }
}

/// A byte vector (`Vec<u8>`), shrinking toward short and toward zeros.
#[derive(Debug, Clone)]
pub struct BytesGen {
    min: usize,
    max: usize,
}

/// `bytes(0..=63)` — arbitrary bytes, any value `0..=255`.
pub fn bytes(len: impl LenRange) -> BytesGen {
    let (min, max) = len.bounds();
    BytesGen { min, max }
}

impl Gen for BytesGen {
    type Value = Vec<u8>;
    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
    }
    fn shrink(&self, value: &Vec<u8>) -> Vec<Vec<u8>> {
        let n = value.len();
        let mut out = Vec::new();
        if n > self.min {
            out.push(value[..self.min.max(n / 2)].to_vec());
            out.push(value[..n - 1].to_vec());
        }
        for i in 0..n.min(12) {
            if value[i] != 0 {
                let mut cand = value.to_vec();
                cand[i] = 0;
                out.push(cand);
            }
        }
        out
    }
}

/// `Option<T>` from an inner generator.
#[derive(Debug, Clone)]
pub struct OptionGen<G> {
    inner: G,
    some_probability: f64,
}

/// `option_of(printable(0..=16))` — `None` a quarter of the time.
pub fn option_of<G: Gen>(inner: G) -> OptionGen<G> {
    OptionGen {
        inner,
        some_probability: 0.75,
    }
}

impl<G: Gen> Gen for OptionGen<G> {
    type Value = Option<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Option<G::Value> {
        if rng.gen_bool(self.some_probability) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
    fn shrink(&self, value: &Option<G::Value>) -> Vec<Option<G::Value>> {
        match value {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(self.inner.shrink(v).into_iter().map(Some));
                out
            }
        }
    }
}

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_gen {
    ($($G:ident / $v:ident / $i:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for simpler in self.$i.shrink(&value.$i) {
                        let mut cand = value.clone();
                        cand.$i = simpler;
                        out.push(cand);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!(A / a / 0);
impl_tuple_gen!(A / a / 0, B / b / 1);
impl_tuple_gen!(A / a / 0, B / b / 1, C / c / 2);
impl_tuple_gen!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);
impl_tuple_gen!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
impl_tuple_gen!(
    A / a / 0,
    B / b / 1,
    C / c / 2,
    D / d / 3,
    E / e / 4,
    F / f / 5
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charset_respects_set_and_length() {
        let g = charset("abc", 2..=5);
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn ident_first_char_is_not_a_digit() {
        let g = ident(1..=9);
        let mut rng = Rng::new(2);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            let first = s.chars().next().unwrap();
            assert!(!first.is_ascii_digit(), "{s:?}");
        }
    }

    #[test]
    fn exclude_removes_chars() {
        let g = printable(1..=40).exclude("$");
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            assert!(!g.generate(&mut rng).contains('$'));
        }
    }

    #[test]
    fn vec_len_in_bounds_and_shrinks_shorter() {
        let g = vec_of(ints(0..100), 3..=8);
        let mut rng = Rng::new(4);
        let v = g.generate(&mut rng);
        assert!((3..=8).contains(&v.len()));
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 3, "shrink below min length: {cand:?}");
        }
    }

    #[test]
    fn int_shrink_stays_in_range_and_heads_to_zero() {
        let g = ints(-100..100);
        for cand in g.shrink(&77) {
            assert!((-100..100).contains(&cand));
            assert!(cand.abs() < 77);
        }
        assert!(g.shrink(&0).is_empty());
    }

    #[test]
    fn string_shrink_never_grows() {
        let g = printable(0..=20);
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for cand in g.shrink(&s) {
                assert!(cand.chars().count() <= s.chars().count());
            }
        }
    }

    #[test]
    fn option_shrinks_to_none_first() {
        let g = option_of(ints(0..10));
        let shrunk = g.shrink(&Some(5));
        assert_eq!(shrunk.first(), Some(&None));
    }
}
