//! **dbgw-testkit** — self-contained correctness tooling for the workspace.
//!
//! The workspace has a hard zero-external-dependency policy (the build must
//! succeed with no network and no crates-io registry; see CONTRIBUTING.md).
//! This crate supplies, from the standard library alone, what the test and
//! bench suites previously pulled from proptest / criterion / rand:
//!
//! * [`rng`] — a seeded, deterministic PRNG (splitmix64 → xoshiro256**),
//! * [`gen`] + [`runner`] — property-based testing: composable generators,
//!   a seeded case runner, and greedy iterative shrinking on failure,
//! * [`mod@bench`] — a micro-bench timer (warmup, auto-calibrated batching,
//!   median-of-N, optional JSON-lines output),
//! * [`stress`] — a seeded multi-thread stress harness (barrier start,
//!   per-thread deterministic workloads, deadlock watchdog, failures
//!   replayable by seed) and the [`stress!`] macro,
//! * [`crash`] — a named crash-point registry for deterministic power-cut
//!   injection (durability/recovery tests arm a point; the subsystem under
//!   test consults it at its would-be-fatal moments),
//! * the [`props!`] macro and the `prop_assert!` family, which keep property
//!   tests as declarative as the proptest originals.
//!
//! # Writing a property
//!
//! ```
//! use dbgw_testkit::gen::*;
//!
//! dbgw_testkit::props! {
//!     config(cases = 64);
//!
//!     /// Reversal is an involution.
//!     fn reverse_twice_is_identity(v in vec_of(ints(-100..100), 0..=20)) {
//!         let twice: Vec<i64> = v.iter().rev().rev().cloned().collect();
//!         dbgw_testkit::prop_assert_eq!(twice, v);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Failures report the property name, the seed to replay the run
//! (`TESTKIT_SEED=<seed> cargo test <name>`), and a shrunk counterexample.
//! `TESTKIT_CASES` scales case counts globally.

#![warn(missing_docs)]

pub mod bench;
pub mod crash;
pub mod gen;
pub mod rng;
pub mod runner;
pub mod stress;

pub use gen::Gen;
pub use rng::Rng;
pub use runner::{check, Config};
pub use stress::StressConfig;

/// Define property tests: each `fn name(arg in GEN, ...) { body }` becomes a
/// `#[test]` that checks the body against generated arguments, shrinking on
/// failure. An optional leading `config(field = value, ...);` applies to every
/// property in the block (fields of [`Config`], e.g. `cases`).
#[macro_export]
macro_rules! props {
    (config($($cfg_field:ident = $cfg_value:expr),* $(,)?); $($rest:tt)*) => {
        $crate::__props_impl!([$($cfg_field = $cfg_value),*] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__props_impl!([] $($rest)*);
    };
}

/// Implementation detail of [`props!`]: peels one property per recursion so
/// the shared config tokens can be re-expanded inside each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    ([$($cfg:tt)*]) => {};
    ([$($cfg:tt)*]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $generator:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut config = $crate::Config::named(stringify!($name));
            $crate::__props_cfg!(config; $($cfg)*);
            let generator = ($($generator,)+);
            $crate::check(&config, &generator, |value| {
                let ($($arg,)+) = ::std::clone::Clone::clone(value);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__props_impl!([$($cfg)*] $($rest)*);
    };
}

/// Implementation detail of [`props!`]: applies `field = value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! __props_cfg {
    ($config:ident;) => {};
    ($config:ident; $field:ident = $value:expr $(, $($rest:tt)*)?) => {
        $config.$field = $value;
        $crate::__props_cfg!($config; $($($rest)*)?);
    };
}

/// Fail the enclosing property with a message unless the condition holds.
/// Unlike `assert!`, the failure feeds the shrinker without unwinding noise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property-test counterpart of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Property-test counterpart of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                file!(),
                line!()
            ));
        }
    }};
}
