//! Deterministic pseudo-random numbers: a splitmix64-seeded xoshiro256**.
//!
//! This is the single source of randomness for the whole workspace — the
//! property harness, the workload generators, and the benches all draw from
//! it, so a recorded seed reproduces a run exactly on any platform.

/// The splitmix64 step (Steele, Lea & Flood), used to expand a 64-bit seed
/// into the xoshiro state and nothing else.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic PRNG (xoshiro256**).
///
/// Not cryptographic. The same seed always yields the same sequence; that is
/// the entire point.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose whole state derives from `seed` via splitmix64.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform over an integer or float range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1u64..=6)`. Panics on an empty range.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// An independent child generator (for per-thread streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Unbiased uniform in `[0, span)`; `span` must be nonzero.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        // Rejection sampling: accept only the largest prefix of the u64 range
        // that is an exact multiple of `span`.
        let rem = (u64::MAX % span).wrapping_add(1) % span;
        if rem == 0 {
            return self.next_u64() % span;
        }
        let limit = u64::MAX - rem;
        loop {
            let x = self.next_u64();
            if x <= limit {
                return x % span;
            }
        }
    }
}

/// Range types [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let xs: Vec<u64> = {
            let mut r = Rng::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = Rng::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut r = Rng::new(9);
        // Must not overflow span arithmetic.
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::new(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        Rng::new(1).gen_range(5i64..5);
    }
}
