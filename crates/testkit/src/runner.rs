//! The property runner: generate, check, shrink, report.

use crate::gen::Gen;
use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Knobs for one property check.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (`TESTKIT_CASES` overrides).
    pub cases: u32,
    /// Seed for the case stream (`TESTKIT_SEED` overrides; printed on
    /// failure so a run can be replayed exactly).
    pub seed: u64,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_steps: u32,
    /// Property name, included in failure reports.
    pub name: &'static str,
}

impl Config {
    /// The default configuration for a named property: 96 cases, seed derived
    /// from the property name (stable across runs and platforms).
    pub fn named(name: &'static str) -> Config {
        let seed = match std::env::var("TESTKIT_SEED") {
            Ok(s) => s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("TESTKIT_SEED is not a u64: {s:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(96);
        Config {
            cases,
            seed,
            max_shrink_steps: 4096,
            name,
        }
    }
}

/// FNV-1a, the seed-from-name hash (not security sensitive).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Run `prop` against `config.cases` generated values; on failure, shrink to
/// a locally minimal counterexample and panic with a replayable report.
///
/// A property fails by returning `Err` (what the `prop_assert!` family does)
/// or by panicking; panics are caught so shrinking can continue.
pub fn check<G: Gen>(
    config: &Config,
    generator: &G,
    prop: impl Fn(&G::Value) -> Result<(), String>,
) {
    let mut rng = Rng::new(config.seed);
    for case in 1..=config.cases {
        let value = generator.generate(&mut rng);
        if let Some(message) = failure(&prop, &value) {
            let (minimal, minimal_msg, steps) =
                shrink_to_minimal(generator, &prop, value, message, config.max_shrink_steps);
            panic!(
                "[{name}] property falsified on case {case}/{cases} (seed {seed}; \
                 rerun with TESTKIT_SEED={seed})\n  \
                 minimal counterexample ({steps} shrink steps): {minimal:?}\n  \
                 failure: {minimal_msg}",
                name = config.name,
                cases = config.cases,
                seed = config.seed,
            );
        }
    }
}

/// `Some(message)` if the property rejects `value`.
fn failure<V>(prop: &impl Fn(&V) -> Result<(), String>, value: &V) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

/// Greedy first-improvement descent over the generator's shrink candidates.
fn shrink_to_minimal<G: Gen>(
    generator: &G,
    prop: &impl Fn(&G::Value) -> Result<(), String>,
    mut current: G::Value,
    mut current_msg: String,
    max_steps: u32,
) -> (G::Value, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for candidate in generator.shrink(&current) {
            steps += 1;
            if let Some(message) = failure(prop, &candidate) {
                current = candidate;
                current_msg = message;
                continue 'outer; // restart from the smaller failing value
            }
            if steps >= max_steps {
                break 'outer;
            }
        }
        break; // no candidate still fails: locally minimal
    }
    (current, current_msg, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ints, vec_of};

    #[test]
    fn passing_property_passes() {
        let config = Config {
            cases: 50,
            seed: 1,
            max_shrink_steps: 100,
            name: "tautology",
        };
        check(&config, &ints(0..100), |_| Ok(()));
    }

    #[test]
    fn failing_property_panics_with_report() {
        let config = Config {
            cases: 200,
            seed: 2,
            max_shrink_steps: 1000,
            name: "falsum",
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(&config, &ints(0..100), |v| {
                if *v >= 50 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("falsum"), "{msg}");
        assert!(msg.contains("minimal counterexample"), "{msg}");
        // Greedy shrinking from any failing value must land exactly on the
        // boundary case.
        assert!(msg.contains(": 50"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let config = Config {
            cases: 100,
            seed: 3,
            max_shrink_steps: 2000,
            name: "panics",
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(&config, &vec_of(ints(0..10), 0..=20), |v| {
                assert!(v.len() < 5, "vector of {} elements", v.len());
                Ok(())
            });
        }));
        let msg = panic_message(result.unwrap_err().as_ref());
        // Minimal failing vector has exactly 5 elements.
        assert!(msg.contains("5 elements"), "{msg}");
    }
}
