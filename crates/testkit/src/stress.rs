//! Seeded multi-thread stress harness.
//!
//! Concurrency bugs die in the dark: a failing interleaving that cannot be
//! re-run is a flake, not a regression test. This module runs N worker
//! threads against shared state with
//!
//! * a **barrier start** — every thread (and the optional observer) blocks on
//!   one [`Barrier`] until all are spawned, so the racy window opens with
//!   maximum overlap instead of threads trickling in;
//! * **deterministic per-thread seeds** — a master [`Rng`] seeded from the
//!   config forks one child seed per thread, so each thread's *workload* is a
//!   pure function of `(seed, thread index)` even though the interleaving is
//!   not. Failures print the seed; `TESTKIT_SEED=<seed>` replays the same
//!   workloads (the same statements in the same per-thread order);
//! * an **observer** — an optional closure re-checked continuously on its own
//!   thread while the workers run, for invariants that must hold in *every*
//!   intermediate state (e.g. "the balance sum never changes"), not just at
//!   the end;
//! * a **watchdog** — the coordinating thread waits on a [`Condvar`] with a
//!   timeout instead of joining, so a deadlocked worker fails the test with a
//!   diagnostic naming the stuck threads rather than hanging the suite.
//!
//! Worker and observer bodies report failure by returning `Err(String)` — the
//! `prop_assert!` family works unchanged — or by panicking; both are caught,
//! attributed to the thread and iteration, and reported with replay
//! instructions.
//!
//! ```
//! use dbgw_testkit::stress::{self, StressConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let counter = Arc::new(AtomicU64::new(0));
//! let mut config = StressConfig::named("doc_counter");
//! config.threads = 4;
//! config.iters = 25;
//! let c = Arc::clone(&counter);
//! stress::run(&config, move |w| {
//!     c.fetch_add(w.rng.gen_range(1u64..=1), Ordering::Relaxed);
//!     Ok(())
//! });
//! assert_eq!(counter.load(Ordering::Relaxed), 100);
//! ```

use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs for one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Run name, included in failure reports.
    pub name: &'static str,
    /// Number of worker threads.
    pub threads: usize,
    /// Iterations per worker thread (`TESTKIT_STRESS_ITERS` overrides).
    pub iters: u64,
    /// Master seed (`TESTKIT_SEED` overrides; printed on failure so a run's
    /// workloads can be replayed exactly).
    pub seed: u64,
    /// Watchdog limit: if the run has not completed within this budget the
    /// harness panics naming the stuck threads instead of hanging.
    pub timeout: Duration,
    /// Crash points to arm (via [`crate::crash::arm`]) just before the
    /// workers' barrier drops, as `(point, after_hits)` pairs. Every armed
    /// point is disarmed when the run finishes, pass or fail, so one test's
    /// injection can never leak into the next. Empty by default.
    pub crash_points: Vec<(&'static str, u64)>,
}

impl StressConfig {
    /// The default configuration for a named run: 4 threads × 64 iterations,
    /// seed derived from the name (stable across runs and platforms), 60 s
    /// watchdog.
    pub fn named(name: &'static str) -> StressConfig {
        let seed = match std::env::var("TESTKIT_SEED") {
            Ok(s) => s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("TESTKIT_SEED is not a u64: {s:?}")),
            Err(_) => crate::runner::fnv1a(name.as_bytes()),
        };
        let iters = std::env::var("TESTKIT_STRESS_ITERS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(64);
        StressConfig {
            name,
            threads: 4,
            iters,
            seed,
            timeout: Duration::from_secs(60),
            crash_points: Vec::new(),
        }
    }
}

/// The per-thread context handed to the worker closure on every iteration.
#[derive(Debug)]
pub struct Worker {
    /// This thread's index in `0..threads`.
    pub thread: usize,
    /// Total worker thread count.
    pub threads: usize,
    /// Current iteration in `0..iters`.
    pub iter: u64,
    /// This thread's private deterministic stream (a pure function of the
    /// run seed and `thread`).
    pub rng: Rng,
}

/// One attributed failure from a worker or the observer.
#[derive(Debug)]
struct Failure {
    who: String,
    message: String,
}

/// Progress shared between workers, observer and the watchdog.
struct Progress {
    finished: Vec<bool>,
    observer_done: bool,
    failures: Vec<Failure>,
}

/// Run `worker` on `config.threads` barrier-started threads, `config.iters`
/// times each. Panics with a seed-replayable report if any iteration fails
/// (an `Err` return or a panic), or if the watchdog expires.
pub fn run(
    config: &StressConfig,
    worker: impl Fn(&mut Worker) -> Result<(), String> + Send + Sync + 'static,
) {
    exec(config, Arc::new(worker), None)
}

/// Like [`run`], with an `observer` re-checked continuously on its own thread
/// for as long as the workers are running (and once more after they finish).
/// Use it for invariants every intermediate state must satisfy.
pub fn run_observed(
    config: &StressConfig,
    worker: impl Fn(&mut Worker) -> Result<(), String> + Send + Sync + 'static,
    observer: impl Fn() -> Result<(), String> + Send + Sync + 'static,
) {
    exec(config, Arc::new(worker), Some(Arc::new(observer)))
}

type WorkerFn = dyn Fn(&mut Worker) -> Result<(), String> + Send + Sync;
type ObserverFn = dyn Fn() -> Result<(), String> + Send + Sync;

fn exec(config: &StressConfig, worker: Arc<WorkerFn>, observer: Option<Arc<ObserverFn>>) {
    assert!(config.threads > 0, "stress run needs at least one thread");
    // Arm the run's crash points now and guarantee teardown on every exit
    // path (including the watchdog/failure panics below).
    struct CrashGuard(bool);
    impl Drop for CrashGuard {
        fn drop(&mut self) {
            if self.0 {
                crate::crash::disarm_all();
            }
        }
    }
    let _crash_guard = CrashGuard(!config.crash_points.is_empty());
    for (point, after_hits) in &config.crash_points {
        crate::crash::arm(point, *after_hits);
    }
    let participants = config.threads + observer.is_some() as usize;
    let barrier = Arc::new(Barrier::new(participants));
    let progress = Arc::new((
        Mutex::new(Progress {
            finished: vec![false; config.threads],
            observer_done: observer.is_none(),
            failures: Vec::new(),
        }),
        Condvar::new(),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    // Fork one deterministic seed per thread from the master seed.
    let mut master = Rng::new(config.seed);
    let seeds: Vec<u64> = (0..config.threads).map(|_| master.next_u64()).collect();

    for (thread, seed) in seeds.into_iter().enumerate() {
        let worker = Arc::clone(&worker);
        let barrier = Arc::clone(&barrier);
        let progress = Arc::clone(&progress);
        let threads = config.threads;
        let iters = config.iters;
        // Detached on purpose: the watchdog must be able to give up on a
        // deadlocked thread, so nobody joins these handles.
        std::thread::spawn(move || {
            let mut w = Worker {
                thread,
                threads,
                iter: 0,
                rng: Rng::new(seed),
            };
            barrier.wait();
            let mut failure: Option<Failure> = None;
            for iter in 0..iters {
                w.iter = iter;
                let outcome = catch_unwind(AssertUnwindSafe(|| (worker)(&mut w)));
                let message = match outcome {
                    Ok(Ok(())) => continue,
                    Ok(Err(message)) => message,
                    Err(payload) => crate::runner::panic_message(payload.as_ref()),
                };
                failure = Some(Failure {
                    who: format!("worker {thread} iteration {iter}"),
                    message,
                });
                break;
            }
            // Release this thread's clone of the closure (and everything it
            // captures) *before* reporting finished: once `run` returns, the
            // harness provably holds no references to the caller's state, so
            // callers may `Arc::try_unwrap` shared fixtures.
            drop(worker);
            let (lock, cvar) = &*progress;
            let mut p = lock.lock().unwrap();
            p.finished[thread] = true;
            p.failures.extend(failure);
            cvar.notify_all();
        });
    }

    if let Some(observer) = observer {
        let barrier = Arc::clone(&barrier);
        let progress = Arc::clone(&progress);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            barrier.wait();
            let mut failure: Option<Failure> = None;
            let mut pass = 0u64;
            loop {
                // One final pass after the stop flag, so the observer always
                // sees the workers' combined end state at least once.
                let last = stop.load(Ordering::Acquire);
                let outcome = catch_unwind(AssertUnwindSafe(&*observer));
                let message = match outcome {
                    Ok(Ok(())) => {
                        pass += 1;
                        if last {
                            break;
                        }
                        continue;
                    }
                    Ok(Err(message)) => message,
                    Err(payload) => crate::runner::panic_message(payload.as_ref()),
                };
                failure = Some(Failure {
                    who: format!("observer pass {pass}"),
                    message,
                });
                break;
            }
            drop(observer); // same contract as the workers: release before reporting
            let (lock, cvar) = &*progress;
            let mut p = lock.lock().unwrap();
            p.observer_done = true;
            p.failures.extend(failure);
            cvar.notify_all();
        });
    }

    // Watchdog: wait (with a deadline, never a sleep) for every worker, then
    // release the observer and wait for its final pass.
    let deadline = Instant::now() + config.timeout;
    let (lock, cvar) = &*progress;
    let mut p = lock.lock().unwrap();
    loop {
        if p.finished.iter().all(|f| *f) {
            break;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            let stuck: Vec<String> = p
                .finished
                .iter()
                .enumerate()
                .filter(|(_, f)| !**f)
                .map(|(t, _)| t.to_string())
                .collect();
            panic!(
                "[{name}] stress run timed out after {timeout:?} (seed {seed}; rerun \
                 with TESTKIT_SEED={seed}): worker(s) {stuck} still running — \
                 likely deadlock",
                name = config.name,
                timeout = config.timeout,
                seed = config.seed,
                stuck = stuck.join(", "),
            );
        }
        p = cvar.wait_timeout(p, left).unwrap().0;
    }
    stop.store(true, Ordering::Release);
    while !p.observer_done {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            panic!(
                "[{name}] stress run timed out after {timeout:?} (seed {seed}; rerun \
                 with TESTKIT_SEED={seed}): observer still running",
                name = config.name,
                timeout = config.timeout,
                seed = config.seed,
            );
        }
        p = cvar.wait_timeout(p, left).unwrap().0;
    }
    if !p.failures.is_empty() {
        let mut report = String::new();
        for f in &p.failures {
            report.push_str(&format!("\n  {}: {}", f.who, f.message));
        }
        panic!(
            "[{name}] stress run failed ({n} failure(s); seed {seed}; rerun with \
             TESTKIT_SEED={seed}):{report}",
            name = config.name,
            n = p.failures.len(),
            seed = config.seed,
        );
    }
}

/// Define stress tests: each
/// `fn name(worker, shared = EXPR) { body }` becomes a `#[test]` that
/// evaluates `EXPR` once, wraps it in an `Arc` visible to the body as
/// `shared`, and runs the body on every thread/iteration with `worker` bound
/// to the per-thread [`stress::Worker`](crate::stress::Worker). The body
/// fails by `Err(String)` (the `prop_assert!` family) or panic. An optional
/// leading `config(field = value, ...);` applies [`StressConfig`] overrides
/// to every test in the block.
#[macro_export]
macro_rules! stress {
    (config($($cfg_field:ident = $cfg_value:expr),* $(,)?); $($rest:tt)*) => {
        $crate::__stress_impl!([$($cfg_field = $cfg_value),*] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__stress_impl!([] $($rest)*);
    };
}

/// Implementation detail of [`stress!`]: peels one test per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __stress_impl {
    ([$($cfg:tt)*]) => {};
    ([$($cfg:tt)*]
     $(#[$meta:meta])*
     fn $name:ident($worker:ident, $shared:ident = $setup:expr) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut config = $crate::stress::StressConfig::named(stringify!($name));
            $crate::__props_cfg!(config; $($cfg)*);
            let $shared = ::std::sync::Arc::new($setup);
            let __shared = ::std::sync::Arc::clone(&$shared);
            $crate::stress::run(&config, move |$worker| {
                #[allow(unused_variables)]
                let $shared = &*__shared;
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__stress_impl!([$($cfg)*] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn small(name: &'static str, threads: usize, iters: u64) -> StressConfig {
        let mut c = StressConfig::named(name);
        c.threads = threads;
        c.iters = iters;
        c
    }

    #[test]
    fn every_thread_runs_every_iteration() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        run(&small("all_iters", 8, 32), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 32);
    }

    /// The per-thread streams are a pure function of (seed, thread): two runs
    /// with the same config draw identical sequences, thread by thread.
    #[test]
    fn workloads_replay_deterministically_by_seed() {
        let draws_of = |cfg: &StressConfig| {
            let log: Arc<Mutex<Vec<Vec<u64>>>> =
                Arc::new(Mutex::new(vec![Vec::new(); cfg.threads]));
            let l = Arc::clone(&log);
            run(cfg, move |w| {
                let v = w.rng.next_u64();
                l.lock().unwrap()[w.thread].push(v);
                Ok(())
            });
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let cfg = small("replay", 4, 16);
        assert_eq!(draws_of(&cfg), draws_of(&cfg));
        // A different seed yields different workloads.
        let mut other = cfg.clone();
        other.seed ^= 0xDEAD_BEEF;
        assert_ne!(draws_of(&cfg), draws_of(&other));
        // Distinct threads draw distinct streams.
        let per_thread = draws_of(&cfg);
        assert_ne!(per_thread[0], per_thread[1]);
    }

    #[test]
    fn err_failure_is_attributed_and_replayable() {
        let cfg = small("err_report", 3, 10);
        let seed = cfg.seed;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(&cfg, |w| {
                if w.thread == 1 && w.iter == 4 {
                    Err("boom".to_owned())
                } else {
                    Ok(())
                }
            });
        }));
        let msg = crate::runner::panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("err_report"), "{msg}");
        assert!(msg.contains("worker 1 iteration 4: boom"), "{msg}");
        assert!(msg.contains(&format!("TESTKIT_SEED={seed}")), "{msg}");
    }

    #[test]
    fn panicking_worker_is_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(&small("panic_report", 2, 5), |w| {
                assert!(w.iter < 3, "iteration {} exploded", w.iter);
                Ok(())
            });
        }));
        let msg = crate::runner::panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("panic: iteration 3 exploded"), "{msg}");
    }

    #[test]
    fn observer_sees_final_state_and_failures_propagate() {
        // Success path: the observer must run at least once after all
        // workers finish, so it always checks the combined end state.
        let counter = Arc::new(AtomicU64::new(0));
        let seen_final = Arc::new(AtomicBool::new(false));
        let (c, s) = (Arc::clone(&counter), Arc::clone(&seen_final));
        run_observed(
            &small("observer_ok", 4, 16),
            move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            move || {
                let n = counter.load(Ordering::Relaxed);
                if n == 4 * 16 {
                    s.store(true, Ordering::Relaxed);
                }
                if n > 4 * 16 {
                    return Err(format!("counter overshot: {n}"));
                }
                Ok(())
            },
        );
        assert!(seen_final.load(Ordering::Relaxed));
        // Failure path: an observer rejection fails the run.
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_observed(
                &small("observer_err", 2, 4),
                |_| Ok(()),
                || Err("invariant broken".to_owned()),
            );
        }));
        let msg = crate::runner::panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("observer pass 0: invariant broken"), "{msg}");
    }

    #[test]
    fn crash_points_arm_for_the_run_and_disarm_after() {
        let mut cfg = small("crash_hook", 1, 3);
        cfg.crash_points = vec![("crash.test.stress_hook", 2)];
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        run(&cfg, move |_| {
            if crate::crash::hit("crash.test.stress_hook") {
                f.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        });
        // Fired exactly once (on the configured 2nd hit) and did not survive
        // the run.
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert!(!crate::crash::armed("crash.test.stress_hook"));
    }

    #[test]
    fn watchdog_names_the_stuck_thread() {
        let mut cfg = small("deadlock", 2, 1);
        cfg.timeout = Duration::from_millis(200);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(&cfg, |w| {
                if w.thread == 1 {
                    // Block forever (a condvar that is never notified and
                    // whose predicate never releases).
                    let gate = (Mutex::new(()), Condvar::new());
                    let guard = gate.0.lock().unwrap();
                    let _unreachable = gate.1.wait_while(guard, |_| true);
                }
                Ok(())
            });
        }));
        let msg = crate::runner::panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("timed out"), "{msg}");
        assert!(msg.contains("worker(s) 1"), "{msg}");
        assert!(msg.contains("TESTKIT_SEED="), "{msg}");
    }

    // The declarative form: shared state built once, prop_assert! in bodies.
    crate::stress! {
        config(threads = 4, iters = 16);

        /// Relaxed increments still sum exactly.
        fn stress_macro_counts(w, shared = AtomicU64::new(0)) {
            let step = w.rng.gen_range(1u64..=3);
            shared.fetch_add(step, Ordering::Relaxed);
            crate::prop_assert!(shared.load(Ordering::Relaxed) > 0);
        }
    }
}
