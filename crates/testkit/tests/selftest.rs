//! Integration self-tests for the testkit, through its public API only.
//!
//! The rest of the workspace trusts this crate to (a) be deterministic given
//! a seed, (b) shrink failures to genuinely minimal counterexamples, and
//! (c) produce roughly uniform randomness. These tests pin all three.

use dbgw_testkit::gen::*;
use dbgw_testkit::{check, prop_assert, props, Config, Gen, Rng};
use std::panic::catch_unwind;

fn failure_text(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = catch_unwind(f).expect_err("property should fail");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        panic!("non-string panic payload");
    }
}

// ---------------------------------------------------------------- determinism

#[test]
fn same_seed_same_sequence() {
    let mut a = Rng::new(0xD1CE);
    let mut b = Rng::new(0xD1CE);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn same_seed_same_generated_values() {
    let g = vec_of((ints(-500..500), printable(0..=12)), 0..=10);
    let mut a = Rng::new(7);
    let mut b = Rng::new(7);
    for _ in 0..50 {
        assert_eq!(g.generate(&mut a), g.generate(&mut b));
    }
}

#[test]
fn check_reports_are_reproducible() {
    // Two identical failing runs must report the identical counterexample.
    let run = || {
        failure_text(|| {
            let config = Config {
                cases: 100,
                seed: 99,
                max_shrink_steps: 4096,
                name: "repro",
            };
            check(&config, &vec_of(ints(0..1000), 0..=30), |v| {
                if v.iter().any(|x| *x >= 700) {
                    Err("has a big element".into())
                } else {
                    Ok(())
                }
            });
        })
    };
    assert_eq!(run(), run());
}

// ------------------------------------------------------------------ shrinking

#[test]
fn shrinking_converges_to_boundary_int() {
    // Failing iff v >= 256: the minimal counterexample is exactly 256.
    let msg = failure_text(|| {
        let config = Config {
            cases: 500,
            seed: 1,
            max_shrink_steps: 10_000,
            name: "boundary",
        };
        check(&config, &ints(0..10_000), |v| {
            if *v >= 256 {
                Err("too big".into())
            } else {
                Ok(())
            }
        });
    });
    assert!(msg.contains(": 256"), "expected minimal 256 in: {msg}");
}

#[test]
fn shrinking_converges_to_minimal_vector() {
    // Failing iff the vector contains an element >= 50: minimal failing input
    // is the one-element vector [50].
    let msg = failure_text(|| {
        let config = Config {
            cases: 300,
            seed: 2,
            max_shrink_steps: 20_000,
            name: "minvec",
        };
        check(&config, &vec_of(ints(0..100), 0..=20), |v| {
            if v.iter().any(|x| *x >= 50) {
                Err("big element".into())
            } else {
                Ok(())
            }
        });
    });
    assert!(msg.contains("[50]"), "expected [50] in: {msg}");
}

#[test]
fn shrinking_converges_to_empty_string() {
    // Any non-empty string fails: minimal is one character (len can't reach 0
    // if the property only rejects non-empty input of a 1..=N generator, so
    // use 0..=N and demand the empty string shows it passes).
    let msg = failure_text(|| {
        let config = Config {
            cases: 100,
            seed: 3,
            max_shrink_steps: 10_000,
            name: "minstr",
        };
        check(&config, &charset("ab", 1..=20), |s| {
            if s.is_empty() {
                Ok(())
            } else {
                Err("non-empty".into())
            }
        });
    });
    // Minimal counterexample is a single 'a' (first charset character).
    assert!(msg.contains("\"a\""), "expected \"a\" in: {msg}");
}

// ----------------------------------------------------------------- uniformity

#[test]
fn prng_bucket_distribution_is_roughly_uniform() {
    // Chi-squared-flavoured bound: 16 buckets, 64k draws → expected 4096 per
    // bucket, sd ≈ 62. A ±5 sd window (±310) is astronomically unlikely to
    // trip for a healthy generator and catches gross bias.
    let mut rng = Rng::new(0xBEEF);
    let mut counts = [0u32; 16];
    for _ in 0..65_536 {
        counts[rng.gen_range(0usize..16)] += 1;
    }
    for (bucket, &c) in counts.iter().enumerate() {
        assert!(
            (3786..=4406).contains(&c),
            "bucket {bucket} count {c} outside ±5sd of 4096: {counts:?}"
        );
    }
}

#[test]
fn gen_bool_tracks_probability() {
    let mut rng = Rng::new(42);
    let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
    assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
}

#[test]
fn gen_f64_stays_in_unit_interval() {
    let mut rng = Rng::new(5);
    for _ in 0..10_000 {
        let x = rng.gen_f64();
        assert!((0.0..1.0).contains(&x), "{x}");
    }
}

// ------------------------------------------------------------ the props macro

props! {
    config(cases = 32);

    /// The macro path works end to end against the public API.
    fn props_macro_smoke(v in vec_of(ints(0..10), 0..=8), s in ascii(0..=8)) {
        prop_assert!(v.len() <= 8);
        prop_assert!(s.len() <= 8);
        prop_assert!(s.is_ascii());
    }
}

// ---------------------------------------------------------- the stress harness

#[test]
fn stress_failures_replay_by_seed() {
    // A workload-dependent failure (not a fixed thread/iteration) must
    // reproduce identically across runs: same seed, same per-thread streams,
    // same first failing draw.
    let run = || {
        failure_text(|| {
            let mut config = dbgw_testkit::StressConfig::named("selftest_replay");
            config.threads = 3;
            config.iters = 64;
            dbgw_testkit::stress::run(&config, |w| {
                let draw = w.rng.gen_range(0u64..100);
                if draw >= 97 {
                    Err(format!("drew {draw}"))
                } else {
                    Ok(())
                }
            });
        })
    };
    let (a, b) = (run(), run());
    // Thread scheduling may interleave *which* failures land first, but each
    // thread's workload is fixed, so the reports carry the same seed and at
    // least one identical attributed failure line.
    assert!(a.contains("TESTKIT_SEED="), "{a}");
    let seed_of = |s: &str| {
        s.split("TESTKIT_SEED=")
            .nth(1)
            .and_then(|t| t.split(')').next().map(str::to_owned))
    };
    assert_eq!(seed_of(&a), seed_of(&b));
    assert!(a.contains("drew 9"), "{a}");
}

dbgw_testkit::stress! {
    config(threads = 4, iters = 32);

    /// The stress macro works end to end from an external crate: shared
    /// state built once, per-thread deterministic rng, prop_assert! bodies.
    fn stress_macro_smoke(w, shared = std::sync::atomic::AtomicU64::new(0)) {
        let step = w.rng.gen_range(1u64..=4);
        shared.fetch_add(step, std::sync::atomic::Ordering::Relaxed);
        prop_assert!(w.thread < w.threads);
    }
}
