//! **dbgw-workload** — deterministic dataset and workload generators for the
//! benchmark harness.
//!
//! Two application domains from the paper drive every experiment:
//!
//! * [`urldb`] — the URL directory of the running example (Figures 2/3/7/8
//!   and Appendix A): a table `urldb(url, title, description)` plus search
//!   strings with a controlled hit fraction.
//! * [`shop`] — the customer/product order-entry domain of §3.1.3
//!   (`custid`, `product_name LIKE 'bikes%'`).
//!
//! All generation is seeded ([`seed`]): the same parameters always produce
//! the same data, so benchmark runs are comparable.

#![warn(missing_docs)]

pub mod seed;
pub mod shop;
pub mod text;
pub mod urldb;
pub mod zipf;

pub use seed::rng;
pub use urldb::UrlDirectory;
pub use zipf::Zipf;
