//! Seeded RNG construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..8).map(|_| rng(42).gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = rng(1);
        let mut b = rng(2);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }
}
