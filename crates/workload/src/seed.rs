//! Seeded RNG construction.

pub use dbgw_testkit::rng::Rng;

/// A deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..8).map(|_| rng(42).next_u32()).collect();
        let b: Vec<u32> = (0..8).map(|_| rng(42).next_u32()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = rng(1);
        let mut b = rng(2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }
}
