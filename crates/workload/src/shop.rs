//! The order-entry dataset of §3.1.3 (`custid`, `product_name`).

use crate::text;
use minisql::{Database, SqlResult, Value};

/// Product names; includes the paper's `bikes`.
const PRODUCTS: &[&str] = &[
    "bikes",
    "bike bells",
    "bike pumps",
    "helmets",
    "skates",
    "skate wheels",
    "gloves",
    "jerseys",
    "water bottles",
    "locks",
    "lights",
    "trailers",
];

/// A generated shop with customers and orders.
#[derive(Debug, Clone)]
pub struct Shop {
    /// `(custid, name)` — custid starts at 10100 like the paper's example.
    pub customers: Vec<(i64, String)>,
    /// `(orderid, custid, product_name, quantity, price)`.
    pub orders: Vec<(i64, i64, String, i64, f64)>,
}

impl Shop {
    /// Generate `customers` customers with ~`orders_per_customer` orders each.
    pub fn generate(customers: usize, orders_per_customer: usize, seed: u64) -> Shop {
        let mut rng = crate::seed::rng(seed);
        let mut cust = Vec::with_capacity(customers);
        let mut orders = Vec::new();
        let mut orderid = 1i64;
        for i in 0..customers {
            let custid = 10100 + (i as i64) * 100;
            cust.push((custid, text::title(&mut rng, 2)));
            let n = rng.gen_range(0..=orders_per_customer * 2);
            for _ in 0..n {
                let product = PRODUCTS[rng.gen_range(0..PRODUCTS.len())];
                orders.push((
                    orderid,
                    custid,
                    product.to_owned(),
                    rng.gen_range(1i64..=5),
                    (rng.gen_range(200i64..20000) as f64) / 100.0,
                ));
                orderid += 1;
            }
        }
        Shop {
            customers: cust,
            orders,
        }
    }

    /// Load into a database: `customers(custid, name)` and
    /// `orders(orderid, custid, product_name, quantity, price)`, indexed the
    /// way the §3.1.3 query wants (`custid`, and `product_name` for the
    /// `LIKE 'bikes%'` prefix probe).
    pub fn load(&self, db: &Database) -> SqlResult<()> {
        db.run_script(
            "CREATE TABLE customers (custid INTEGER PRIMARY KEY, name VARCHAR(60));
             CREATE TABLE orders (orderid INTEGER PRIMARY KEY,
                                  custid INTEGER NOT NULL,
                                  product_name VARCHAR(60),
                                  quantity INTEGER,
                                  price DOUBLE);
             CREATE INDEX orders_cust ON orders (custid);
             CREATE INDEX orders_product ON orders (product_name);",
        )?;
        let mut conn = db.connect();
        conn.execute("BEGIN")?;
        for (custid, name) in &self.customers {
            conn.execute_with_params(
                "INSERT INTO customers VALUES (?, ?)",
                &[Value::Int(*custid), Value::Text(name.clone())],
            )?;
        }
        for (orderid, custid, product, qty, price) in &self.orders {
            conn.execute_with_params(
                "INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::Int(*orderid),
                    Value::Int(*custid),
                    Value::Text(product.clone()),
                    Value::Int(*qty),
                    Value::Double(*price),
                ],
            )?;
        }
        conn.execute("COMMIT")?;
        Ok(())
    }

    /// A fresh, loaded database.
    pub fn into_database(&self) -> Database {
        let db = Database::new();
        self.load(&db).expect("loading a generated shop");
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minisql::ExecResult;

    #[test]
    fn deterministic_and_loadable() {
        let a = Shop::generate(10, 3, 5);
        let b = Shop::generate(10, 3, 5);
        assert_eq!(a.orders, b.orders);
        let db = a.into_database();
        assert_eq!(db.table_len("customers").unwrap(), 10);
        assert_eq!(db.table_len("orders").unwrap(), a.orders.len());
    }

    #[test]
    fn paper_query_shape_works() {
        let shop = Shop::generate(20, 5, 6);
        let db = shop.into_database();
        let mut conn = db.connect();
        let r = conn
            .execute(
                "SELECT product_name FROM orders \
                 WHERE custid = 10100 AND product_name LIKE 'bike%'",
            )
            .unwrap();
        let ExecResult::Rows(rs) = r else { panic!() };
        let expected = shop
            .orders
            .iter()
            .filter(|(_, c, p, _, _)| *c == 10100 && p.starts_with("bike"))
            .count();
        assert_eq!(rs.rows.len(), expected);
    }

    #[test]
    fn join_customers_orders() {
        let shop = Shop::generate(5, 2, 7);
        let db = shop.into_database();
        let mut conn = db.connect();
        let r = conn
            .execute(
                "SELECT c.name, COUNT(*) FROM customers c \
                 JOIN orders o ON c.custid = o.custid GROUP BY c.name",
            )
            .unwrap();
        let ExecResult::Rows(rs) = r else { panic!() };
        assert!(rs.rows.len() <= 5);
    }
}
