//! Synthetic text generation from a fixed 1996-flavoured vocabulary.

use dbgw_testkit::rng::Rng;

/// Word pool used for titles and descriptions. Deliberately includes the
/// substrings the paper's examples search for (`ib`, `bikes`).
pub const WORDS: &[&str] = &[
    "ibm",
    "library",
    "internet",
    "gateway",
    "database",
    "server",
    "mosaic",
    "netscape",
    "research",
    "webcrawler",
    "archive",
    "bikes",
    "helmets",
    "skates",
    "catalog",
    "order",
    "product",
    "support",
    "software",
    "download",
    "university",
    "observatory",
    "systems",
    "pages",
    "index",
    "home",
    "public",
    "information",
    "network",
    "technology",
    "science",
    "laboratory",
    "engineering",
    "press",
    "news",
    "weather",
    "travel",
    "music",
    "games",
    "fibre",
    "exhibit",
];

/// Top-level domains of the era.
pub const TLDS: &[&str] = &["com", "edu", "org", "gov", "net", "mil"];

/// A random word from the pool.
pub fn word(rng: &mut Rng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// A capitalized title of `n` words.
pub fn title(rng: &mut Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let w = word(rng);
        let mut chars = w.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

/// A sentence of `n` lowercase words ending with a period.
pub fn sentence(rng: &mut Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(word(rng));
    }
    out.push('.');
    out
}

/// A plausible 1996 URL, unique per `serial`.
pub fn url(rng: &mut Rng, serial: usize) -> String {
    let host = word(rng);
    let tld = TLDS[rng.gen_range(0..TLDS.len())];
    match rng.gen_range(0..3) {
        0 => format!("http://www.{host}{serial}.{tld}"),
        1 => format!("http://www.{host}{serial}.{tld}/{}", word(rng)),
        _ => format!("http://{host}{serial}.{tld}/~{}/index.html", word(rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::rng;

    #[test]
    fn title_capitalized_with_n_words() {
        let mut r = rng(7);
        let t = title(&mut r, 3);
        assert_eq!(t.split(' ').count(), 3);
        assert!(t.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn sentence_ends_with_period() {
        let mut r = rng(7);
        assert!(sentence(&mut r, 5).ends_with('.'));
    }

    #[test]
    fn urls_unique_by_serial() {
        let mut r = rng(7);
        let a = url(&mut r, 1);
        let b = url(&mut r, 2);
        assert_ne!(a, b);
        assert!(a.starts_with("http://"));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = title(&mut rng(3), 4);
        let b = title(&mut rng(3), 4);
        assert_eq!(a, b);
    }
}
