//! The URL-directory dataset of the paper's running example.
//!
//! Appendix A queries a table `urldb(url, title, description)`. This module
//! generates one of any size, loads it into a [`minisql::Database`], and
//! manufactures search strings with a known hit fraction so benchmarks can
//! sweep selectivity.

use crate::text;
use minisql::{Database, Value};

/// A generated URL directory.
#[derive(Debug, Clone)]
pub struct UrlDirectory {
    /// `(url, title, description)` rows; descriptions may be `None` (NULL).
    pub rows: Vec<(String, String, Option<String>)>,
}

impl UrlDirectory {
    /// Generate `n` rows with the given seed.
    pub fn generate(n: usize, seed: u64) -> UrlDirectory {
        let mut rng = crate::seed::rng(seed);
        let mut rows = Vec::with_capacity(n);
        for serial in 0..n {
            let url = text::url(&mut rng, serial);
            let title_words = rng.gen_range(1usize..=4);
            let title = text::title(&mut rng, title_words);
            let description = if rng.gen_bool(0.85) {
                let sentence_words = rng.gen_range(3usize..=10);
                Some(text::sentence(&mut rng, sentence_words))
            } else {
                None
            };
            rows.push((url, title, description));
        }
        UrlDirectory { rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Create the `urldb` table in `db` and load every row, with an index on
    /// `title` (the column the example app sorts and searches by).
    pub fn load(&self, db: &Database) -> minisql::SqlResult<()> {
        db.run_script(
            "CREATE TABLE urldb (url VARCHAR(255) NOT NULL,
                                 title VARCHAR(120),
                                 description VARCHAR(400));
             CREATE INDEX urldb_title ON urldb (title);",
        )?;
        let mut conn = db.connect();
        conn.execute("BEGIN")?;
        for (url, title, description) in &self.rows {
            conn.execute_with_params(
                "INSERT INTO urldb VALUES (?, ?, ?)",
                &[
                    Value::Text(url.clone()),
                    Value::Text(title.clone()),
                    description
                        .as_ref()
                        .map(|d| Value::Text(d.clone()))
                        .unwrap_or(Value::Null),
                ],
            )?;
        }
        conn.execute("COMMIT")?;
        Ok(())
    }

    /// A fresh database pre-loaded with this directory.
    pub fn into_database(&self) -> Database {
        let db = Database::new();
        self.load(&db).expect("loading a generated directory");
        db
    }

    /// A search string whose `title LIKE '%s%'` hit fraction is roughly
    /// `fraction` of the table: the empty string matches everything, an
    /// existing title substring matches some, a nonsense token matches none.
    pub fn search_string(&self, fraction: f64, seed: u64) -> String {
        if fraction >= 1.0 || self.rows.is_empty() {
            return String::new();
        }
        if fraction <= 0.0 {
            return "zzqqxx".to_owned();
        }
        // Pick substrings from real titles until one lands near the target.
        let mut rng = crate::seed::rng(seed);
        let mut best = (f64::INFINITY, String::new());
        for _ in 0..64 {
            let (_, title, _) = &self.rows[rng.gen_range(0..self.rows.len())];
            let words: Vec<&str> = title.split(' ').collect();
            let candidate = words[rng.gen_range(0..words.len())].to_lowercase();
            let probe: String = candidate.chars().take(3).collect();
            if probe.is_empty() {
                continue;
            }
            let hits = self
                .rows
                .iter()
                .filter(|(_, t, _)| t.to_lowercase().contains(&probe))
                .count();
            let got = hits as f64 / self.rows.len() as f64;
            let err = (got - fraction).abs();
            if err < best.0 {
                best = (err, probe);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = UrlDirectory::generate(50, 9);
        let b = UrlDirectory::generate(50, 9);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn loads_into_database() {
        let dir = UrlDirectory::generate(100, 1);
        let db = dir.into_database();
        assert_eq!(db.table_len("urldb").unwrap(), 100);
        let mut conn = db.connect();
        let r = conn
            .execute("SELECT COUNT(*) FROM urldb WHERE description IS NULL")
            .unwrap();
        let minisql::ExecResult::Rows(rs) = r else {
            panic!()
        };
        // ~15% of rows have NULL descriptions.
        let nulls = match rs.rows[0][0] {
            Value::Int(n) => n,
            _ => panic!(),
        };
        assert!(nulls > 0 && nulls < 50, "nulls = {nulls}");
    }

    #[test]
    fn search_string_fractions() {
        let dir = UrlDirectory::generate(500, 2);
        assert_eq!(dir.search_string(1.0, 0), "");
        let none = dir.search_string(0.0, 0);
        assert!(dir
            .rows
            .iter()
            .all(|(_, t, _)| !t.to_lowercase().contains(&none)));
        let mid = dir.search_string(0.2, 3);
        let hits = dir
            .rows
            .iter()
            .filter(|(_, t, _)| t.to_lowercase().contains(&mid))
            .count();
        assert!(hits > 0, "mid probe {mid:?} should hit something");
    }

    #[test]
    fn queryable_like_appendix_a() {
        let dir = UrlDirectory::generate(200, 4);
        let db = dir.into_database();
        let mut conn = db.connect();
        let r = conn
            .execute("SELECT url, title FROM urldb WHERE urldb.title LIKE '%ib%' ORDER BY title")
            .unwrap();
        let minisql::ExecResult::Rows(rs) = r else {
            panic!()
        };
        // The vocabulary guarantees 'ib' appears (ibm, library, fibre).
        assert!(!rs.rows.is_empty());
    }
}
