//! Zipf-distributed sampling for skewed access patterns.
//!
//! Web directory lookups are famously skewed — a few popular pages draw most
//! traffic. The concurrency and end-to-end benches use this sampler to pick
//! search keys.

use dbgw_testkit::rng::Rng;

/// A Zipf(α) distribution over ranks `0..n` via inverse-CDF table lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` items with exponent `alpha` (α = 0 is uniform; α ≈ 1 is
    /// classic Zipf). Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating rounding at the top end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Sample a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (constructor asserts), but provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::rng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_alpha_one() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(2);
        let mut head = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // Top 10 of 100 ranks draw well over half the traffic at α=1.
        assert!(head > N / 2, "head draws {head}/{N}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut r = rng(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 3);
        }
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
