//! Cache smoke: drive two identical GETs through a live server and verify
//! the whole dbgw-cache stack end to end — the second request is served from
//! the shared SQL result cache, the page carries a deterministic `ETag`, and
//! replaying that validator in `If-None-Match` yields a bodyless `304`.
//!
//! Run: `cargo run --release --example cache_smoke`. Prints
//! `cache_smoke PASS` and exits 0 on success; panics (nonzero exit) on any
//! violated guarantee.

use dbgw_cache::CacheConfig;
use dbgw_cgi::{Gateway, HttpClient, HttpServer, ServerConfig};
use std::sync::Arc;

fn main() {
    // Explicit cache configuration so the smoke is deterministic no matter
    // what DBGW_CACHE* the environment carries.
    let db = minisql::Database::with_cache_config(
        &CacheConfig::default(),
        Arc::new(dbgw_obs::StdClock::new()),
    );
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');
         INSERT INTO urldb VALUES ('http://www.almaden.ibm.com', 'Almaden');",
    )
    .unwrap();
    let stats_db = db.clone();
    let gw = Gateway::new(db).with_http_cache(true);
    gw.add_macro(
        "urls.d2w",
        "%SQL{ SELECT url, title FROM urldb ORDER BY url %}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let server = HttpServer::start_with_config(gw, 0, ServerConfig::default()).unwrap();
    let client = HttpClient::new(server.addr());

    // First GET is a cold miss; the identical second GET must hit the shared
    // result cache.
    let first = client.get("/cgi-bin/db2www/urls.d2w/report").unwrap();
    assert_eq!(first.status, 200);
    assert!(first.body.contains("Almaden"), "{}", first.body);
    let after_first = stats_db.cache_stats().expect("cache enabled");
    assert_eq!(after_first.results.hits, 0, "{after_first:?}");
    assert!(after_first.results.misses >= 1, "{after_first:?}");

    let second = client.get("/cgi-bin/db2www/urls.d2w/report").unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(
        second.body, first.body,
        "cached page must be byte-identical"
    );
    let after_second = stats_db.cache_stats().expect("cache enabled");
    assert!(after_second.results.hits >= 1, "{after_second:?}");

    // The SELECT-only report is cacheable, so it carries a validator …
    let etag = first
        .header("ETag")
        .expect("cacheable report must carry an ETag")
        .to_owned();

    // … and replaying it as If-None-Match earns a bodyless 304.
    let raw = client
        .raw(&format!(
            "GET /cgi-bin/db2www/urls.d2w/report HTTP/1.0\r\nIf-None-Match: {etag}\r\n\r\n"
        ))
        .unwrap();
    assert!(raw.starts_with("HTTP/1.1 304"), "{raw}");
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    assert!(body.is_empty(), "304 must not carry a body: {body:?}");
    assert!(head.contains(&etag), "304 must echo the ETag: {head}");

    // A write through the gateway invalidates: the next read re-executes and
    // publishes a fresh ETag.
    let mut conn = stats_db.connect();
    conn.execute("INSERT INTO urldb VALUES ('http://www.w3.org', 'W3C')")
        .unwrap();
    let third = client.get("/cgi-bin/db2www/urls.d2w/report").unwrap();
    assert!(third.body.contains("W3C"), "stale read after write");
    assert_ne!(third.header("ETag"), Some(etag.as_str()));

    server.shutdown();
    println!(
        "cache_smoke PASS: {} result hits, 304 round trip, write invalidated",
        stats_db.cache_stats().unwrap().results.hits
    );
}
