//! Crash-recovery harness: prove that kill -9 cannot corrupt the database.
//!
//! Two modes, driven by `scripts/ci.sh` (and usable by hand):
//!
//! ```sh
//! DBGW_DATA_DIR=/tmp/dbgw-crash cargo run --example crash_recovery -- workload &
//! sleep 2; kill -9 $!          # power cut mid-commit-stream
//! DBGW_DATA_DIR=/tmp/dbgw-crash cargo run --example crash_recovery -- verify
//! ```
//!
//! * `workload` opens the durable database, seeds `bank` with
//!   [`ACCOUNTS`] accounts of [`SEED_BALANCE`] each (only when recovery came
//!   back empty), then commits an endless stream of random transfers. Each
//!   transfer is one `UPDATE` with a `CASE` expression, so statement
//!   atomicity makes the transfer atomic: the write-ahead log either has the
//!   whole transfer or none of it. After every acknowledged commit it prints
//!   `acked N` (flushed), so the harness knows work really reached the log
//!   before it pulls the plug.
//! * `verify` reopens the directory — running recovery over whatever the
//!   kill left behind, torn tail and all — and asserts the invariant
//!   transfers preserve: `SUM(balance)` is exactly
//!   `ACCOUNTS * SEED_BALANCE`. Exit code 0 means recovery held.

use std::io::Write;

/// Number of accounts in the seeded `bank` table.
const ACCOUNTS: i64 = 8;
/// Starting balance per account; the conserved sum is `ACCOUNTS * SEED_BALANCE`.
const SEED_BALANCE: i64 = 1000;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    if std::env::var("DBGW_DATA_DIR")
        .unwrap_or_default()
        .is_empty()
    {
        eprintln!("crash_recovery: set DBGW_DATA_DIR to a scratch directory");
        std::process::exit(2);
    }
    match mode.as_str() {
        "workload" => workload(),
        "verify" => verify(),
        _ => {
            eprintln!("usage: crash_recovery <workload|verify>");
            std::process::exit(2);
        }
    }
}

fn workload() {
    let db = minisql::Database::open_from_env().expect("open durable database");
    if db.pin().tables.is_empty() {
        let mut script =
            String::from("CREATE TABLE bank (id INTEGER PRIMARY KEY, balance INTEGER);\n");
        for id in 1..=ACCOUNTS {
            script.push_str(&format!(
                "INSERT INTO bank VALUES ({id}, {SEED_BALANCE});\n"
            ));
        }
        db.run_script(&script).expect("seed bank");
    }
    let mut conn = db.connect();
    let stdout = std::io::stdout();
    // Deterministic LCG; the point is churn, not randomness quality.
    let mut rng: u64 = 0x2545F4914F6CDD1D;
    let mut acked: u64 = 0;
    loop {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let from = (rng >> 33) as i64 % ACCOUNTS + 1;
        let to = (rng >> 13) as i64 % ACCOUNTS + 1;
        if from == to {
            continue;
        }
        let amount = (rng >> 3) as i64 % 50 + 1;
        // One statement, one WAL record: the transfer is atomic under crash.
        conn.execute(&format!(
            "UPDATE bank SET balance = balance + \
             CASE id WHEN {from} THEN -{amount} WHEN {to} THEN {amount} ELSE 0 END \
             WHERE id IN ({from}, {to})"
        ))
        .expect("transfer");
        acked += 1;
        // Flushed ack line: whoever kills us knows this much is durable.
        let mut out = stdout.lock();
        let _ = writeln!(out, "acked {acked}");
        let _ = out.flush();
    }
}

fn verify() {
    let db = minisql::Database::open_from_env().expect("recover durable database");
    let mut conn = db.connect();
    let result = conn
        .execute("SELECT SUM(balance) FROM bank")
        .expect("sum balances");
    let rows = &result.rows().expect("rows").rows;
    let sum = match rows[0][0] {
        minisql::Value::Int(n) => n,
        ref v => panic!("unexpected SUM type: {v:?}"),
    };
    let expected = ACCOUNTS * SEED_BALANCE;
    println!("balance sum after recovery: {sum} (expected {expected})");
    assert_eq!(sum, expected, "recovery broke the transfer invariant");
    println!("crash recovery OK");
}
