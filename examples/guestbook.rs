//! A read-write application: a guestbook with the §5 transaction modes.
//!
//! ```sh
//! cargo run --example guestbook
//! ```
//!
//! The macro INSERTs two rows per signing (the entry plus an audit record)
//! and then lists the book. The example signs it twice, then submits a bad
//! signing (missing name) under each transaction mode to show the observable
//! difference: auto-commit keeps the audit row, single-transaction rolls
//! both statements back.

use dbgw_cgi::{CgiRequest, Gateway};
use dbgw_core::{EngineConfig, TxnMode};

const MACRO: &str = r#"%DEFINE nm = NAME ? "'$(NAME)'" : "NULL"
%SQL{ INSERT INTO audit (note) VALUES ('signed by $(NAME)') %}
%SQL{ INSERT INTO guest (name, message) VALUES ($(nm), '$(MESSAGE)') %}
%SQL(list){ SELECT name, message FROM guest ORDER BY name
%SQL_REPORT{<H2>The book so far</H2><UL>
%ROW{<LI><B>$(V_name)</B> wrote: $(V_message)
%}</UL>
%}
%SQL_MESSAGE{ 100 : "<P>The book is empty.</P>" : continue %}
%}
%HTML_INPUT{<H1>Guestbook</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/guestbook.d2w/report">
Name: <INPUT NAME="NAME">
Message: <INPUT NAME="MESSAGE" SIZE=40>
<INPUT TYPE="submit" VALUE="Sign">
</FORM>
%}
%HTML_REPORT{<H1>Thanks for signing!</H1>
%EXEC_SQL
%EXEC_SQL(list)
%}"#;

fn database() -> minisql::Database {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200));
         CREATE TABLE audit (note VARCHAR(250));",
    )
    .expect("schema");
    db
}

fn sign(gw: &Gateway, body: &str) -> String {
    gw.handle(&CgiRequest::post("/guestbook.d2w/report", body))
        .body
}

fn main() {
    for mode in [TxnMode::AutoCommit, TxnMode::SingleTransaction] {
        println!("==================== {mode:?} ====================");
        let db = database();
        let gw = Gateway::with_config(
            db.clone(),
            EngineConfig {
                txn_mode: mode,
                ..EngineConfig::default()
            },
        );
        gw.add_macro("guestbook.d2w", MACRO).expect("macro parses");

        // Two good signings.
        sign(&gw, "NAME=Ada&MESSAGE=lovely+gateway");
        let page = sign(&gw, "NAME=Tam&MESSAGE=macros+ftw");
        println!("{page}");

        // A bad signing: no NAME, so the second INSERT violates NOT NULL.
        let page = sign(&gw, "MESSAGE=anonymous+grumbling");
        let error_line = page
            .lines()
            .find(|l| l.contains("SQL error"))
            .unwrap_or("(no error?)");
        println!("bad signing -> {error_line}");
        println!(
            "after failure: {} guest rows, {} audit rows  ({})",
            db.table_len("guest").unwrap(),
            db.table_len("audit").unwrap(),
            match mode {
                TxnMode::AutoCommit => "audit kept: each statement its own txn",
                TxnMode::SingleTransaction => "audit rolled back with the failure",
            }
        );
        println!();
    }
}
