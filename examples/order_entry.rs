//! The §3.1.3 order-entry scenario: conditional + list variables building a
//! WHERE clause, including the paper's "get the delimiter from the user for
//! AND or OR conditions" trick.
//!
//! ```sh
//! cargo run --example order_entry
//! ```
//!
//! Runs the same report four times — both inputs, one input, no inputs, and
//! OR connective — printing the SQL the engine generated each time, which
//! matches the worked example in the paper section by section.

use dbgw_cgi::MiniSqlDatabase;
use dbgw_core::{parse_macro, Engine, Mode};
use dbgw_workload::shop::Shop;

const MACRO: &str = r#"%DEFINE{
  CONNECTIVE = "AND"
  %LIST " $(CONNECTIVE) " where_list
  where_list = ? "custid = $(cust_inp)"
  where_list = ? "product_name LIKE '$(prod_inp)%'"
  where_clause = ? "WHERE $(where_list)"
%}
%SQL{
SELECT orderid, custid, product_name, quantity, price
FROM orders $(where_clause) ORDER BY orderid
%SQL_REPORT{
<TABLE BORDER=1>
<TR><TH>$(N1)</TH><TH>$(N3)</TH><TH>$(N4)</TH><TH>$(N5)</TH></TR>
%ROW{<TR><TD>$(V1)</TD><TD>$(V3)</TD><TD>$(V4)</TD><TD>$(V5)</TD></TR>
%}</TABLE>
<P>$(ROW_NUM) order(s).</P>
%}
%}
%HTML_INPUT{<H1>Order lookup</H1>
<FORM METHOD="get" ACTION="/cgi-bin/db2www/orders.d2w/report">
Customer id: <INPUT NAME="cust_inp">
Product prefix: <INPUT NAME="prod_inp">
Combine conditions with:
<SELECT NAME="CONNECTIVE">
<OPTION VALUE="AND" SELECTED>AND
<OPTION VALUE="OR">OR
</SELECT>
<INPUT TYPE="submit" VALUE="Look up">
</FORM>
%}
%HTML_REPORT{%EXEC_SQL%}"#;

fn run(
    engine: &Engine,
    mac: &dbgw_core::MacroFile,
    db: &minisql::Database,
    label: &str,
    inputs: &[(&str, &str)],
) {
    let vars: Vec<(String, String)> = inputs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .chain(std::iter::once(("SHOWSQL".to_string(), "YES".to_string())))
        .collect();
    let mut conn = MiniSqlDatabase::connect(db);
    let page = engine
        .process(mac, Mode::Report, &vars, &mut conn)
        .expect("report");
    let sql = page
        .lines()
        .find(|l| l.contains("<CODE>"))
        .unwrap_or("")
        .trim();
    let rows = page
        .lines()
        .find(|l| l.contains("order(s)"))
        .unwrap_or("")
        .trim();
    println!("--- {label}\n    {sql}\n    {rows}");
}

fn main() {
    let shop = Shop::generate(30, 4, 2026);
    let db = shop.into_database();
    println!(
        "shop loaded: {} customers, {} orders",
        shop.customers.len(),
        shop.orders.len()
    );

    let mac = parse_macro(MACRO).expect("macro parses");
    let engine = Engine::new();

    // The three §3.1.3 scenarios plus the dynamic-connective variant.
    run(
        &engine,
        &mac,
        &db,
        "both inputs (AND)",
        &[("cust_inp", "10100"), ("prod_inp", "bike")],
    );
    run(
        &engine,
        &mac,
        &db,
        "customer only",
        &[("cust_inp", "10100")],
    );
    run(
        &engine,
        &mac,
        &db,
        "no inputs: WHERE clause disappears",
        &[],
    );
    run(
        &engine,
        &mac,
        &db,
        "user-chosen OR connective",
        &[
            ("cust_inp", "10100"),
            ("prod_inp", "bike"),
            ("CONNECTIVE", "OR"),
        ],
    );
}
