//! Overload smoke: burst a 2-worker server past its queue and verify the
//! request-lifecycle guarantees end to end — a mix of 200s and 503s (with
//! `Retry-After`), no hung threads, and a clean drained shutdown.
//!
//! Run: `cargo run --release --example overload`. Prints `overload PASS` and
//! exits 0 on success; panics (nonzero exit) on any violated guarantee.

use dbgw_cgi::{FnSource, Gateway, HttpClient, HttpServer, ServerConfig, TraceOptions};
use dbgw_core::db::{Database, DbRows, FnDatabase};
use std::time::Duration;

fn main() {
    // ~30 ms per statement: slow enough that a 24-request burst against 2
    // workers and a 4-slot queue must shed, fast enough to finish quickly.
    let gw = Gateway::new(FnSource(|| {
        Box::new(FnDatabase(|_sql: &str| {
            std::thread::sleep(Duration::from_millis(30));
            Ok(DbRows {
                columns: vec!["n".into()],
                rows: vec![vec!["1".into()]],
                affected: 0,
            })
        })) as Box<dyn Database + Send>
    }))
    .with_trace(TraceOptions::disabled());
    gw.add_macro("slow.d2w", "%SQL{ SLOW %}\n%HTML_REPORT{ok %EXEC_SQL%}")
        .unwrap();

    let config = ServerConfig {
        workers: 2,
        queue: 4,
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with_config(gw, 0, config).unwrap();
    let addr = server.addr();

    const BURST: usize = 24;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..BURST {
            handles.push(scope.spawn(move || {
                HttpClient::new(addr)
                    .raw("GET /cgi-bin/db2www/slow.d2w/report HTTP/1.0\r\n\r\n")
                    .unwrap()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 200"))
        .count();
    let shed: Vec<&String> = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503"))
        .collect();
    assert_eq!(
        ok + shed.len(),
        BURST,
        "every request must get a well-formed answer: {responses:?}"
    );
    assert!(
        ok >= 2,
        "the pool must keep serving under overload (got {ok})"
    );
    assert!(
        !shed.is_empty(),
        "a {BURST}-request burst against 2 workers + 4 queue slots must shed"
    );
    for r in &shed {
        assert!(r.contains("Retry-After:"), "503 without Retry-After: {r}");
    }

    // Clean drained shutdown: joins the accept thread and every worker.
    server.shutdown();
    println!(
        "overload PASS: {ok} served, {} shed with Retry-After, drained shutdown",
        shed.len()
    );
}
