//! Quickstart: parse a macro, process it in both modes, print the pages.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the complete pipeline on one screen of code: an in-memory
//! database, a macro with all four section kinds, input mode (the form) and
//! report mode (substitution + SQL + custom report).

use dbgw_cgi::MiniSqlDatabase;
use dbgw_core::{parse_macro, Engine, Mode};

const MACRO: &str = r#"%DEFINE{
  dbtbl = "parts"
  %LIST " AND " conds
  conds = PART ? "name LIKE '$(PART)%'" : ""
  conds = MAXPRICE ? "price <= $(MAXPRICE)" : ""
  where_clause = ? "WHERE $(conds)"
%}
%SQL{
SELECT name, price FROM $(dbtbl) $(where_clause) ORDER BY price
%SQL_REPORT{
<H2>Matching parts ($(NLIST))</H2>
<OL>
%ROW{<LI>$(V_name) at $(V_price)
%}</OL>
<P>$(ROW_NUM) part(s) found.</P>
%}
%}
%HTML_INPUT{<H1>Part search</H1>
<FORM METHOD="get" ACTION="/cgi-bin/db2www/parts.d2w/report">
Name prefix: <INPUT NAME="PART">
Max price: <INPUT NAME="MAXPRICE">
<INPUT TYPE="submit" VALUE="Search">
</FORM>
%}
%HTML_REPORT{%EXEC_SQL%}"#;

fn main() {
    // 1. A database — MiniSQL stands in for DB2.
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE parts (name VARCHAR(40), price DOUBLE);
         INSERT INTO parts VALUES
            ('bolt', 0.10), ('bearing', 2.50), ('belt', 7.95),
            ('bracket', 1.25), ('gear', 12.00);",
    )
    .expect("schema + data");

    // 2. The macro.
    let mac = parse_macro(MACRO).expect("macro parses");
    let engine = Engine::new();

    // 3. Input mode: render the fill-in form (no SQL executes).
    let form = engine.process_input(&mac, &[]).expect("input mode");
    println!("=== input mode (the fill-in form) ===\n{form}");

    // 4. Report mode: the user typed PART=b, MAXPRICE=5 — watch the
    //    conditional WHERE assemble, and the custom report render.
    let inputs = vec![
        ("PART".to_string(), "b".to_string()),
        ("MAXPRICE".to_string(), "5".to_string()),
        ("SHOWSQL".to_string(), "YES".to_string()),
    ];
    let mut conn = MiniSqlDatabase::connect(&db);
    let report = engine
        .process(&mac, Mode::Report, &inputs, &mut conn)
        .expect("report mode");
    println!("\n=== report mode (PART=b, MAXPRICE=5) ===\n{report}");

    // 5. And with no inputs at all: the WHERE clause vanishes entirely.
    let mut conn = MiniSqlDatabase::connect(&db);
    let all = engine
        .process(&mac, Mode::Report, &[], &mut conn)
        .expect("report mode, no inputs");
    println!("\n=== report mode (no inputs: WHERE disappears) ===\n{all}");
}
