//! Run the full gateway as a browsable web site: home page with links, the
//! URL-directory app, the order-entry app and the guestbook, all behind the
//! HTTP server.
//!
//! ```sh
//! cargo run --example serve            # serves until Ctrl+C on port 8080
//! cargo run --example serve -- 0 5     # port 0 (ephemeral), exit after 5s
//! DBGW_DATA_DIR=./data cargo run --example serve   # durable: WAL + recovery
//! ```
//!
//! With `DBGW_DATA_DIR` set, writes survive restarts: the demo tables are
//! seeded only on first boot (when recovery finds an empty database), and
//! every later run picks up where the log left off.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{Gateway, HttpServer};
use dbgw_workload::{shop::Shop, UrlDirectory};

const ORDER_MACRO: &str = include_str!("../macros/orders.d2w");
const GUESTBOOK_MACRO: &str = include_str!("../macros/guestbook.d2w");
const TRANSFER_MACRO: &str = include_str!("../macros/transfer.d2w");

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8080);
    let run_secs: Option<u64> = args.next().and_then(|a| a.parse().ok());

    // One database, all four applications' tables. With DBGW_DATA_DIR set
    // this is durable (WAL + recovery); seed only when recovery came back
    // empty, so restarts keep the accumulated guestbook entries and orders.
    let db = minisql::Database::open_from_env().expect("open database");
    if let Some(dir) = db.data_dir() {
        println!("durable data dir: {}", dir.display());
    }
    if db.pin().tables.is_empty() {
        UrlDirectory::generate(300, 1996).load(&db).expect("urldb");
        Shop::generate(40, 4, 1996).load(&db).expect("shop");
        db.run_script(
            "CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200));
             CREATE TABLE audit (note VARCHAR(250));
             CREATE TABLE acct (id INTEGER PRIMARY KEY, balance DOUBLE);
             INSERT INTO acct VALUES (1, 100.0), (2, 0.0);",
        )
        .expect("guestbook + transfer tables");
    }

    let gateway = Gateway::new(db).enable_sessions(std::time::Duration::from_secs(300));
    gateway.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    gateway.add_macro("orders.d2w", ORDER_MACRO).unwrap();
    gateway.add_macro("guestbook.d2w", GUESTBOOK_MACRO).unwrap();
    gateway.add_macro("transfer.d2w", TRANSFER_MACRO).unwrap();

    let server = HttpServer::start(gateway, port).expect("bind");
    server.add_static_page(
        "/",
        "<HTML><HEAD><TITLE>DB2 WWW Connection (reproduction)</TITLE></HEAD>\n\
         <BODY><H1>Web-DBMS gateway demo</H1>\n<UL>\n\
         <LI><A HREF=\"/cgi-bin/db2www/urlquery.d2w/input\">URL directory search</A> (Appendix A)\n\
         <LI><A HREF=\"/cgi-bin/db2www/orders.d2w/input\">Order lookup</A> (the conditional-WHERE example)\n\
         <LI><A HREF=\"/cgi-bin/db2www/guestbook.d2w/input\">Guestbook</A> (read-write, transactions)\n\
         <LI><A HREF=\"/cgi-bin/db2www/transfer.d2w/input\">Funds transfer</A> (conversational transaction)\n\
         </UL></BODY></HTML>\n",
    );
    println!("serving on http://{}", server.addr());
    println!("  /cgi-bin/db2www/urlquery.d2w/input");
    println!("  /cgi-bin/db2www/orders.d2w/input");
    println!("  /cgi-bin/db2www/guestbook.d2w/input");
    println!("  /cgi-bin/db2www/transfer.d2w/input");

    match run_secs {
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            server.shutdown();
            println!("done after {secs}s");
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
}
