//! The paper's running example — the URL-directory application of Appendix A
//! (Figures 2, 3, 7 and 8) — driven end to end through a real HTTP server by
//! the programmatic browser.
//!
//! ```sh
//! cargo run --example url_directory
//! ```
//!
//! What it shows, in order:
//! 1. the Figure 7 input form served in input mode,
//! 2. a browser filling the form (SEARCH=ib, URL+Title checked) and
//!    submitting per §2.2,
//! 3. the Figure 8 hyperlinked report generated in report mode, with the
//!    dynamically built SQL echoed via SHOWSQL.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{FormFill, Gateway, HttpClient, HttpServer};
use dbgw_workload::UrlDirectory;

fn main() {
    // A 200-entry synthetic 1996 web directory (deterministic, seeded).
    let directory = UrlDirectory::generate(200, 1996);
    let db = directory.into_database();
    println!(
        "loaded urldb with {} rows (sample: {:?})",
        directory.len(),
        directory.rows[0]
    );

    let gateway = Gateway::new(db);
    gateway
        .add_macro("urlquery.d2w", URLQUERY_MACRO)
        .expect("Appendix A macro parses");
    let server = HttpServer::start(gateway, 0).expect("bind");
    println!("httpd listening on http://{}", server.addr());

    let client = HttpClient::new(server.addr());

    // Hop 1 — the Figure 7 form.
    let form_page = client
        .get("/cgi-bin/db2www/urlquery.d2w/input")
        .expect("input page");
    println!("\n=== Figure 7: the input form ===\n{}", form_page.body);

    // Hop 2 — the user's selections: keep the default SEARCH=ib, search URL
    // and Title, show the SQL, ask for title+description in the report.
    let fill = FormFill::defaults()
        .radio("SHOWSQL", "YES")
        .select("DBFIELDS", &["$(hidden_a)", "$(hidden_b)"]);
    let report = client
        .submit_form("/cgi-bin/db2www/urlquery.d2w/input", &fill)
        .expect("report page");
    println!("\n=== Figure 8: the query result ===\n{}", report.body);

    let hits = report.body.matches("<LI>").count();
    println!("=> {hits} directory entries matched '%ib%'");
    server.shutdown();
}
