#!/bin/sh
# Full verification: what CI runs, runnable locally.
set -eu

cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== shipped macros lint clean =="
cargo run -q -p dbgw-core --bin dtwlint -- macros/*.d2w

echo "== examples build =="
cargo build --examples

echo "All checks passed."
