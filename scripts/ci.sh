#!/bin/sh
# The hermetic tier-1 gate: the workspace must build and test with zero
# network access (see the zero-dependency policy in CONTRIBUTING.md).
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test --workspace -q --offline

# Formatting is part of the gate when rustfmt is installed; a bare toolchain
# without the component still passes the hermetic build+test core.
if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --all -- --check
else
    echo "== fmt == (skipped: rustfmt not installed)"
fi

echo "All hermetic checks passed."
