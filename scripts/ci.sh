#!/bin/sh
# The hermetic tier-1 gate: the workspace must build and test with zero
# network access (see the zero-dependency policy in CONTRIBUTING.md).
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test --workspace -q --offline

# Formatting is part of the gate when rustfmt is installed; a bare toolchain
# without the component still passes the hermetic build+test core.
if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --all -- --check
else
    echo "== fmt == (skipped: rustfmt not installed)"
fi

echo "== observability smoke (traced CGI request) =="
# Run one macro request through the release db2www with tracing on and check
# the JSON-lines sink records the span tree the tentpole promises.
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
cat > "$OBS_TMP/db.sql" <<'EOF'
CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');
EOF
cat > "$OBS_TMP/smoke.d2w" <<'EOF'
%SQL{ SELECT url, title FROM urldb WHERE title LIKE '%$(SEARCH)%' %}
%HTML_INPUT{<FORM ACTION="/cgi-bin/db2www/smoke.d2w/report"><INPUT NAME="SEARCH"></FORM>%}
%HTML_REPORT{<H1>Result for request $(DTW_REQUEST_ID)</H1>
%EXEC_SQL
%}
EOF
DBGW_TRACE=1 DBGW_TRACE_FILE="$OBS_TMP/trace.jsonl" \
    DTW_MACRO_DIR="$OBS_TMP" DTW_DB_SCRIPT="$OBS_TMP/db.sql" \
    REQUEST_METHOD=GET PATH_INFO=/smoke.d2w/report QUERY_STRING=SEARCH=IB \
    ./target/release/db2www > "$OBS_TMP/page.out"
grep -q 'http://www.ibm.com' "$OBS_TMP/page.out"
grep -q '<!-- dbgw trace' "$OBS_TMP/page.out"
for span in request parse_macro substitute exec_sql render_report; do
    grep -q "\"name\":\"$span\"" "$OBS_TMP/trace.jsonl" \
        || { echo "missing span $span in trace.jsonl"; exit 1; }
done
echo "observability smoke OK (spans + HTML comment present)"

echo "== overload smoke (worker pool + load shedding) =="
# Burst a 2-worker server past its queue: expect a mix of 200s and 503s with
# Retry-After, and a clean drained shutdown (the example asserts all of it).
cargo run --release --offline --example overload

echo "== cache smoke (result cache + conditional GET) =="
# Two identical GETs through a live server: the second must be a result-cache
# hit, the page must carry an ETag, and replaying it as If-None-Match must
# earn a bodyless 304 (the example asserts all of it, plus invalidation).
cargo run --release --offline --example cache_smoke

echo "== caching + conformance suites =="
cargo test -q --offline --test caching --test golden_macros

echo "== executor plan bench (quick run, asserted speedup floors) =="
# E11: hash join vs nested loop and indexed point-lookup join; the bench
# itself asserts the 10x / 5x acceptance floors, so a plan regression fails
# CI here. The JSON lands in the tempdir; the committed BENCH_exec.json is
# regenerated from a full (non-quick) run when the numbers change.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_exec.json" \
    cargo bench --offline -p dbgw-bench --bench exec_plan
test -s "$OBS_TMP/bench_exec.json"

echo "== snapshot-read scaling bench (quick run, asserted scaling floor) =="
# E12: mixed Zipf read/write throughput against the snapshot engine at
# 1/2/4/8 threads. The bench asserts the read-scaling floor itself, scaled
# to the cores actually available (>=8 cores demand 4x from 1->8 threads;
# a 1-core box gates on "threads must not collapse throughput"). A revived
# global lock fails CI here. The committed BENCH_concurrency.json is
# regenerated from a full (non-quick) run when the numbers change.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_concurrency.json" \
    cargo bench --offline -p dbgw-bench --bench concurrency
grep -q 'engine_read_scaling_8t_over_1t' "$OBS_TMP/bench_concurrency.json"

echo "== observability overhead bench (quick run, asserted <5% cost) =="
# E13: digest table + passive EXPLAIN ANALYZE capture on vs off on the E11
# join workload. The bench asserts the 5% ceiling itself and that rotating
# literals fold into one masked digest shape. The committed BENCH_obs.json
# is regenerated from a full (non-quick) run when the numbers change.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_obs.json" \
    cargo bench --offline -p dbgw-bench --bench obs_overhead
grep -q 'obs_overhead_pct' "$OBS_TMP/bench_obs.json"

echo "== WAL bench (quick run, asserted group-commit batching floor) =="
# E14: commit throughput WAL-off vs WAL-on, and group-commit batching at
# 1/4/8 writers. The bench asserts the batching floor itself (at 8 writers
# with the 200us linger window, strictly fewer than one fsync per commit);
# a WAL that fsyncs every commit individually fails CI here. The committed
# BENCH_wal.json is regenerated from a full (non-quick) run.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_wal.json" \
    cargo bench --offline -p dbgw-bench --bench wal
grep -q 'wal_records_per_fsync_8t' "$OBS_TMP/bench_wal.json"

echo "== planner bench (quick run, asserted reorder floor + EXPLAIN smoke) =="
# E15: stats-driven join ordering vs the syntactic order on a 3-way star
# join, plus set-op and window throughput. The bench asserts the 5x reorder
# floor itself and prints the EXPLAIN of the reordered query; CI checks the
# printed plan carries the cost model's chosen JOIN ORDER (dimension table
# first) so a planner that silently stops reordering fails here. The
# committed BENCH_planner.json is regenerated from a full (non-quick) run.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_planner.json" \
    cargo bench --offline -p dbgw-bench --bench planner \
    > "$OBS_TMP/bench_planner.log" 2>&1 \
    || { cat "$OBS_TMP/bench_planner.log"; exit 1; }
cat "$OBS_TMP/bench_planner.log"
grep -q 'planner_reorder_speedup' "$OBS_TMP/bench_planner.json"
grep -q 'JOIN ORDER: c -> b -> a' "$OBS_TMP/bench_planner.log"

echo "== HTTP edge bench (quick run, asserted keep-alive + TTFB floors) =="
# E16: hundreds of idle keep-alive connections parked in the epoll loop
# (10k in the full run), /stats p99 asserted with the fleet open, and
# streamed-vs-buffered TTFB on a large %ROW-template report. The bench
# asserts the p99 ceiling and the TTFB floor itself (>=3x quick, >=10x
# full); an edge that buffers whole reports before the first byte fails CI
# here. The committed BENCH_http.json is regenerated from a full run.
BENCH_QUICK=1 BENCH_JSON="$OBS_TMP/bench_http.json" \
    cargo bench --offline -p dbgw-bench --bench http_edge
grep -q 'http_ttfb_speedup' "$OBS_TMP/bench_http.json"

echo "== crash-recovery smoke (kill -9 mid-commit-stream) =="
# Durability's acceptance test, end to end on the release binary: run the
# transfer workload against a durable data dir, kill -9 once commits are
# flowing (acks are printed after the fsync, so the log provably has work
# in flight), then reopen and assert the transfer invariant — SUM(balance)
# is exactly what was seeded. Recovery must also cut any torn tail the kill
# left in the log without complaint.
cargo build --release --offline --example crash_recovery
CRASH_DIR="$OBS_TMP/crash-data"
DBGW_DATA_DIR="$CRASH_DIR" ./target/release/examples/crash_recovery workload \
    > "$OBS_TMP/crash-workload.log" 2>&1 &
CRASH_PID=$!
for _ in $(seq 1 100); do
    grep -q 'acked 200' "$OBS_TMP/crash-workload.log" 2>/dev/null && break
    sleep 0.1
done
grep -q 'acked 200' "$OBS_TMP/crash-workload.log" \
    || { echo "crash workload never reached 200 acked commits"; kill -9 "$CRASH_PID"; exit 1; }
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
DBGW_DATA_DIR="$CRASH_DIR" ./target/release/examples/crash_recovery verify
echo "crash-recovery smoke OK (kill -9 survived, balance invariant holds)"

echo "== /stats smoke (digest table over live HTTP) =="
# Boot the demo site on an ephemeral port, run one CGI query through it,
# then scrape /stats: the Prometheus text must carry a digest row and the
# SLO gauges, and the HTML view must render the digest table.
cargo build --release --offline --example serve
DBGW_SLO_P99_MS=250 DBGW_SLO_ERROR_BUDGET=0.01 \
    ./target/release/examples/serve 0 6 > "$OBS_TMP/serve.log" &
SERVE_PID=$!
ADDR=
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's|^serving on http://||p' "$OBS_TMP/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve example never reported its address"; exit 1; }
curl -fsS "http://$ADDR/cgi-bin/db2www/urlquery.d2w/report?SEARCH=ibm" > /dev/null
curl -fsS "http://$ADDR/stats?format=prometheus" > "$OBS_TMP/stats.prom"
curl -fsS "http://$ADDR/stats" > "$OBS_TMP/stats.html"
wait "$SERVE_PID"
grep -q '^dbgw_digest_calls_total{digest="' "$OBS_TMP/stats.prom"
grep -q '^dbgw_slo_burn_rate' "$OBS_TMP/stats.prom"
grep -q '<H2>Query digests</H2>' "$OBS_TMP/stats.html"
echo "/stats smoke OK (digest row + SLO gauges served)"

echo "All hermetic checks passed."
