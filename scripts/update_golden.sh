#!/bin/sh
# Re-record the golden macro fixtures in tests/golden/ after an intentional
# rendering change, then show what moved so the diff gets reviewed — a silent
# bless would defeat the point of the conformance suite.
set -eu

cd "$(dirname "$0")/.."

UPDATE_GOLDEN=1 cargo test --offline --test golden_macros -q

echo "== fixtures updated; review before committing =="
git --no-pager diff --stat -- tests/golden/ || true
