//! F7/F8 — the complete Appendix A application, end to end.
//!
//! Figure 7 is the application's input form (input mode); Figure 8 its
//! hyperlinked report (report mode). We run the verbatim-semantics macro
//! against a small directory whose content matches the paper's screenshots
//! (IBM pages found by the default search string "ib"), asserting:
//!
//! * the `$$(hidden_a)` escape hides the real column names from the end user
//!   but round-trips through submission into the projection list,
//! * the `%LIST " OR "` conditional WHERE assembles exactly the statement
//!   printed in §3.1.3's style,
//! * the custom `%SQL_REPORT` renders each row as a hyperlink with the
//!   conditional `<br>` fields D2/D3.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{CgiRequest, Gateway};

fn paper_database() -> minisql::Database {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255) NOT NULL,
                             title VARCHAR(120),
                             description VARCHAR(400));
         INSERT INTO urldb VALUES
           ('http://www.ibm.com', 'IBM Corporation', 'Products and services'),
           ('http://www.ibm.com/java', 'IBM Java', NULL),
           ('http://www.eso.org', 'European Southern Observatory', 'Astronomy archive'),
           ('http://www.ncsa.uiuc.edu', 'NCSA', 'Home of Mosaic and GSQL');",
    )
    .unwrap();
    db
}

fn gateway() -> Gateway {
    let gw = Gateway::new(paper_database());
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    gw
}

#[test]
fn figure7_input_form() {
    let resp = gateway().get("urlquery.d2w", "input", "");
    assert_eq!(resp.status, 200);
    let body = &resp.body;
    assert!(body.contains("<H1>Query URL Information</H1>"));
    assert!(body.contains("Search String: <INPUT NAME=\"SEARCH\" VALUE=\"ib\">"));
    // The hidden-variable trick: users see $(hidden_a), never "title".
    assert!(body.contains("<OPTION VALUE=\"$(hidden_a)\" SELECTED> Title"));
    assert!(body.contains("<OPTION VALUE=\"$(hidden_b)\"> Description"));
    assert!(!body.contains("$$(hidden_a)"));
    assert!(dbgw_html::check_balanced(body).is_ok());
}

#[test]
fn figure8_report_with_hyperlinks() {
    // Submit the form's default state: SEARCH=ib, URL+Title checked,
    // DBFIELDS=$(hidden_a) (the escaped name, dereferenced at report time).
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=%24%28hidden_a%29&SHOWSQL=",
    ));
    assert_eq!(resp.status, 200);
    let body = &resp.body;
    assert!(body.contains("<H1>URL Query Result</H1>"));
    assert!(body.contains("Select any of the following to go to the specified URL:"));
    // Both IBM pages match "%ib%"; ESO and NCSA do not.
    assert!(body
        .contains("<LI><A HREF=\"http://www.ibm.com\">http://www.ibm.com</A> <br>IBM Corporation"));
    assert!(body.contains(
        "<LI><A HREF=\"http://www.ibm.com/java\">http://www.ibm.com/java</A> <br>IBM Java"
    ));
    assert!(!body.contains("eso.org"));
    assert!(!body.contains("ncsa"));
    assert!(dbgw_html::check_balanced(body).is_ok());
}

#[test]
fn hidden_variable_round_trip_selects_columns() {
    // DBFIELDS arrives as the literal "$(hidden_a)"; the macro defines
    // hidden_a = "title" AFTER the input section but BEFORE the report, so
    // report-mode dereferencing turns it into the projection column.
    let gw = gateway();
    let with_title = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=ib&USE_TITLE=yes&DBFIELDS=%24%28hidden_a%29&SHOWSQL=YES",
    ));
    assert!(
        with_title.body.contains("SELECT url, title"),
        "{}",
        with_title.body
    );
    let with_both = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=ib&USE_TITLE=yes&DBFIELDS=%24%28hidden_a%29&DBFIELDS=%24%28hidden_b%29&SHOWSQL=YES",
    ));
    assert!(
        with_both.body.contains("SELECT url, title , description"),
        "{}",
        with_both.body
    );
}

#[test]
fn conditional_where_disappears_when_nothing_checked() {
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=ib&DBFIELDS=%24%28hidden_a%29&SHOWSQL=YES",
    ));
    // "If you unselect all of the above checkboxes all of the URLs in the
    // database will be displayed" (Figure 7's caption text).
    assert!(resp.body.contains("FROM urldb  ORDER BY title"));
    assert_eq!(resp.body.matches("<LI>").count(), 4);
}

#[test]
fn null_description_renders_nothing_not_blank_br() {
    // D3 = ? "<br>$(V3)" — the one-armed conditional nulls out for the row
    // whose description is NULL, so no dangling <br> appears for IBM Java.
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=java&USE_URL=yes&DBFIELDS=%24%28hidden_a%29&DBFIELDS=%24%28hidden_b%29",
    ));
    let line = resp
        .body
        .lines()
        .find(|l| l.contains("ibm.com/java"))
        .expect("java row present");
    // V2 (title) is present, V3 (description) is NULL: exactly one <br>.
    assert_eq!(line.matches("<br>").count(), 1, "line: {line}");
}

#[test]
fn search_string_override() {
    // Typing a different search string narrows to the observatory.
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=eso&USE_URL=yes&DBFIELDS=%24%28hidden_a%29",
    ));
    assert!(resp.body.contains("http://www.eso.org"));
    assert!(!resp.body.contains("ibm.com"));
}
