//! The dbgw-cache stack, exercised at every layer: the shared SQL result
//! cache (hits, bind-sensitivity, table invalidation, TTL, the off switch),
//! the prepared-statement cache, HTTP conditional GET, and a concurrency
//! hammer proving a committed write is never followed by a stale read.

use dbgw_cache::CacheConfig;
use dbgw_cgi::{CgiRequest, Gateway};
use dbgw_obs::TestClock;
use minisql::{Database, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A database with the cache explicitly on (immune to ambient `DBGW_CACHE*`).
fn cached_db() -> Database {
    Database::with_cache_config(&CacheConfig::default(), Arc::new(dbgw_obs::StdClock::new()))
}

fn seed_urldb(db: &Database) {
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');
         INSERT INTO urldb VALUES ('http://www.almaden.ibm.com', 'Almaden');",
    )
    .unwrap();
}

fn first_cell(db: &Database, sql: &str) -> Value {
    let mut conn = db.connect();
    let result = conn.execute(sql).unwrap();
    result.rows().unwrap().rows[0][0].clone()
}

#[test]
fn repeated_select_hits_the_result_cache() {
    let db = cached_db();
    seed_urldb(&db);
    let mut conn = db.connect();
    let sql = "SELECT title FROM urldb ORDER BY url";
    let cold = conn.execute(sql).unwrap().rows().unwrap().clone();
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.results.hits, 0, "{stats:?}");
    assert_eq!(stats.results.misses, 1, "{stats:?}");

    let warm = conn.execute(sql).unwrap().rows().unwrap().clone();
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.results.hits, 1, "{stats:?}");
    assert_eq!(warm, cold, "cached result must be identical");

    // Normalization: case and whitespace outside literals do not miss.
    let spaced = "  select TITLE from urldb   ORDER   by url";
    let normalized = conn.execute(spaced).unwrap().rows().unwrap().clone();
    assert_eq!(db.cache_stats().unwrap().results.hits, 2);
    assert_eq!(normalized, cold);
}

#[test]
fn bind_values_key_separate_entries() {
    let db = cached_db();
    seed_urldb(&db);
    let mut conn = db.connect();
    let sql = "SELECT url FROM urldb WHERE title = ?";
    let ibm = conn
        .execute_with_params(sql, &[Value::Text("IBM".into())])
        .unwrap();
    let almaden = conn
        .execute_with_params(sql, &[Value::Text("Almaden".into())])
        .unwrap();
    assert_ne!(
        ibm.rows().unwrap().rows,
        almaden.rows().unwrap().rows,
        "different binds must not alias"
    );
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.results.hits, 0, "{stats:?}");
    assert_eq!(stats.results.misses, 2, "{stats:?}");

    // Same binds again: both entries are live.
    conn.execute_with_params(sql, &[Value::Text("IBM".into())])
        .unwrap();
    conn.execute_with_params(sql, &[Value::Text("Almaden".into())])
        .unwrap();
    assert_eq!(db.cache_stats().unwrap().results.hits, 2);
}

#[test]
fn statement_cache_skips_reparsing() {
    let db = cached_db();
    seed_urldb(&db);
    let mut conn = db.connect();
    let sql = "SELECT title FROM urldb WHERE url = ?";
    for i in 0..3 {
        conn.execute_with_params(sql, &[Value::Text(format!("u{i}"))])
            .unwrap();
    }
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.statements.misses, 1, "{stats:?}");
    assert_eq!(stats.statements.hits, 2, "{stats:?}");
}

#[test]
fn any_write_to_the_table_invalidates() {
    let db = cached_db();
    seed_urldb(&db);
    let mut conn = db.connect();
    let sql = "SELECT COUNT(*) FROM urldb";
    assert_eq!(first_cell(&db, sql), Value::Int(2));
    assert_eq!(first_cell(&db, sql), Value::Int(2)); // cached

    conn.execute("INSERT INTO urldb VALUES ('http://www.w3.org', 'W3C')")
        .unwrap();
    assert_eq!(
        first_cell(&db, sql),
        Value::Int(3),
        "committed insert must be visible immediately"
    );
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.invalidations, 1, "{stats:?}");

    // Writes to an unrelated table leave the entry alone.
    conn.execute("CREATE TABLE other (n INT)").unwrap();
    conn.execute("INSERT INTO other VALUES (1)").unwrap();
    assert_eq!(first_cell(&db, sql), Value::Int(3));
    let stats = db.cache_stats().unwrap();
    assert_eq!(
        stats.invalidations, 1,
        "unrelated write invalidated: {stats:?}"
    );
}

#[test]
fn rollback_also_invalidates() {
    let db = cached_db();
    seed_urldb(&db);
    let mut conn = db.connect();
    let sql = "SELECT COUNT(*) FROM urldb";
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO urldb VALUES ('http://x.org', 'X')")
        .unwrap();
    assert_eq!(
        first_cell(&db, sql),
        Value::Int(3),
        "uncommitted but visible"
    );
    conn.execute("ROLLBACK").unwrap();
    assert_eq!(
        first_cell(&db, sql),
        Value::Int(2),
        "rollback must invalidate the cached count"
    );
}

#[test]
fn ddl_invalidates_in_both_directions() {
    let db = cached_db();
    seed_urldb(&db);
    let sql = "SELECT COUNT(*) FROM urldb";
    assert_eq!(first_cell(&db, sql), Value::Int(2));
    let mut conn = db.connect();
    conn.execute("DROP TABLE urldb").unwrap();
    assert!(
        conn.execute(sql).is_err(),
        "dropped table must not serve from cache"
    );
    conn.execute("CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80))")
        .unwrap();
    assert_eq!(
        first_cell(&db, sql),
        Value::Int(0),
        "recreated table must not resurrect the old count"
    );
}

#[test]
fn ttl_expires_entries_on_the_test_clock() {
    let clock = Arc::new(TestClock::new());
    let config = CacheConfig {
        ttl_ms: Some(1_000),
        ..CacheConfig::default()
    };
    let db = Database::with_cache_config(&config, clock.clone());
    seed_urldb(&db);
    let sql = "SELECT title FROM urldb ORDER BY url";
    first_cell(&db, sql);
    clock.advance_millis(999);
    first_cell(&db, sql);
    assert_eq!(db.cache_stats().unwrap().results.hits, 1, "within TTL");

    clock.advance_millis(2);
    first_cell(&db, sql);
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.results.expirations, 1, "{stats:?}");
    assert_eq!(
        stats.results.hits, 1,
        "expired entry must not hit: {stats:?}"
    );
}

#[test]
fn dbgw_cache_zero_disables_everything() {
    let config = CacheConfig::from_lookup(|name| match name {
        "DBGW_CACHE" => Some("0".to_owned()),
        _ => None,
    });
    assert!(!config.enabled);
    let db = Database::with_cache_config(&config, Arc::new(dbgw_obs::StdClock::new()));
    seed_urldb(&db);
    assert!(db.cache_stats().is_none(), "disabled cache keeps no state");
    // Repeated queries still work, just uncached.
    let sql = "SELECT COUNT(*) FROM urldb";
    assert_eq!(first_cell(&db, sql), Value::Int(2));
    assert_eq!(first_cell(&db, sql), Value::Int(2));

    // And the HTTP layer stops emitting validators.
    let gw = Gateway::new(db).with_http_cache(false);
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT title FROM urldb %}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let resp = gw.get("q.d2w", "report", "");
    assert_eq!(resp.status, 200);
    assert!(resp.header("ETag").is_none(), "{:?}", resp.headers);
    assert!(resp.header("Cache-Control").is_none(), "{:?}", resp.headers);
}

#[test]
fn conditional_get_round_trip() {
    let db = cached_db();
    seed_urldb(&db);
    let gw = Gateway::new(db).with_http_cache(true);
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT url, title FROM urldb ORDER BY url %}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();

    let fresh = gw.get("q.d2w", "report", "");
    assert_eq!(fresh.status, 200);
    let etag = fresh
        .header("ETag")
        .expect("SELECT-only report gets an ETag");
    assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");
    let etag = etag.to_owned();

    // Replaying the validator earns a bodyless 304 with the same ETag.
    let mut req = CgiRequest::get("/q.d2w/report", "");
    req.if_none_match = Some(etag.clone());
    let not_modified = gw.handle(&req);
    assert_eq!(not_modified.status, 304);
    assert!(not_modified.body.is_empty());
    assert_eq!(not_modified.header("ETag"), Some(etag.as_str()));

    // A stale validator gets the full page again.
    let mut req = CgiRequest::get("/q.d2w/report", "");
    req.if_none_match = Some("\"0000000000000000\"".to_owned());
    let full = gw.handle(&req);
    assert_eq!(full.status, 200);
    assert_eq!(full.body, fresh.body);

    // `If-None-Match: *` matches any current representation.
    let mut req = CgiRequest::get("/q.d2w/report", "");
    req.if_none_match = Some("*".to_owned());
    assert_eq!(gw.handle(&req).status, 304);

    // POSTs are never conditional.
    let post = gw.handle(&CgiRequest::post("/q.d2w/report", ""));
    assert_eq!(post.status, 200);
    assert!(post.header("ETag").is_none());
}

#[test]
fn reports_that_write_are_not_cacheable() {
    let db = cached_db();
    db.run_script("CREATE TABLE audit (note VARCHAR(250))")
        .unwrap();
    let gw = Gateway::new(db).with_http_cache(true);
    gw.add_macro(
        "w.d2w",
        "%SQL{ INSERT INTO audit (note) VALUES ('hit') %}\n\
         %HTML_INPUT{<FORM></FORM>%}\n\
         %HTML_REPORT{done %EXEC_SQL%}",
    )
    .unwrap();
    let resp = gw.get("w.d2w", "report", "");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("Cache-Control"), Some("no-store"));
    assert!(resp.header("ETag").is_none(), "{:?}", resp.headers);

    // The input form of the same macro runs no SQL and is cacheable.
    let input = gw.get("w.d2w", "input", "");
    assert_eq!(input.status, 200);
    assert!(input.header("ETag").is_some(), "{:?}", input.headers);
}

/// The hammer: one writer bumps a counter and publishes each committed value;
/// readers racing it must never observe a value older than what was already
/// published when their query started.
#[test]
fn no_stale_read_after_committed_write() {
    let db = cached_db();
    db.run_script(
        "CREATE TABLE counter (id INT PRIMARY KEY, val INT);
         INSERT INTO counter VALUES (1, 0);",
    )
    .unwrap();
    let published = Arc::new(AtomicI64::new(0));

    const WRITES: i64 = 200;
    std::thread::scope(|scope| {
        let writer_db = db.clone();
        let writer_published = Arc::clone(&published);
        scope.spawn(move || {
            let mut conn = writer_db.connect();
            for v in 1..=WRITES {
                conn.execute_with_params(
                    "UPDATE counter SET val = ? WHERE id = 1",
                    &[Value::Int(v)],
                )
                .unwrap();
                // The write is committed (auto-commit): publish it.
                writer_published.store(v, Ordering::SeqCst);
            }
        });
        for _ in 0..4 {
            let reader_db = db.clone();
            let reader_published = Arc::clone(&published);
            scope.spawn(move || {
                let mut conn = reader_db.connect();
                loop {
                    let floor = reader_published.load(Ordering::SeqCst);
                    let result = conn
                        .execute("SELECT val FROM counter WHERE id = 1")
                        .unwrap();
                    let Value::Int(seen) = result.rows().unwrap().rows[0][0] else {
                        panic!("val must be an integer");
                    };
                    assert!(
                        seen >= floor,
                        "stale read: saw {seen} after {floor} was committed"
                    );
                    if seen >= WRITES {
                        break;
                    }
                }
            });
        }
    });
    assert_eq!(
        first_cell(&db, "SELECT val FROM counter WHERE id = 1"),
        Value::Int(WRITES)
    );
}
