//! Drive the real `db2www` CGI executable the way a fork/exec web server
//! would (Figure 4, literally): set the CGI environment, pipe the POST body
//! to stdin, read the response from stdout.

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> std::path::PathBuf {
    // Integration tests live next to the workspace target dir.
    let mut path = std::env::current_exe().unwrap();
    path.pop(); // test binary name
    path.pop(); // deps/
    path.push("db2www");
    path
}

fn fixture_dir() -> tempdir::TempDirLike {
    tempdir::create()
}

/// Minimal in-tree temp-dir helper (std only).
mod tempdir {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    pub struct TempDirLike(pub PathBuf);

    impl Drop for TempDirLike {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    static SEQ: AtomicU32 = AtomicU32::new(0);

    pub fn create() -> TempDirLike {
        let dir = std::env::temp_dir().join(format!(
            "dbgw-cgi-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDirLike(dir)
    }
}

fn setup(dir: &std::path::Path) {
    std::fs::write(
        dir.join("setup.sql"),
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM'), ('http://www.eso.org', 'ESO');",
    )
    .unwrap();
    std::fs::write(
        dir.join("q.d2w"),
        "%SQL{ SELECT url, title FROM urldb WHERE title LIKE '%$(SEARCH)%' ORDER BY title %}\n\
         %HTML_INPUT{<FORM METHOD=\"post\" ACTION=\"/cgi-bin/db2www/q.d2w/report\">\
         <INPUT NAME=\"SEARCH\"></FORM>%}\n\
         %HTML_REPORT{<H1>Hits</H1>\n%EXEC_SQL%}",
    )
    .unwrap();
}

fn invoke(dir: &std::path::Path, method: &str, path_info: &str, query: &str, body: &str) -> String {
    let mut cmd = Command::new(binary());
    cmd.env("REQUEST_METHOD", method)
        .env("PATH_INFO", path_info)
        .env("QUERY_STRING", query)
        .env("CONTENT_LENGTH", body.len().to_string())
        .env("DTW_MACRO_DIR", dir)
        .env("DTW_DB_SCRIPT", dir.join("setup.sql"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn db2www");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(body.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn get_input_mode_serves_the_form() {
    let dir = fixture_dir();
    setup(&dir.0);
    let out = invoke(&dir.0, "GET", "/q.d2w/input", "", "");
    assert!(out.starts_with("Status: 200 OK\r\n"), "{out}");
    assert!(out.contains("Content-Type: text/html; charset=utf-8"));
    assert!(out.contains("<INPUT NAME=\"SEARCH\">"));
}

#[test]
fn get_report_mode_with_query_string() {
    let dir = fixture_dir();
    setup(&dir.0);
    let out = invoke(&dir.0, "GET", "/q.d2w/report", "SEARCH=IB", "");
    assert!(out.contains("http://www.ibm.com"), "{out}");
    assert!(!out.contains("eso.org"));
}

#[test]
fn post_report_mode_with_stdin_body() {
    let dir = fixture_dir();
    setup(&dir.0);
    let out = invoke(&dir.0, "POST", "/q.d2w/report", "", "SEARCH=ESO");
    assert!(out.contains("http://www.eso.org"), "{out}");
}

#[test]
fn missing_macro_is_404() {
    let dir = fixture_dir();
    setup(&dir.0);
    let out = invoke(&dir.0, "GET", "/ghost.d2w/input", "", "");
    assert!(out.starts_with("Status: 404"), "{out}");
}

#[test]
fn traversal_attempt_is_400() {
    let dir = fixture_dir();
    setup(&dir.0);
    let out = invoke(&dir.0, "GET", "/../setup.sql/input", "", "");
    assert!(out.starts_with("Status: 400"), "{out}");
}
