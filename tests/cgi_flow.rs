//! F4/F6 — the CGI data flow (Figure 4) and the two-call runtime flow
//! (Figure 6), over a real socket.
//!
//! Figure 4 shows two invocations of the gateway: a GET whose variables ride
//! in `QUERY_STRING`, and a POST whose variables arrive on standard input.
//! Figure 6 shows the full runtime: browser → httpd → DB2WWW(input) →
//! browser → httpd → DB2WWW(report) → dynamic SQL → HTML. This test drives
//! both hops through the HTTP server with the form-filling client.

use dbgw_baselines::URLQUERY_MACRO;
use dbgw_cgi::{CgiRequest, FormFill, Gateway, HttpClient, HttpServer};

fn server() -> HttpServer {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(120), description VARCHAR(400));
         INSERT INTO urldb VALUES
           ('http://www.ibm.com', 'IBM Corporation', 'Products and services'),
           ('http://www.eso.org', 'European Southern Observatory', 'Astronomy');",
    )
    .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    HttpServer::start(gw, 0).expect("bind")
}

#[test]
fn figure4_get_and_post_paths_deliver_same_variables() {
    let server = server();
    let gw = server.gateway();
    // GET: URL=/cgi-bin/db2www/<macro>/report?var1=val1&var2=val2
    let get = gw.handle(&CgiRequest::get(
        "/urlquery.d2w/report",
        "SEARCH=ib&USE_TITLE=yes&DBFIELDS=title",
    ));
    // POST: same variables on standard input.
    let post = gw.handle(&CgiRequest::post(
        "/urlquery.d2w/report",
        "SEARCH=ib&USE_TITLE=yes&DBFIELDS=title",
    ));
    assert_eq!(get.status, 200);
    assert_eq!(get.body, post.body);
    server.shutdown();
}

#[test]
fn figure6_full_two_call_flow_over_http() {
    let server = server();
    let client = HttpClient::new(server.addr());

    // Hop 1: the user requests the input form.
    let form_page = client
        .get("/cgi-bin/db2www/urlquery.d2w/input")
        .expect("input page");
    assert_eq!(form_page.status, 200);
    assert!(form_page.body.contains("Query URL Information"));

    // Hop 2: the user fills it out and clicks Submit Query; the client
    // follows the form's own ACTION/METHOD (POST, per the macro).
    let fill = FormFill::defaults()
        .text("SEARCH", "ibm")
        .check("USE_URL", "yes", true)
        .check("USE_TITLE", "yes", false)
        .radio("SHOWSQL", "YES");
    let report = client
        .submit_form("/cgi-bin/db2www/urlquery.d2w/input", &fill)
        .expect("report page");
    assert_eq!(report.status, 200);
    assert!(report.body.contains("URL Query Result"));
    assert!(report.body.contains("http://www.ibm.com"));
    assert!(!report.body.contains("eso.org"));
    // SHOWSQL=YES echoes the dynamically generated statement, proving the
    // flow went user input -> variable substitution -> dynamic SQL.
    assert!(report.body.contains("LIKE '%ibm%'"));
    server.shutdown();
}

#[test]
fn cgi_environment_matches_protocol() {
    // Figure 4's annotations: PATH_INFO carries /<macro>/<cmd>, QUERY_STRING
    // carries the variables.
    let req = CgiRequest::get("/urlquery.d2w/report", "var1=val1&var2=val2");
    let env = req.environment();
    let lookup = |k: &str| {
        env.iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.as_str())
            .unwrap()
    };
    assert_eq!(lookup("PATH_INFO"), "/urlquery.d2w/report");
    assert_eq!(lookup("QUERY_STRING"), "var1=val1&var2=val2");
    assert_eq!(lookup("REQUEST_METHOD"), "GET");
    assert_eq!(lookup("GATEWAY_INTERFACE"), "CGI/1.1");
}

#[test]
fn input_mode_touches_no_sql_even_with_bad_statement() {
    // §4.1: "The HTML report section and any SQL sections ... are completely
    // ignored by DB2WWW in the input mode."
    let db = minisql::Database::new(); // urldb doesn't even exist
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", URLQUERY_MACRO).unwrap();
    let resp = gw.get("urlquery.d2w", "input", "");
    assert_eq!(resp.status, 200);
    assert!(!resp.body.contains("SQL error"));
}
