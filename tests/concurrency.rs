//! Concurrency guarantees of the snapshot-read engine, proven under stress.
//!
//! The engine's contract (DESIGN.md §11): SELECTs pin one immutable snapshot
//! and never observe a partially applied statement; writers serialize per
//! table through sorted-order latches and publish atomically; table version
//! counters and the snapshot epoch only ever move forward. Every test here
//! runs real threads through the public `Database`/`Connection` API with the
//! testkit stress harness — barrier-started, workloads deterministic by seed
//! (failures print `TESTKIT_SEED=<seed>` to replay), deadlocks converted into
//! named failures by the watchdog rather than hung builds. No test
//! synchronizes with sleeps.

use dbgw_testkit::stress::{self, StressConfig};
use dbgw_testkit::{prop_assert, prop_assert_eq};
use minisql::{Database, ExecResult, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn rows_of(r: ExecResult) -> Vec<Vec<Value>> {
    match r {
        ExecResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("expected int, got {other:?}"),
    }
}

/// Caching on for readers is deliberate in most tests below: the result
/// cache revalidates against the pinned snapshot's version counters, so a
/// stale hit would be a correctency bug this suite must catch too.
fn stamped_table_db() -> Database {
    let db = Database::new();
    db.run_script(
        "CREATE TABLE pairs (k INTEGER PRIMARY KEY, a INTEGER NOT NULL, b INTEGER NOT NULL)",
    )
    .unwrap();
    let mut conn = db.connect();
    for k in 0..32 {
        conn.execute_with_params("INSERT INTO pairs VALUES (?, 0, 0)", &[Value::Int(k)])
            .unwrap();
    }
    db
}

/// A multi-row UPDATE is one atomic publication: every reader sees all 32
/// rows carrying the *same* stamp with `a = -b`, never a half-applied
/// statement (the torn read the old global lock prevented by blocking).
#[test]
fn no_torn_multi_row_reads() {
    let db = stamped_table_db();
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = StressConfig::named("no_torn_multi_row_reads");
    config.threads = 4;
    stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            let stamp = (w.thread as i64 + 1) * 1_000_000 + w.iter as i64;
            let n = conn
                .execute_with_params(
                    "UPDATE pairs SET a = ?, b = 0 - ?",
                    &[Value::Int(stamp), Value::Int(stamp)],
                )
                .map_err(|e| e.to_string())?;
            prop_assert_eq!(rows_touched(n), 32);
            Ok(())
        },
        move || {
            let mut conn = reader_db.connect();
            let rows = rows_of(
                conn.execute("SELECT a, b FROM pairs")
                    .map_err(|e| e.to_string())?,
            );
            prop_assert_eq!(rows.len(), 32);
            let first = int(&rows[0][0]);
            for row in &rows {
                let (a, b) = (int(&row[0]), int(&row[1]));
                prop_assert_eq!(a, -b, "torn row: a={a} b={b}");
                prop_assert_eq!(a, first, "mixed stamps in one snapshot: {a} vs {first}");
            }
            Ok(())
        },
    );
}

fn rows_touched(r: ExecResult) -> usize {
    match r {
        ExecResult::Count(n) => n,
        other => panic!("expected count, got {other:?}"),
    }
}

/// Randomized transfers between accounts preserve the total balance in every
/// intermediate snapshot. Each transfer is a single CASE-expression UPDATE —
/// one statement, one atomic publication — so the observer's SUM must read
/// 0 drift no matter when it lands.
#[test]
fn balance_sum_invariant_under_concurrent_transfers() {
    const ACCOUNTS: i64 = 8;
    const OPENING: i64 = 1_000;
    let db = Database::new();
    db.run_script("CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER NOT NULL)")
        .unwrap();
    {
        let mut conn = db.connect();
        for id in 0..ACCOUNTS {
            conn.execute_with_params(
                "INSERT INTO accounts VALUES (?, ?)",
                &[Value::Int(id), Value::Int(OPENING)],
            )
            .unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = StressConfig::named("balance_sum_invariant");
    config.threads = 4;
    stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            // Always two distinct accounts: a self-transfer would hit only
            // the first CASE arm and (correctly) destroy money.
            let from = w.rng.gen_range(0i64..ACCOUNTS);
            let to = (from + w.rng.gen_range(1i64..ACCOUNTS)) % ACCOUNTS;
            let amount = w.rng.gen_range(1i64..50);
            let n = conn.execute_with_params(
                "UPDATE accounts SET balance = CASE \
                     WHEN id = ? THEN balance - ? \
                     WHEN id = ? THEN balance + ? \
                     ELSE balance END \
                 WHERE id = ? OR id = ?",
                &[
                    Value::Int(from),
                    Value::Int(amount),
                    Value::Int(to),
                    Value::Int(amount),
                    Value::Int(from),
                    Value::Int(to),
                ],
            );
            prop_assert_eq!(rows_touched(n.map_err(|e| e.to_string())?), 2);
            Ok(())
        },
        move || {
            let mut conn = reader_db.connect();
            let rows = rows_of(
                conn.execute("SELECT SUM(balance) FROM accounts")
                    .map_err(|e| e.to_string())?,
            );
            prop_assert_eq!(int(&rows[0][0]), ACCOUNTS * OPENING);
            Ok(())
        },
    );
    let mut conn = db.connect();
    let rows = rows_of(conn.execute("SELECT SUM(balance) FROM accounts").unwrap());
    assert_eq!(int(&rows[0][0]), ACCOUNTS * OPENING, "final ledger drifted");
}

/// Version counters and the snapshot epoch never go backwards, from any
/// thread's point of view, while writers churn — and committed writes are
/// reflected: the final version is at least the number of UPDATE statements.
#[test]
fn version_counters_and_epoch_are_monotonic() {
    let db = stamped_table_db();
    let version_floor = Arc::new(AtomicU64::new(db.table_version("pairs")));
    let epoch_floor = Arc::new(AtomicU64::new(db.snapshot_epoch()));
    let writes = Arc::new(AtomicU64::new(0));

    let writer_db = db.clone();
    let observer_db = db.clone();
    let (vf, ef, wr) = (
        Arc::clone(&version_floor),
        Arc::clone(&epoch_floor),
        Arc::clone(&writes),
    );
    let mut config = StressConfig::named("monotonic_versions");
    config.threads = 4;
    stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            let before = writer_db.table_version("pairs");
            conn.execute_with_params(
                "UPDATE pairs SET a = ?, b = 0 - ? WHERE k = ?",
                &[
                    Value::Int(w.iter as i64),
                    Value::Int(w.iter as i64),
                    Value::Int(w.rng.gen_range(0i64..32)),
                ],
            )
            .map_err(|e| e.to_string())?;
            wr.fetch_add(1, Ordering::Relaxed);
            let after = writer_db.table_version("pairs");
            // A writer's own committed update is visible to itself at once.
            prop_assert!(after > before, "own write invisible: {before} -> {after}");
            Ok(())
        },
        move || {
            let version = observer_db.table_version("pairs");
            let epoch = observer_db.snapshot_epoch();
            let vprev = vf.fetch_max(version, Ordering::AcqRel);
            let eprev = ef.fetch_max(epoch, Ordering::AcqRel);
            prop_assert!(
                version >= vprev,
                "version went backwards: {vprev} -> {version}"
            );
            prop_assert!(epoch >= eprev, "epoch went backwards: {eprev} -> {epoch}");
            Ok(())
        },
    );
    let total_writes = writes.load(Ordering::Relaxed);
    assert!(
        db.table_version("pairs") >= version_floor.load(Ordering::Relaxed)
            && db.table_version("pairs") - stamped_table_db_base_version() >= total_writes,
        "final version {} does not cover {} writes",
        db.table_version("pairs"),
        total_writes
    );
}

/// The version counter of `pairs` right after `stamped_table_db()` setup:
/// one CREATE TABLE bump plus 32 single-row INSERT bumps.
fn stamped_table_db_base_version() -> u64 {
    33
}

/// A pinned snapshot is a stable world: its contents bit-match across the
/// whole run no matter how much the live database churns underneath it.
#[test]
fn pinned_snapshot_never_moves() {
    let db = stamped_table_db();
    {
        let mut conn = db.connect();
        conn.execute("UPDATE pairs SET a = 7, b = 0 - 7").unwrap();
    }
    let pinned = db.pin();
    let frozen_epoch = pinned.epoch;

    let writer_db = db.clone();
    let mut config = StressConfig::named("pinned_snapshot_never_moves");
    config.threads = 2;
    let p = Arc::clone(&pinned);
    stress::run_observed(
        &config,
        move |w| {
            let mut conn = writer_db.connect();
            conn.execute_with_params(
                "UPDATE pairs SET a = ?, b = 0 - ? WHERE k = ?",
                &[
                    Value::Int(w.iter as i64 + 100),
                    Value::Int(w.iter as i64 + 100),
                    Value::Int(w.rng.gen_range(0i64..32)),
                ],
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        },
        move || {
            prop_assert_eq!(p.epoch, frozen_epoch);
            let t = p.table("pairs").map_err(|e| e.to_string())?;
            prop_assert_eq!(t.heap.len(), 32);
            for (_, row) in t.heap.iter() {
                prop_assert_eq!(int(&row[1]), 7, "pinned snapshot mutated");
            }
            Ok(())
        },
    );
    // The live database did move on.
    assert!(db.snapshot_epoch() > frozen_epoch);
}

/// Writer-writer ordering: randomized DML, DDL and multi-table transactions
/// with rollbacks, all racing. The sorted-latch protocol (catalog latch
/// first, then table names in order) must never deadlock — the harness
/// watchdog turns a latch cycle into a named failure instead of a hang.
#[test]
fn randomized_multi_table_dml_never_deadlocks() {
    let db = Database::without_cache();
    db.run_script(
        "CREATE TABLE t0 (v INTEGER); CREATE TABLE t1 (v INTEGER); \
         CREATE TABLE t2 (v INTEGER); CREATE TABLE t3 (v INTEGER)",
    )
    .unwrap();
    let worker_db = db.clone();
    let mut config = StressConfig::named("multi_table_no_deadlock");
    config.threads = 8;
    config.iters = 48;
    stress::run(&config, move |w| {
        let mut conn = worker_db.connect();
        match w.rng.gen_range(0u32..10) {
            // Multi-table transaction, rolled back half the time: the
            // rollback path re-acquires every touched table's latch as one
            // sorted set.
            0..=4 => {
                conn.execute("BEGIN").map_err(|e| e.to_string())?;
                let statements = w.rng.gen_range(2u32..5);
                for _ in 0..statements {
                    let table = w.rng.gen_range(0u32..4);
                    let sql = format!("INSERT INTO t{table} VALUES ({})", w.iter);
                    conn.execute(&sql).map_err(|e| e.to_string())?;
                }
                let end = if w.rng.gen_bool(0.5) {
                    "ROLLBACK"
                } else {
                    "COMMIT"
                };
                conn.execute(end).map_err(|e| e.to_string())?;
            }
            // Cross-table DML in opposite orders from different threads —
            // the classic deadlock shape if latches were held across
            // statements or acquired unsorted.
            5..=6 => {
                let (x, y) = if w.thread % 2 == 0 { (0, 3) } else { (3, 0) };
                conn.execute(&format!("DELETE FROM t{x} WHERE v < 0"))
                    .map_err(|e| e.to_string())?;
                conn.execute(&format!("DELETE FROM t{y} WHERE v < 0"))
                    .map_err(|e| e.to_string())?;
            }
            // DDL: private per-thread table created and dropped, taking the
            // catalog latch against everyone else's table latches.
            7..=8 => {
                let name = format!("scratch_{}", w.thread);
                conn.execute(&format!("CREATE TABLE {name} (x INTEGER)"))
                    .map_err(|e| e.to_string())?;
                conn.execute(&format!("INSERT INTO {name} VALUES (1)"))
                    .map_err(|e| e.to_string())?;
                conn.execute(&format!("DROP TABLE {name}"))
                    .map_err(|e| e.to_string())?;
            }
            // Index churn: CREATE INDEX holds catalog+table; DROP INDEX
            // resolves its table under the catalog latch then latches it.
            _ => {
                let table = w.rng.gen_range(0u32..4);
                let name = format!("idx_{}_{table}", w.thread);
                conn.execute(&format!("CREATE INDEX {name} ON t{table} (v)"))
                    .map_err(|e| e.to_string())?;
                conn.execute(&format!("DROP INDEX {name}"))
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    });
    // Engine still coherent after the storm: every base table answers.
    let mut conn = db.connect();
    for t in 0..4 {
        conn.execute(&format!("SELECT COUNT(*) FROM t{t}")).unwrap();
    }
}

/// Readers pin snapshots while a writer drops and recreates the table they
/// are reading: each individual SELECT must be internally consistent (all
/// rows from one incarnation), and version counters survive the DROP so the
/// result cache can never resurrect rows across incarnations.
#[test]
fn drop_recreate_under_readers_is_snapshot_consistent() {
    let db = Database::new();
    db.run_script("CREATE TABLE flip (gen INTEGER NOT NULL)")
        .unwrap();
    {
        let mut conn = db.connect();
        for _ in 0..8 {
            conn.execute("INSERT INTO flip VALUES (0)").unwrap();
        }
    }
    let writer_db = db.clone();
    let reader_db = db.clone();
    let mut config = StressConfig::named("drop_recreate_consistency");
    config.threads = 2;
    config.iters = 24;
    stress::run_observed(
        &config,
        move |w| {
            if w.thread != 0 {
                // One DDL writer is enough; the rest hammer row DML.
                let mut conn = writer_db.connect();
                conn.execute_with_params(
                    "UPDATE flip SET gen = gen WHERE gen >= ?",
                    &[Value::Int(0)],
                )
                .map_err(|e| e.to_string())?;
                return Ok(());
            }
            let mut conn = writer_db.connect();
            let generation = w.iter as i64 + 1;
            conn.execute("DROP TABLE flip").map_err(|e| e.to_string())?;
            conn.execute("CREATE TABLE flip (gen INTEGER NOT NULL)")
                .map_err(|e| e.to_string())?;
            for _ in 0..8 {
                conn.execute_with_params("INSERT INTO flip VALUES (?)", &[Value::Int(generation)])
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        },
        move || {
            let mut conn = reader_db.connect();
            // Between DROP and the 8th INSERT the table legitimately has
            // 0..8 rows; what must NEVER appear is a mix of generations.
            match conn.execute("SELECT gen FROM flip") {
                Ok(r) => {
                    let rows = rows_of(r);
                    if let Some(first) = rows.first() {
                        let g = int(&first[0]);
                        for row in &rows {
                            prop_assert_eq!(int(&row[0]), g, "mixed incarnations in one snapshot");
                        }
                    }
                }
                // The snapshot this reader pinned may predate the CREATE.
                Err(e) => prop_assert!(e.to_string().contains("flip"), "unexpected error: {e}"),
            }
            Ok(())
        },
    );
}

// The declarative macro form, driving the engine: concurrent single-row
// inserts through the full parse → plan → latch → publish path; the
// PRIMARY KEY index must end exactly as large as the row count.
dbgw_testkit::stress! {
    config(threads = 4, iters = 32);

    fn stress_macro_unique_inserts(w, shared = {
        let db = Database::without_cache();
        db.run_script("CREATE TABLE ids (id INTEGER PRIMARY KEY)").unwrap();
        db
    }) {
        let mut conn = shared.connect();
        let id = (w.thread as i64) * 1_000_000 + w.iter as i64;
        let inserted = conn
            .execute_with_params("INSERT INTO ids VALUES (?)", &[Value::Int(id)])
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(rows_touched(inserted), 1);
        // A duplicate from the same thread must be rejected by the index.
        prop_assert!(conn
            .execute_with_params("INSERT INTO ids VALUES (?)", &[Value::Int(id)])
            .is_err());
    }
}
