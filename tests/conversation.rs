//! The §5 future-work feature: transactions spanning multiple client-server
//! interactions, driven end to end through the gateway.
//!
//! The application is a two-step funds transfer: request 1 debits, request 2
//! credits, request 3 confirms (commit) or cancels (abort). The DTW_SESSION
//! hidden variable is the entire conversation state on the client side.

use dbgw_cgi::{CgiRequest, Gateway};
use std::time::Duration;

const TRANSFER_MACRO: &str = r#"%SQL(debit){ UPDATE acct SET balance = balance - $(AMT) WHERE id = $(FROM_ID) %}
%SQL(credit){ UPDATE acct SET balance = balance + $(AMT) WHERE id = $(TO_ID) %}
%SQL(show){ SELECT id, balance FROM acct ORDER BY id
%SQL_REPORT{%ROW{[$(V1)=$(V2)]%}%}
%}
%HTML_INPUT{<FORM METHOD="get" ACTION="/cgi-bin/db2www/transfer.d2w/report">
<INPUT TYPE="hidden" NAME="DTW_SESSION" VALUE="new">
<INPUT NAME="STEP" VALUE="debit">
</FORM>%}
%HTML_REPORT{session=$(SESSION_ID)
%EXEC_SQL($(STEP))
%}"#;

fn gateway() -> (minisql::Database, Gateway) {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance DOUBLE);
         INSERT INTO acct VALUES (1, 100.0), (2, 0.0);",
    )
    .unwrap();
    let gw = Gateway::new(db.clone()).enable_sessions(Duration::from_secs(30));
    gw.add_macro("transfer.d2w", TRANSFER_MACRO).unwrap();
    (db, gw)
}

/// Extract the session id echoed into the page.
fn session_of(body: &str) -> String {
    body.lines()
        .find_map(|l| l.strip_prefix("session="))
        .expect("session id in page")
        .trim()
        .to_owned()
}

#[test]
fn committed_conversation_transfers_funds() {
    let (db, gw) = gateway();
    // Step 1: open the conversation and debit.
    let r1 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        "DTW_SESSION=new&STEP=debit&AMT=40&FROM_ID=1",
    ));
    assert_eq!(r1.status, 200, "{}", r1.body);
    let sid = session_of(&r1.body);
    // Step 2: credit inside the same conversation.
    let r2 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        &format!("DTW_SESSION={sid}&STEP=credit&AMT=40&TO_ID=2"),
    ));
    assert_eq!(r2.status, 200, "{}", r2.body);
    assert_eq!(session_of(&r2.body), sid);
    // Step 3: confirm.
    let r3 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        &format!("DTW_SESSION={sid}&STEP=show&DTW_END=commit"),
    ));
    assert_eq!(r3.status, 200);
    assert!(r3.body.contains("[1=60.0][2=40.0]"), "{}", r3.body);
    assert_eq!(gw.sessions().unwrap().live(), 0);
    // Durable after commit.
    let mut conn = db.connect();
    let r = conn.execute("SELECT SUM(balance) FROM acct").unwrap();
    assert_eq!(r.rows().unwrap().rows[0][0], minisql::Value::Double(100.0));
}

#[test]
fn aborted_conversation_leaves_no_trace() {
    let (db, gw) = gateway();
    let r1 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        "DTW_SESSION=new&STEP=debit&AMT=40&FROM_ID=1",
    ));
    let sid = session_of(&r1.body);
    gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        &format!("DTW_SESSION={sid}&STEP=credit&AMT=40&TO_ID=2"),
    ));
    // The user clicks Cancel.
    let r3 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        &format!("DTW_SESSION={sid}&STEP=show&DTW_END=abort"),
    ));
    assert_eq!(r3.status, 200);
    let mut conn = db.connect();
    let r = conn
        .execute("SELECT balance FROM acct ORDER BY id")
        .unwrap();
    let rs = r.rows().unwrap();
    assert_eq!(rs.rows[0][0], minisql::Value::Double(100.0));
    assert_eq!(rs.rows[1][0], minisql::Value::Double(0.0));
}

#[test]
fn half_done_conversation_is_invisible_after_failure() {
    let (db, gw) = gateway();
    let r1 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        "DTW_SESSION=new&STEP=debit&AMT=40&FROM_ID=1",
    ));
    let sid = session_of(&r1.body);
    // A bogus STEP name fails the request; the gateway aborts the session.
    let r2 = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        &format!("DTW_SESSION={sid}&STEP=nonexistent"),
    ));
    assert_eq!(r2.status, 500);
    assert_eq!(gw.sessions().unwrap().live(), 0);
    let mut conn = db.connect();
    let r = conn
        .execute("SELECT balance FROM acct WHERE id = 1")
        .unwrap();
    assert_eq!(
        r.rows().unwrap().rows[0][0],
        minisql::Value::Double(100.0),
        "the debit rolled back"
    );
}

#[test]
fn unknown_session_is_a_clean_400() {
    let (_db, gw) = gateway();
    let r = gw.handle(&CgiRequest::get(
        "/transfer.d2w/report",
        "DTW_SESSION=s999&STEP=show",
    ));
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown or expired session"));
}

#[test]
fn sessions_disabled_means_dtw_vars_are_ordinary_inputs() {
    let db = minisql::Database::new();
    db.run_script("CREATE TABLE acct (id INTEGER, balance DOUBLE)")
        .unwrap();
    let gw = Gateway::new(db); // no enable_sessions
    gw.add_macro(
        "echo.d2w",
        "%HTML_REPORT{got $(DTW_SESSION)%}\n%SQL(x){ SELECT 1 %}",
    )
    .unwrap();
    let r = gw.handle(&CgiRequest::get("/echo.d2w/report", "DTW_SESSION=new"));
    assert_eq!(r.status, 200);
    assert_eq!(r.body.trim(), "got new");
}
