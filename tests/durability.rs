//! End-to-end durability: the WAL, recovery, and checkpoints driven through
//! the public [`minisql::Database`] API, the way a deployment would hit them.
//!
//! Tests share one process; WAL crash points ([`dbgw_testkit::crash`]) are a
//! process-wide registry, so every test here serializes on [`serial`] — an
//! armed point must never fire in a neighbouring test's group-commit daemon.

use minisql::storage::RowId;
use minisql::wal::{DurabilityConfig, LOG_FILE};
use minisql::{Database, Value};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Std-only temp dir, removed on drop.
struct TempDir(PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(tag: &str) -> TempDir {
    let dir = std::env::temp_dir().join(format!("dbgw-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    TempDir(dir)
}

/// Open with explicit knobs so the ambient environment cannot skew a test:
/// fsync on, no group-commit linger, effectively-never automatic checkpoints.
fn open(dir: &Path) -> Database {
    let config = DurabilityConfig {
        fsync: true,
        group_commit_us: 0,
        checkpoint_bytes: u64::MAX,
    };
    Database::open_with_config(
        dir,
        &config,
        &dbgw_cache::CacheConfig::default(),
        Arc::new(dbgw_obs::StdClock::new()),
    )
    .unwrap()
}

fn count(db: &Database, table: &str) -> i64 {
    let mut conn = db.connect();
    let r = conn
        .execute(&format!("SELECT COUNT(*) FROM {table}"))
        .unwrap();
    match r.rows().unwrap().rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("unexpected COUNT type: {v:?}"),
    }
}

/// The observable content of a table: every row with its stable id.
fn rows_with_ids(db: &Database, table: &str) -> Vec<(RowId, Vec<Value>)> {
    let state = db.pin();
    let t = &state.tables[table];
    t.heap.iter().map(|(id, row)| (id, row.to_vec())).collect()
}

#[test]
fn committed_statements_survive_close_and_reopen() {
    let _guard = serial();
    let tmp = temp_dir("reopen");
    {
        let db = open(&tmp.0);
        db.run_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20));
             CREATE INDEX t_name ON t (name);
             INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three');
             UPDATE t SET name = 'TWO' WHERE id = 2;
             DELETE FROM t WHERE id = 3;",
        )
        .unwrap();
        db.close();
    }
    let db = open(&tmp.0);
    let mut conn = db.connect();
    let r = conn.execute("SELECT id, name FROM t ORDER BY id").unwrap();
    assert_eq!(
        r.rows().unwrap().rows,
        vec![
            vec![Value::Int(1), Value::Text("one".into())],
            vec![Value::Int(2), Value::Text("TWO".into())],
        ]
    );
    // The secondary index came back too (recovery rebuilds indexes).
    let r = conn.execute("SELECT id FROM t WHERE name = 'TWO'").unwrap();
    assert_eq!(r.rows().unwrap().rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn short_write_tail_is_truncated_to_last_whole_record() {
    let _guard = serial();
    let tmp = temp_dir("shortwrite");
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
        let mut conn = db.connect();
        for n in 0..10 {
            conn.execute(&format!("INSERT INTO t VALUES ({n})"))
                .unwrap();
        }
        db.close();
    }
    let log = tmp.0.join(LOG_FILE);
    let full = std::fs::read(&log).unwrap();
    // Cut mid-record (3 bytes shy of the end): a torn final append.
    let cut = full.len() as u64 - 3;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&log)
        .unwrap()
        .set_len(cut)
        .unwrap();
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 9, "exactly the torn record is lost");
    // Recovery truncated the file in place to the valid prefix.
    assert!(std::fs::metadata(&log).unwrap().len() < cut);
    // The reopened database keeps working past the old torn point.
    let mut conn = db.connect();
    conn.execute("INSERT INTO t VALUES (99)").unwrap();
    db.close();
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 10);
}

#[test]
fn bit_flip_tail_is_discarded_by_checksum() {
    let _guard = serial();
    let tmp = temp_dir("bitflip");
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
        let mut conn = db.connect();
        for n in 0..5 {
            conn.execute(&format!("INSERT INTO t VALUES ({n})"))
                .unwrap();
        }
        db.close();
    }
    let log = tmp.0.join(LOG_FILE);
    let mut bytes = std::fs::read(&log).unwrap();
    // Flip one bit in the last record's payload: the length is intact, so
    // only the checksum can catch it.
    let last = bytes.len() - 2;
    bytes[last] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 4, "checksum rejects the corrupt record");
}

#[test]
fn recovery_is_idempotent_across_repeated_reopens() {
    let _guard = serial();
    let tmp = temp_dir("idempotent");
    {
        let db = open(&tmp.0);
        db.run_script(
            "CREATE TABLE a (n INTEGER PRIMARY KEY);
             INSERT INTO a VALUES (1), (2), (3);
             CREATE TABLE doomed (n INTEGER);
             INSERT INTO doomed VALUES (7);
             DROP TABLE doomed;
             DELETE FROM a WHERE n = 2;",
        )
        .unwrap();
        db.close();
    }
    // Replaying the same log twice (reopen without writing) must converge on
    // the same state, byte for byte in content terms.
    let first = {
        let db = open(&tmp.0);
        let rows = rows_with_ids(&db, "a");
        db.close();
        rows
    };
    let db = open(&tmp.0);
    assert_eq!(rows_with_ids(&db, "a"), first);
    assert!(!db.pin().tables.contains_key("doomed"));
}

#[test]
fn row_ids_are_stable_across_checkpoint_and_recovery() {
    let _guard = serial();
    let tmp = temp_dir("rowids");
    let before;
    {
        let db = open(&tmp.0);
        db.run_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10));
             INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d'), (5,'e');
             DELETE FROM t WHERE id = 2;
             DELETE FROM t WHERE id = 4;",
        )
        .unwrap();
        before = rows_with_ids(&db, "t");
        db.checkpoint_now().unwrap();
        db.close();
    }
    let db = open(&tmp.0);
    assert_eq!(
        rows_with_ids(&db, "t"),
        before,
        "checkpoint + recovery must not renumber surviving rows"
    );
    // A post-checkpoint append addresses rows by those same ids.
    let mut conn = db.connect();
    conn.execute("UPDATE t SET v = 'C' WHERE id = 3").unwrap();
    db.close();
    let db = open(&tmp.0);
    let rows = rows_with_ids(&db, "t");
    let updated = rows.iter().find(|(_, r)| r[0] == Value::Int(3)).unwrap();
    assert_eq!(updated.1[1], Value::Text("C".into()));
    assert_eq!(
        updated.0,
        before
            .iter()
            .find(|(_, r)| r[0] == Value::Int(3))
            .unwrap()
            .0
    );
}

#[test]
fn simulated_crash_loses_only_unlogged_tail_and_stays_consistent() {
    let _guard = serial();
    let tmp = temp_dir("crashpoint");
    dbgw_testkit::crash::disarm_all();
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
        let mut conn = db.connect();
        // Fire the crash point on a later batch: everything after it is
        // acked to the client but never reaches disk — a real power cut
        // between ack and platter.
        dbgw_testkit::crash::arm("wal.append", 3);
        for n in 0..20 {
            conn.execute(&format!("INSERT INTO t VALUES ({n})"))
                .unwrap();
        }
        assert_eq!(count(&db, "t"), 20, "in-memory state saw every ack");
        db.close();
    }
    dbgw_testkit::crash::disarm_all();
    let db = open(&tmp.0);
    let survivors = count(&db, "t");
    assert!(
        (0..20).contains(&survivors),
        "a strict prefix survives, got {survivors}"
    );
    // Whatever survived is well-formed and writable.
    let mut conn = db.connect();
    conn.execute("INSERT INTO t VALUES (100)").unwrap();
    assert_eq!(count(&db, "t"), survivors + 1);
}

#[test]
fn torn_batch_crash_point_is_cut_by_recovery() {
    let _guard = serial();
    let tmp = temp_dir("tornpoint");
    dbgw_testkit::crash::disarm_all();
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
        let mut conn = db.connect();
        dbgw_testkit::crash::arm("wal.torn", 4);
        for n in 0..12 {
            conn.execute(&format!("INSERT INTO t VALUES ({n})"))
                .unwrap();
        }
        db.close();
    }
    dbgw_testkit::crash::disarm_all();
    let db = open(&tmp.0);
    let survivors = count(&db, "t");
    assert!(
        (0..12).contains(&survivors),
        "the half-written batch must be cut, got {survivors}"
    );
}

#[test]
fn checkpoint_crash_before_rename_preserves_the_old_log() {
    let _guard = serial();
    let tmp = temp_dir("ckptcrash");
    dbgw_testkit::crash::disarm_all();
    {
        let db = open(&tmp.0);
        db.run_script(
            "CREATE TABLE t (n INTEGER);
             INSERT INTO t VALUES (1), (2), (3);",
        )
        .unwrap();
        dbgw_testkit::crash::arm("checkpoint.before_rename", 1);
        db.checkpoint_now().unwrap();
        db.close();
    }
    dbgw_testkit::crash::disarm_all();
    // The aborted checkpoint left its scratch file behind — exactly what a
    // real crash would leave — and recovery must ignore it.
    assert!(tmp.0.join(minisql::checkpoint::TMP_FILE).exists());
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 3);
}

#[test]
fn fsync_off_still_recovers_cleanly_on_orderly_close() {
    let _guard = serial();
    let tmp = temp_dir("nofsync");
    {
        let config = DurabilityConfig {
            fsync: false,
            group_commit_us: 0,
            checkpoint_bytes: u64::MAX,
        };
        let db = Database::open_with_config(
            &tmp.0,
            &config,
            &dbgw_cache::CacheConfig::default(),
            Arc::new(dbgw_obs::StdClock::new()),
        )
        .unwrap();
        db.run_script("CREATE TABLE t (n INTEGER); INSERT INTO t VALUES (1)")
            .unwrap();
        db.close();
    }
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 1);
}

// ---------------------------------------------------------------------------
// Planner statistics across the durability boundary
// ---------------------------------------------------------------------------
//
// Table statistics live inside `TableData`, so they ride the same snapshot
// publication and recovery machinery as rows and indexes. These tests pin
// the lifecycle: statistics are rebuilt by recovery (both from a checkpoint
// image and from a raw WAL replay), reflect exactly the rows that survived,
// and are never corrupted by statements that fail or writers that die.

/// The published statistics for `table`, if statistics are enabled.
fn table_stats(db: &Database, table: &str) -> Option<minisql::stats::TableStats> {
    db.pin().tables[table].stats.clone()
}

#[test]
fn stats_survive_checkpoint_and_recovery() {
    let _guard = serial();
    let tmp = temp_dir("statsckpt");
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
        let mut conn = db.connect();
        for i in 0..40i64 {
            conn.execute_with_params(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i * 3)],
            )
            .unwrap();
        }
        conn.execute("DELETE FROM t WHERE id >= 30").unwrap();
        if let Some(stats) = table_stats(&db, "t") {
            assert_eq!(stats.rows, 30, "live stats track inserts and deletes");
        }
        db.checkpoint_now().unwrap();
        db.close();
    }
    // Reopen from the checkpoint image: recovery must rebuild statistics so
    // the cost model never plans against a blank slate after a restart.
    let db = open(&tmp.0);
    assert_eq!(count(&db, "t"), 30);
    if let Some(stats) = table_stats(&db, "t") {
        assert_eq!(stats.rows, 30, "recovered stats match surviving rows");
        let id = &stats.columns[0];
        assert_eq!(id.min, Some(Value::Int(0)));
        assert_eq!(id.max, Some(Value::Int(29)));
        assert_eq!(id.nulls, 0);
        assert!(id.histogram.is_some(), "numeric column regains a histogram");
    }
}

#[test]
fn stats_match_survivors_after_simulated_crash() {
    let _guard = serial();
    let tmp = temp_dir("statscrash");
    dbgw_testkit::crash::disarm_all();
    {
        let db = open(&tmp.0);
        db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
        let mut conn = db.connect();
        // Lose everything after the third batch: acked but never durable.
        dbgw_testkit::crash::arm("wal.append", 3);
        for n in 0..25 {
            conn.execute(&format!("INSERT INTO t VALUES ({n})"))
                .unwrap();
        }
        db.close();
    }
    dbgw_testkit::crash::disarm_all();
    let db = open(&tmp.0);
    let survivors = count(&db, "t");
    if let Some(stats) = table_stats(&db, "t") {
        assert_eq!(
            stats.rows, survivors as u64,
            "stats describe the recovered world, not the pre-crash one"
        );
        if survivors > 0 {
            assert_eq!(
                stats.columns[0].max,
                Some(Value::Int(survivors - 1)),
                "max reflects the surviving prefix"
            );
        }
    }
}

#[test]
fn failed_statements_leave_stats_coherent() {
    let _guard = serial();
    let tmp = temp_dir("statsfail");
    let db = open(&tmp.0);
    db.run_script(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER);
         INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)",
    )
    .unwrap();
    let before = table_stats(&db, "t");
    let mut conn = db.connect();
    // The third row violates the primary key: the whole statement fails and
    // its working copy — including any stats updates for rows 50/51 — must
    // be discarded, exactly like the rows themselves.
    let err = conn.execute("INSERT INTO t VALUES (50, 1), (51, 2), (1, 3)");
    assert!(err.is_err(), "duplicate key must fail the statement");
    assert_eq!(count(&db, "t"), 3);
    let after = table_stats(&db, "t");
    match (&before, &after) {
        (Some(b), Some(a)) => {
            assert_eq!(a.rows, b.rows, "failed insert leaked into stats");
            assert_eq!(
                a.columns[0].max, b.columns[0].max,
                "phantom max from a rolled-back row"
            );
        }
        (None, None) => {}
        other => panic!("stats flipped presence across a failed statement: {other:?}"),
    }
    // The table keeps working and stats keep tracking after the failure.
    conn.execute("INSERT INTO t VALUES (4, 40)").unwrap();
    if let Some(stats) = table_stats(&db, "t") {
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].max, Some(Value::Int(4)));
    }
}

#[test]
fn stats_refresh_past_threshold_widens_histograms() {
    let _guard = serial();
    let tmp = temp_dir("statsrefresh");
    let db = open(&tmp.0);
    db.run_script("CREATE TABLE t (n INTEGER)").unwrap();
    if table_stats(&db, "t").is_none() && !minisql::stats::config().enabled {
        return; // stats disabled in this environment; nothing to verify
    }
    let refreshes_before = dbgw_obs::metrics().stats_refreshes.get();
    let mut conn = db.connect();
    conn.execute("BEGIN").unwrap();
    // Far past the refresh threshold (default 256 writes): incremental
    // maintenance must hand off to full rebuilds along the way, so the
    // histogram covers the late, larger values too.
    for n in 0..600i64 {
        conn.execute_with_params("INSERT INTO t VALUES (?)", &[Value::Int(n * 10)])
            .unwrap();
    }
    conn.execute("COMMIT").unwrap();
    let stats = table_stats(&db, "t").expect("stats enabled");
    assert_eq!(stats.rows, 600);
    let col = &stats.columns[0];
    assert_eq!(col.max, Some(Value::Int(5990)));
    let hist = col.histogram.as_ref().expect("numeric histogram");
    // fraction_below(hi) ≈ 1 only if rebuilds widened the histogram past the
    // values that arrived after the initial build.
    assert!(
        hist.fraction_below(6000.0) > 0.99,
        "histogram never refreshed past the initial build"
    );
    assert!(
        dbgw_obs::metrics().stats_refreshes.get() > refreshes_before,
        "no refresh counted past the threshold"
    );
    // Distinct estimate is sane for 600 distinct values (linear counting
    // saturates gracefully; it must not report a tiny NDV).
    assert!(col.distinct() > 150, "NDV collapsed: {}", col.distinct());
}
