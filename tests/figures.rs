//! F2/F3 — functional reproduction of Figures 2 and 3.
//!
//! Figure 2 is the sample HTML input form; Figure 3 is its rendering with the
//! user's selections, and §2.2 lists the exact variable set the Web client
//! sends when Submit Query is clicked. We serve the form through the gateway,
//! drive it with the programmatic browser, and assert the wire-format
//! submission matches the paper byte for byte (modulo URL encoding, which the
//! paper elides).

use dbgw_cgi::{FormFill, Gateway, QueryString};
use dbgw_html::{Form, FormMethod};

/// The Figure 2 form, embedded in a macro's %HTML_INPUT section.
const FIGURE2_MACRO: &str = r#"%SQL{ SELECT url FROM urldb %}
%HTML_INPUT{<TITLE>DB2 WWW URL Query</TITLE>
<H1>Query URL Information</H1>
<P>
<FORM METHOD="post" ACTION="/cgi-bin/db2www.exe/urlquery.d2w/report">
Please enter a search string:
<INPUT TYPE="text" NAME="SEARCH" SIZE=20>
<P>
Please select what field(s) to search for the string above:
<P>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<br>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<br>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">Description
<P>
Please select what field(s) to see in the report:
<br>
<SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
<OPTION VALUE="url">URL
<OPTION VALUE="title" SELECTED> Title
<OPTION VALUE="desc">Description
</SELECT>
<hr>
Show SQL statement on output?
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<P>
<INPUT TYPE="submit" VALUE="Submit Query">
<INPUT TYPE="reset" VALUE="Reset Input">
</FORM>
%}
%HTML_REPORT{%EXEC_SQL%}"#;

fn gateway() -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80), description VARCHAR(200))",
    )
    .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", FIGURE2_MACRO).unwrap();
    gw
}

#[test]
fn figure2_form_served_intact() {
    let resp = gateway().get("urlquery.d2w", "input", "");
    assert_eq!(resp.status, 200);
    // The paper's form structure survives the gateway untouched.
    assert!(resp.body.contains("<TITLE>DB2 WWW URL Query</TITLE>"));
    assert!(resp.body.contains("NAME=\"SEARCH\" SIZE=20"));
    assert!(dbgw_html::check_balanced(&resp.body).is_ok());
}

#[test]
fn figure3_submission_variable_set() {
    // §2.2: "for the selections that the user has made in Figure 3 the
    // following is the value of the input variables that the Web client
    // sends": SEARCH="", USE_URL="yes", USE_TITLE="yes", USE_DESC="",
    // DBFIELD="title", DBFIELD="desc", SHOWSQL="".
    //
    // USE_DESC is shown with a null value in the paper's listing even though
    // an unchecked checkbox sends nothing — the two are defined to be
    // identical (§2.2), so our browser model sends nothing and the *observed
    // variable values* still match.
    let resp = gateway().get("urlquery.d2w", "input", "");
    let form = Form::parse_first(&resp.body).expect("form parses");
    assert_eq!(form.method, FormMethod::Post);
    assert_eq!(form.action, "/cgi-bin/db2www.exe/urlquery.d2w/report");

    // The Figure 3 user additionally selected "desc" in the multi-SELECT.
    let fill = FormFill::defaults().select("DBFIELD", &["title", "desc"]);
    let submission = fill.submission(&form);
    assert_eq!(
        submission.to_wire(),
        "SEARCH=&USE_URL=yes&USE_TITLE=yes&DBFIELD=title&DBFIELD=desc&SHOWSQL="
    );

    // Round-trip through the CGI layer: the engine sees the same variables.
    let parsed = QueryString::parse(&submission.to_wire());
    assert_eq!(parsed.get("SEARCH"), Some(""));
    assert_eq!(parsed.get("USE_URL"), Some("yes"));
    assert_eq!(parsed.get("USE_TITLE"), Some("yes"));
    assert_eq!(parsed.get("USE_DESC"), None); // == null == undefined
    assert_eq!(parsed.get_all("DBFIELD"), vec!["title", "desc"]);
    assert_eq!(parsed.get("SHOWSQL"), Some(""));
}

#[test]
fn figure3_multi_select_becomes_list_variable() {
    // "When multiple selections are made to DBFIELD, multiple values for
    // DBFIELD will be returned by the Web client" — and the engine joins
    // them with the default comma separator (§3.1.3).
    let mac = dbgw_core::parse_macro("%HTML_INPUT{DBFIELD=[$(DBFIELD)]%}").unwrap();
    let out = dbgw_core::Engine::new()
        .process_input(
            &mac,
            &[
                ("DBFIELD".into(), "title".into()),
                ("DBFIELD".into(), "desc".into()),
            ],
        )
        .unwrap();
    assert_eq!(out, "DBFIELD=[title,desc]");
}
