//! Robustness: the public parsers must be total — any input yields
//! `Ok` or a structured error, never a panic, hang, or bad slice. Gateways
//! face the open internet; the paper's system crashed CGI processes on bad
//! input, ours must not.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn macro_parser_total(input in "\\PC{0,300}") {
        let _ = dbgw_core::parse_macro(&input);
    }

    #[test]
    fn macro_parser_total_on_section_shaped_input(
        input in "(%[A-Za-z_{}()]{0,12}[ \\n]?)*\\PC{0,80}"
    ) {
        let _ = dbgw_core::parse_macro(&input);
    }

    #[test]
    fn sql_parser_total(input in "\\PC{0,300}") {
        let _ = minisql::parse(&input);
    }

    #[test]
    fn sql_parser_total_on_sql_shaped_input(
        input in "(SELECT|INSERT|UPDATE|CREATE|%|'|\\(|\\)|,|\\*| |[a-z0-9])+"
    ) {
        let _ = minisql::parse(&input);
    }

    #[test]
    fn html_tokenizer_total(input in "\\PC{0,300}") {
        let tokens: Vec<_> = dbgw_html::Tokenizer::new(&input).collect();
        // Tokenization must also terminate with bounded output.
        prop_assert!(tokens.len() <= input.len() + 1);
    }

    #[test]
    fn form_parser_total(input in "(<[a-z =\"/]{0,20}>|\\PC{0,10})*") {
        let _ = dbgw_html::Form::parse_all(&input);
    }

    #[test]
    fn query_string_parser_total(input in "\\PC{0,300}") {
        let _ = dbgw_cgi::QueryString::parse(&input);
    }

    #[test]
    fn csv_import_total(input in "\\PC{0,200}") {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (a VARCHAR(50), b VARCHAR(50))").unwrap();
        let _ = minisql::csv::import_table(&db, "t", &input);
    }

    #[test]
    fn substitution_total(template in "\\PC{0,200}") {
        let env = dbgw_core::Env::new();
        let mut ev = dbgw_core::Evaluator::new(&env, &dbgw_core::DenyRunner);
        let out = ev.substitute(&template).unwrap();
        // With an empty environment, every $(ref) vanishes and everything
        // else survives; output can never be longer than input + escapes.
        prop_assert!(out.len() <= template.len() + 8);
    }

    #[test]
    fn base64_decode_total(input in "\\PC{0,100}") {
        let _ = dbgw_cgi::base64_decode(&input);
    }
}

/// Hand-picked crashers: inputs that have broken parsers of this shape before.
#[test]
fn known_nasty_inputs() {
    let nasties = [
        "%",
        "%}",
        "%{",
        "%{%}",
        "%DEFINE",
        "%DEFINE{",
        "%DEFINE a =",
        "%DEFINE a = \"",
        "%SQL",
        "%SQL{",
        "%SQL(){ x %}",
        "%SQL_REPORT{",
        "%HTML_INPUT",
        "%HTML_INPUT{$($($(",
        "%HTML_INPUT{$()%}",
        "%HTML_INPUT{$$%}",
        "%HTML_INPUT{$%}",
        "\u{0}",
        "%HTML_INPUT{\u{FFFD}%}",
    ];
    for input in nasties {
        let _ = dbgw_core::parse_macro(input);
    }
    let sql_nasties = [
        "'",
        "''",
        "\"",
        "SELECT",
        "SELECT (",
        "SELECT ((((((((((1))))))))))",
        "SELECT * FROM",
        "INSERT INTO t VALUES",
        "SELECT 1 UNION",
        "CASE",
        "SELECT CASE WHEN",
        "SELECT CAST(1 AS",
        "-9223372036854775808",
        "SELECT --",
    ];
    for input in sql_nasties {
        let _ = minisql::parse(input);
    }
}
