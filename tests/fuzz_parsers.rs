//! Robustness: the public parsers must be total — any input yields
//! `Ok` or a structured error, never a panic, hang, or bad slice. Gateways
//! face the open internet; the paper's system crashed CGI processes on bad
//! input, ours must not.

use dbgw_testkit::gen::*;
use dbgw_testkit::{prop_assert, props};

/// Fragments that steer random input toward macro-section syntax.
const SECTION_TOKENS: &[&str] = &[
    "%SQL{",
    "%SQL_REPORT{",
    "%HTML_INPUT{",
    "%HTML_REPORT{",
    "%DEFINE",
    "%ROW{",
    "%EXEC_SQL",
    "%}",
    "%{",
    "{",
    "}",
    "(",
    ")",
    "$(",
    "$$",
    " ",
    "\n",
    "a",
    "X_",
    "=",
    "\"",
];

/// Fragments that steer random input toward SQL syntax.
const SQL_TOKENS: &[&str] = &[
    "SELECT", "INSERT", "UPDATE", "CREATE", "%", "'", "(", ")", ",", "*", " ", "a", "b", "z", "0",
    "9",
];

/// Fragments that steer random input toward the planner-v2 grammar: set
/// operations, window functions, and subqueries.
const SQL_V2_TOKENS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "UNION",
    "INTERSECT",
    "EXCEPT",
    "ALL",
    "OVER",
    "PARTITION",
    "BY",
    "ORDER",
    "ROW_NUMBER",
    "RANK",
    "SUM",
    "IN",
    "EXISTS",
    "JOIN",
    "ON",
    "(",
    ")",
    ",",
    "*",
    " ",
    "t",
    "u",
    "k",
    "v",
    "1",
    "'x'",
    "=",
    "<",
];

/// Fragments that steer random input toward HTML-form syntax.
const FORM_TOKENS: &[&str] = &[
    "<form>",
    "</form>",
    "<input name=\"a\">",
    "<input type=\"text\" value=\"v\"/>",
    "<select>",
    "<",
    ">",
    "/",
    "\"",
    "=",
    " ",
    "x",
];

props! {
    config(cases = 256);

    fn macro_parser_total(input in printable(0..=300)) {
        let _ = dbgw_core::parse_macro(&input);
    }

    fn macro_parser_total_on_section_shaped_input(
        shaped in tokens(SECTION_TOKENS, 0..=12),
        tail in printable(0..=80),
    ) {
        let _ = dbgw_core::parse_macro(&format!("{shaped}{tail}"));
    }

    fn sql_parser_total(input in printable(0..=300)) {
        let _ = minisql::parse(&input);
    }

    fn sql_parser_total_on_sql_shaped_input(input in tokens(SQL_TOKENS, 1..=24)) {
        let _ = minisql::parse(&input);
    }

    fn sql_parser_total_on_planner_v2_grammar(input in tokens(SQL_V2_TOKENS, 1..=32)) {
        let _ = minisql::parse(&input);
    }

    fn sql_printer_round_trips_fuzzed_statements(input in tokens(SQL_V2_TOKENS, 1..=32)) {
        // Any statement that parses must print back to SQL that re-parses to
        // the identical AST: print is a faithful inverse of parse.
        if let Ok(stmt) = minisql::parse(&input) {
            let printed = stmt.to_string();
            match minisql::parse(&printed) {
                Ok(again) => prop_assert!(
                    again == stmt,
                    "round-trip changed AST:\n  input:   {input:?}\n  printed: {printed:?}"
                ),
                Err(e) => prop_assert!(
                    false,
                    "printed SQL fails to parse: {printed:?} ({e}) from {input:?}"
                ),
            }
        }
    }

    fn html_tokenizer_total(input in printable(0..=300)) {
        let tokens: Vec<_> = dbgw_html::Tokenizer::new(&input).collect();
        // Tokenization must also terminate with bounded output.
        prop_assert!(tokens.len() <= input.len() + 1);
    }

    fn form_parser_total(
        shaped in tokens(FORM_TOKENS, 0..=8),
        tail in printable(0..=10),
    ) {
        let _ = dbgw_html::Form::parse_all(&format!("{shaped}{tail}"));
    }

    fn query_string_parser_total(input in printable(0..=300)) {
        let _ = dbgw_cgi::QueryString::parse(&input);
    }

    fn csv_import_total(input in printable(0..=200)) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (a VARCHAR(50), b VARCHAR(50))").unwrap();
        let _ = minisql::csv::import_table(&db, "t", &input);
    }

    fn substitution_total(template in printable(0..=200)) {
        let env = dbgw_core::Env::new();
        let mut ev = dbgw_core::Evaluator::new(&env, &dbgw_core::DenyRunner);
        let out = ev.substitute(&template).unwrap();
        // With an empty environment, every $(ref) vanishes and everything
        // else survives; output can never be longer than input + escapes.
        prop_assert!(out.len() <= template.len() + 8);
    }

    fn base64_decode_total(input in printable(0..=100)) {
        let _ = dbgw_cgi::base64_decode(&input);
    }

    fn sql_normalizer_total_and_idempotent(input in printable(0..=300)) {
        let once = dbgw_cache::normalize_sql(&input);
        let twice = dbgw_cache::normalize_sql(&once);
        prop_assert!(once == twice, "not idempotent: {:?} -> {:?} -> {:?}", input, once, twice);
    }

    fn sql_normalizer_total_on_sql_shaped_input(input in tokens(SQL_TOKENS, 1..=24)) {
        let once = dbgw_cache::normalize_sql(&input);
        prop_assert!(dbgw_cache::normalize_sql(&once) == once);
    }
}

/// Regression pinned from a recorded proptest shrink (`.proptest-regressions`,
/// now retired): `<a᭎` — an unterminated tag whose name ends in a multi-byte
/// character — once sliced mid-codepoint. Every parser that sees raw request
/// text must stay total on it.
#[test]
fn regression_unterminated_tag_multibyte() {
    let input = "<a᭎";
    let tokens: Vec<_> = dbgw_html::Tokenizer::new(input).collect();
    assert!(tokens.len() <= input.len() + 1);
    let _ = dbgw_html::Form::parse_all(input);
    let _ = dbgw_core::parse_macro(input);
    let _ = minisql::parse(input);
    let _ = dbgw_cgi::QueryString::parse(input);
}

/// Hand-picked crashers: inputs that have broken parsers of this shape before.
#[test]
fn known_nasty_inputs() {
    let nasties = [
        "%",
        "%}",
        "%{",
        "%{%}",
        "%DEFINE",
        "%DEFINE{",
        "%DEFINE a =",
        "%DEFINE a = \"",
        "%SQL",
        "%SQL{",
        "%SQL(){ x %}",
        "%SQL_REPORT{",
        "%HTML_INPUT",
        "%HTML_INPUT{$($($(",
        "%HTML_INPUT{$()%}",
        "%HTML_INPUT{$$%}",
        "%HTML_INPUT{$%}",
        "\u{0}",
        "%HTML_INPUT{\u{FFFD}%}",
    ];
    for input in nasties {
        let _ = dbgw_core::parse_macro(input);
    }
    let sql_nasties = [
        "'",
        "''",
        "\"",
        "SELECT",
        "SELECT (",
        "SELECT ((((((((((1))))))))))",
        "SELECT * FROM",
        "INSERT INTO t VALUES",
        "SELECT 1 UNION",
        "CASE",
        "SELECT CASE WHEN",
        "SELECT CAST(1 AS",
        "-9223372036854775808",
        "SELECT --",
    ];
    for input in sql_nasties {
        let _ = minisql::parse(input);
    }
}

/// Cache-key safety: `normalize_sql` folds case and whitespace *outside*
/// string literals only. Statements that differ inside a literal must never
/// share a cache key, no matter what macro-substitution shrapnel (`$(`,
/// quotes, comment markers) the literal carries — an alias here would serve
/// one user's rows to another's query.
#[test]
fn normalization_never_aliases_distinct_literals() {
    let must_differ: &[(&str, &str)] = &[
        // Case inside a literal is data, not syntax.
        (
            "SELECT * FROM t WHERE s = 'abc'",
            "SELECT * FROM t WHERE s = 'ABC'",
        ),
        // So is interior whitespace.
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "SELECT * FROM t WHERE s = 'a  b'",
        ),
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "SELECT * FROM t WHERE s = 'a\tb'",
        ),
        // Unsubstituted macro shrapnel in a literal stays verbatim.
        (
            "SELECT * FROM t WHERE s = '$(X)'",
            "SELECT * FROM t WHERE s = '$(x)'",
        ),
        // An escaped quote keeps the literal open: the trailing AND is data
        // in one statement and syntax in the other.
        (
            "SELECT * FROM t WHERE s = 'it''s' AND n = 1",
            "SELECT * FROM t WHERE s = 'it''S' AND n = 1",
        ),
        // A comment marker inside a literal is data; outside it swallows the
        // rest of the line.
        (
            "SELECT * FROM t WHERE s = '-- not a comment'",
            "SELECT * FROM t WHERE s = '-- NOT a comment'",
        ),
        // Quoted identifiers are case-sensitive too.
        ("SELECT \"Col\" FROM t", "SELECT \"col\" FROM t"),
        // A comment runs to end of line, not end of statement: text after
        // the newline is live, text on the comment line is not.
        ("SELECT 1 -- c\n+1", "SELECT 1 -- c +1"),
    ];
    for (a, b) in must_differ {
        assert_ne!(
            dbgw_cache::normalize_sql(a),
            dbgw_cache::normalize_sql(b),
            "aliased: {a:?} vs {b:?}"
        );
    }

    let must_match: &[(&str, &str)] = &[
        // Case and whitespace outside literals fold away.
        ("SELECT  *  FROM t", "select * from t"),
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "select  *  from T where S = 'a b'",
        ),
        // Line comments vanish, and both spellings leave a token boundary.
        ("SELECT 1 -- c\n+1", "SELECT 1\n+1"),
        ("SELECT 1 -- one\n", "SELECT 1"),
    ];
    for (a, b) in must_match {
        assert_eq!(
            dbgw_cache::normalize_sql(a),
            dbgw_cache::normalize_sql(b),
            "should normalize together: {a:?} vs {b:?}"
        );
    }
}

/// Deterministic round-trip corpus: one statement per feature of the SQL
/// surface, including the planner-v2 additions (set operations with ALL,
/// window functions, subqueries in several positions). The fuzzed round-trip
/// property above rarely assembles deeply nested valid statements; this
/// corpus guarantees each construct is exercised every run.
#[test]
fn printer_round_trips_feature_corpus() {
    let corpus = [
        "SELECT 1",
        "SELECT DISTINCT k, v + 1 AS w FROM t WHERE k = 3 ORDER BY w DESC LIMIT 5 OFFSET 2",
        "SELECT t.k, u.v FROM t JOIN u ON t.k = u.k WHERE u.v BETWEEN 1 AND 9",
        "SELECT t.k FROM t LEFT JOIN u ON t.k = u.k AND u.v > 2 WHERE u.k IS NULL",
        "SELECT a.k FROM t AS a, u AS b WHERE a.k = b.k AND b.v IN (1, 2, 3)",
        "SELECT k FROM t WHERE s LIKE 'ab%' AND s NOT LIKE '%z' ESCAPE '!'",
        "SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t GROUP BY k HAVING COUNT(*) > 1",
        "SELECT CASE WHEN k = 1 THEN 'one' WHEN k = 2 THEN 'two' ELSE 'many' END FROM t",
        "SELECT CAST(v AS DOUBLE) FROM t WHERE d = DATE '1996-06-04'",
        "SELECT k FROM t WHERE v > (SELECT MAX(v) FROM u)",
        "SELECT k FROM t WHERE k IN (SELECT k FROM u WHERE v > 3)",
        "SELECT k FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.k = 9)",
        "SELECT k FROM t UNION SELECT k FROM u",
        "SELECT k FROM t UNION ALL SELECT k FROM u ORDER BY 1 LIMIT 3",
        "SELECT k FROM t EXCEPT SELECT k FROM u",
        "SELECT k FROM t EXCEPT ALL SELECT k FROM u",
        "SELECT k FROM t INTERSECT SELECT k FROM u",
        "SELECT k FROM t INTERSECT ALL SELECT k FROM u",
        "SELECT k, ROW_NUMBER() OVER (PARTITION BY k ORDER BY v DESC) FROM t",
        "SELECT RANK() OVER (ORDER BY v), SUM(v) OVER (PARTITION BY k) FROM t",
        "SELECT SUM(v + 1) OVER (PARTITION BY k, s ORDER BY v, k DESC) FROM t",
        "SELECT -v, NOT (k = 1) FROM t WHERE v * 2 + 1 >= k / 3 - 4",
        "INSERT INTO t (k, v) VALUES (1, 2), (3, 4)",
        "INSERT INTO t VALUES (NULL, 'it''s', 2.5, DATE '1996-01-31')",
        "UPDATE t SET v = v + 1, s = 'x' WHERE k IN (SELECT k FROM u)",
        "DELETE FROM t WHERE v BETWEEN 1 AND 2",
        "CREATE TABLE t (k INTEGER PRIMARY KEY, s VARCHAR(10) NOT NULL, d DOUBLE)",
        "CREATE INDEX t_k ON t (k)",
        "DROP TABLE t",
        "DROP INDEX t_k",
        "EXPLAIN SELECT k FROM t WHERE k = 1",
        "EXPLAIN ANALYZE SELECT k FROM t",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
    ];
    for sql in corpus {
        let ast = minisql::parse(sql).unwrap_or_else(|e| panic!("corpus entry fails: {sql} ({e})"));
        let printed = ast.to_string();
        let reparsed = minisql::parse(&printed)
            .unwrap_or_else(|e| panic!("printed form fails: {printed} ({e}) from {sql}"));
        assert_eq!(
            reparsed, ast,
            "round-trip changed AST for {sql} -> {printed}"
        );
        // And printing is a fixpoint after one round.
        assert_eq!(
            reparsed.to_string(),
            printed,
            "printer not idempotent for {sql}"
        );
    }
}

/// Slow-query digests must mask literals *inside subqueries and new grammar*
/// too — a digest that leaks only-in-subquery literals would both explode
/// digest cardinality and leak user data into /stats.
#[test]
fn digest_masks_literals_inside_subqueries_and_windows() {
    let same_digest: &[(&str, &str)] = &[
        (
            "SELECT k FROM t WHERE v > (SELECT MAX(v) FROM u WHERE id = 123)",
            "SELECT k FROM t WHERE v > (SELECT MAX(v) FROM u WHERE id = 999)",
        ),
        (
            "SELECT k FROM t WHERE k IN (SELECT k FROM u WHERE s = 'alice')",
            "SELECT k FROM t WHERE k IN (SELECT k FROM u WHERE s = 'bob')",
        ),
        (
            "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM u WHERE v = 5)",
            "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM u WHERE v = 77)",
        ),
        (
            "SELECT k FROM t UNION ALL SELECT k FROM u WHERE v = 3",
            "SELECT k FROM t UNION ALL SELECT k FROM u WHERE v = 4",
        ),
        (
            "SELECT SUM(v) OVER (PARTITION BY k) FROM t WHERE v = 1.5",
            "SELECT SUM(v) OVER (PARTITION BY k) FROM t WHERE v = 9.25",
        ),
    ];
    for (a, b) in same_digest {
        assert_eq!(
            dbgw_cache::digest_sql(a),
            dbgw_cache::digest_sql(b),
            "literals not masked: {a} vs {b}"
        );
    }
    // Different shapes must stay distinct.
    assert_ne!(
        dbgw_cache::digest_sql("SELECT k FROM t WHERE k IN (SELECT k FROM u)"),
        dbgw_cache::digest_sql("SELECT k FROM t WHERE k IN (SELECT v FROM u)"),
    );
}
