//! Robustness: the public parsers must be total — any input yields
//! `Ok` or a structured error, never a panic, hang, or bad slice. Gateways
//! face the open internet; the paper's system crashed CGI processes on bad
//! input, ours must not.

use dbgw_testkit::gen::*;
use dbgw_testkit::{prop_assert, props};

/// Fragments that steer random input toward macro-section syntax.
const SECTION_TOKENS: &[&str] = &[
    "%SQL{",
    "%SQL_REPORT{",
    "%HTML_INPUT{",
    "%HTML_REPORT{",
    "%DEFINE",
    "%ROW{",
    "%EXEC_SQL",
    "%}",
    "%{",
    "{",
    "}",
    "(",
    ")",
    "$(",
    "$$",
    " ",
    "\n",
    "a",
    "X_",
    "=",
    "\"",
];

/// Fragments that steer random input toward SQL syntax.
const SQL_TOKENS: &[&str] = &[
    "SELECT", "INSERT", "UPDATE", "CREATE", "%", "'", "(", ")", ",", "*", " ", "a", "b", "z", "0",
    "9",
];

/// Fragments that steer random input toward HTML-form syntax.
const FORM_TOKENS: &[&str] = &[
    "<form>",
    "</form>",
    "<input name=\"a\">",
    "<input type=\"text\" value=\"v\"/>",
    "<select>",
    "<",
    ">",
    "/",
    "\"",
    "=",
    " ",
    "x",
];

props! {
    config(cases = 256);

    fn macro_parser_total(input in printable(0..=300)) {
        let _ = dbgw_core::parse_macro(&input);
    }

    fn macro_parser_total_on_section_shaped_input(
        shaped in tokens(SECTION_TOKENS, 0..=12),
        tail in printable(0..=80),
    ) {
        let _ = dbgw_core::parse_macro(&format!("{shaped}{tail}"));
    }

    fn sql_parser_total(input in printable(0..=300)) {
        let _ = minisql::parse(&input);
    }

    fn sql_parser_total_on_sql_shaped_input(input in tokens(SQL_TOKENS, 1..=24)) {
        let _ = minisql::parse(&input);
    }

    fn html_tokenizer_total(input in printable(0..=300)) {
        let tokens: Vec<_> = dbgw_html::Tokenizer::new(&input).collect();
        // Tokenization must also terminate with bounded output.
        prop_assert!(tokens.len() <= input.len() + 1);
    }

    fn form_parser_total(
        shaped in tokens(FORM_TOKENS, 0..=8),
        tail in printable(0..=10),
    ) {
        let _ = dbgw_html::Form::parse_all(&format!("{shaped}{tail}"));
    }

    fn query_string_parser_total(input in printable(0..=300)) {
        let _ = dbgw_cgi::QueryString::parse(&input);
    }

    fn csv_import_total(input in printable(0..=200)) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (a VARCHAR(50), b VARCHAR(50))").unwrap();
        let _ = minisql::csv::import_table(&db, "t", &input);
    }

    fn substitution_total(template in printable(0..=200)) {
        let env = dbgw_core::Env::new();
        let mut ev = dbgw_core::Evaluator::new(&env, &dbgw_core::DenyRunner);
        let out = ev.substitute(&template).unwrap();
        // With an empty environment, every $(ref) vanishes and everything
        // else survives; output can never be longer than input + escapes.
        prop_assert!(out.len() <= template.len() + 8);
    }

    fn base64_decode_total(input in printable(0..=100)) {
        let _ = dbgw_cgi::base64_decode(&input);
    }

    fn sql_normalizer_total_and_idempotent(input in printable(0..=300)) {
        let once = dbgw_cache::normalize_sql(&input);
        let twice = dbgw_cache::normalize_sql(&once);
        prop_assert!(once == twice, "not idempotent: {:?} -> {:?} -> {:?}", input, once, twice);
    }

    fn sql_normalizer_total_on_sql_shaped_input(input in tokens(SQL_TOKENS, 1..=24)) {
        let once = dbgw_cache::normalize_sql(&input);
        prop_assert!(dbgw_cache::normalize_sql(&once) == once);
    }
}

/// Regression pinned from a recorded proptest shrink (`.proptest-regressions`,
/// now retired): `<a᭎` — an unterminated tag whose name ends in a multi-byte
/// character — once sliced mid-codepoint. Every parser that sees raw request
/// text must stay total on it.
#[test]
fn regression_unterminated_tag_multibyte() {
    let input = "<a᭎";
    let tokens: Vec<_> = dbgw_html::Tokenizer::new(input).collect();
    assert!(tokens.len() <= input.len() + 1);
    let _ = dbgw_html::Form::parse_all(input);
    let _ = dbgw_core::parse_macro(input);
    let _ = minisql::parse(input);
    let _ = dbgw_cgi::QueryString::parse(input);
}

/// Hand-picked crashers: inputs that have broken parsers of this shape before.
#[test]
fn known_nasty_inputs() {
    let nasties = [
        "%",
        "%}",
        "%{",
        "%{%}",
        "%DEFINE",
        "%DEFINE{",
        "%DEFINE a =",
        "%DEFINE a = \"",
        "%SQL",
        "%SQL{",
        "%SQL(){ x %}",
        "%SQL_REPORT{",
        "%HTML_INPUT",
        "%HTML_INPUT{$($($(",
        "%HTML_INPUT{$()%}",
        "%HTML_INPUT{$$%}",
        "%HTML_INPUT{$%}",
        "\u{0}",
        "%HTML_INPUT{\u{FFFD}%}",
    ];
    for input in nasties {
        let _ = dbgw_core::parse_macro(input);
    }
    let sql_nasties = [
        "'",
        "''",
        "\"",
        "SELECT",
        "SELECT (",
        "SELECT ((((((((((1))))))))))",
        "SELECT * FROM",
        "INSERT INTO t VALUES",
        "SELECT 1 UNION",
        "CASE",
        "SELECT CASE WHEN",
        "SELECT CAST(1 AS",
        "-9223372036854775808",
        "SELECT --",
    ];
    for input in sql_nasties {
        let _ = minisql::parse(input);
    }
}

/// Cache-key safety: `normalize_sql` folds case and whitespace *outside*
/// string literals only. Statements that differ inside a literal must never
/// share a cache key, no matter what macro-substitution shrapnel (`$(`,
/// quotes, comment markers) the literal carries — an alias here would serve
/// one user's rows to another's query.
#[test]
fn normalization_never_aliases_distinct_literals() {
    let must_differ: &[(&str, &str)] = &[
        // Case inside a literal is data, not syntax.
        (
            "SELECT * FROM t WHERE s = 'abc'",
            "SELECT * FROM t WHERE s = 'ABC'",
        ),
        // So is interior whitespace.
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "SELECT * FROM t WHERE s = 'a  b'",
        ),
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "SELECT * FROM t WHERE s = 'a\tb'",
        ),
        // Unsubstituted macro shrapnel in a literal stays verbatim.
        (
            "SELECT * FROM t WHERE s = '$(X)'",
            "SELECT * FROM t WHERE s = '$(x)'",
        ),
        // An escaped quote keeps the literal open: the trailing AND is data
        // in one statement and syntax in the other.
        (
            "SELECT * FROM t WHERE s = 'it''s' AND n = 1",
            "SELECT * FROM t WHERE s = 'it''S' AND n = 1",
        ),
        // A comment marker inside a literal is data; outside it swallows the
        // rest of the line.
        (
            "SELECT * FROM t WHERE s = '-- not a comment'",
            "SELECT * FROM t WHERE s = '-- NOT a comment'",
        ),
        // Quoted identifiers are case-sensitive too.
        ("SELECT \"Col\" FROM t", "SELECT \"col\" FROM t"),
        // A comment runs to end of line, not end of statement: text after
        // the newline is live, text on the comment line is not.
        ("SELECT 1 -- c\n+1", "SELECT 1 -- c +1"),
    ];
    for (a, b) in must_differ {
        assert_ne!(
            dbgw_cache::normalize_sql(a),
            dbgw_cache::normalize_sql(b),
            "aliased: {a:?} vs {b:?}"
        );
    }

    let must_match: &[(&str, &str)] = &[
        // Case and whitespace outside literals fold away.
        ("SELECT  *  FROM t", "select * from t"),
        (
            "SELECT * FROM t WHERE s = 'a b'",
            "select  *  from T where S = 'a b'",
        ),
        // Line comments vanish, and both spellings leave a token boundary.
        ("SELECT 1 -- c\n+1", "SELECT 1\n+1"),
        ("SELECT 1 -- one\n", "SELECT 1"),
    ];
    for (a, b) in must_match {
        assert_eq!(
            dbgw_cache::normalize_sql(a),
            dbgw_cache::normalize_sql(b),
            "should normalize together: {a:?} vs {b:?}"
        );
    }
}
