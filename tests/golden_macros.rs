//! Golden-file conformance for the shipped example macros.
//!
//! Each macro under `macros/` is rendered in both input and report mode
//! against a fixed seed database and fixed form variables, and the page must
//! match its recorded fixture in `tests/golden/` byte for byte. This pins
//! the whole rendering pipeline — macro parse, %DEFINE/%LIST evaluation,
//! variable substitution, SQL execution, %ROW expansion, escaping — so an
//! accidental output change anywhere shows up as a readable HTML diff.
//!
//! To bless an intentional change: `UPDATE_GOLDEN=1 cargo test --test
//! golden_macros` (or `scripts/update_golden.sh`), then review the diff.

use dbgw_cgi::{CgiRequest, Gateway, Method, TraceOptions};
use std::path::{Path, PathBuf};

/// The fixed dataset every fixture renders against.
fn seed_database() -> minisql::Database {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200));
         INSERT INTO guest VALUES ('Mel', 'first!');
         CREATE TABLE audit (note VARCHAR(250));
         CREATE TABLE orders (orderid INT PRIMARY KEY, custid INT,
                              product_name VARCHAR(60), quantity INT, price INT);
         INSERT INTO orders VALUES (100, 1, 'Widget', 3, 15);
         INSERT INTO orders VALUES (101, 2, 'Widget XL', 1, 40);
         INSERT INTO orders VALUES (102, 1, 'Grommet', 7, 2);
         CREATE TABLE acct (id INT PRIMARY KEY, balance INT);
         INSERT INTO acct VALUES (1, 100);
         INSERT INTO acct VALUES (2, 50);",
    )
    .unwrap();
    db
}

fn repo_path(relative: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(relative)
}

/// A fresh gateway per case (report modes write), with tracing off and the
/// HTTP cache layer off so the body is the only output under test.
fn gateway(macro_file: &str) -> Gateway {
    let gw = Gateway::new(seed_database())
        .with_trace(TraceOptions::disabled())
        .with_http_cache(false);
    let source = std::fs::read_to_string(repo_path(&format!("macros/{macro_file}")))
        .unwrap_or_else(|e| panic!("read macros/{macro_file}: {e}"));
    gw.add_macro(macro_file, &source).unwrap();
    gw
}

fn check_golden(case: &str, macro_file: &str, method: Method, cmd: &str, wire: &str) {
    let gw = gateway(macro_file);
    let path_info = format!("/{macro_file}/{cmd}");
    let req = match method {
        Method::Get => CgiRequest::get(&path_info, wire),
        Method::Post => CgiRequest::post(&path_info, wire),
    };
    let resp = gw.handle(&req);
    assert_eq!(resp.status, 200, "{case}: {}", resp.body);
    dbgw_html::check_balanced(&resp.body)
        .unwrap_or_else(|e| panic!("{case}: unbalanced page: {e:?}\n{}", resp.body));

    let golden_path = repo_path(&format!("tests/golden/{case}.html"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &resp.body).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{case}: missing fixture {} ({e}); run UPDATE_GOLDEN=1 to record",
            golden_path.display()
        )
    });
    assert_eq!(
        resp.body, want,
        "{case}: page drifted from tests/golden/{case}.html \
         (bless intentional changes with scripts/update_golden.sh)"
    );
}

#[test]
fn guestbook_input() {
    check_golden("guestbook_input", "guestbook.d2w", Method::Get, "input", "");
}

#[test]
fn guestbook_report() {
    check_golden(
        "guestbook_report",
        "guestbook.d2w",
        Method::Post,
        "report",
        "NAME=Ada&MESSAGE=hello+world",
    );
}

#[test]
fn orders_input() {
    check_golden("orders_input", "orders.d2w", Method::Get, "input", "");
}

#[test]
fn orders_report() {
    check_golden(
        "orders_report",
        "orders.d2w",
        Method::Get,
        "report",
        "cust_inp=1&prod_inp=Wid&CONNECTIVE=AND",
    );
}

#[test]
fn transfer_input() {
    check_golden("transfer_input", "transfer.d2w", Method::Get, "input", "");
}

#[test]
fn transfer_report() {
    // Without DTW_SESSION the conversation machinery stays out of the way:
    // STEP=begin_page renders the balance table deterministically.
    check_golden(
        "transfer_report",
        "transfer.d2w",
        Method::Get,
        "report",
        "STEP=begin_page",
    );
}
