//! §5 deployment features over the wire: Basic authentication and the
//! access log, exercised through real sockets.

use dbgw_cgi::{BasicAuth, Gateway, HttpClient, HttpServer};

fn server() -> HttpServer {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');",
    )
    .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro(
        "q.d2w",
        "%SQL{ SELECT url FROM urldb %}\n%HTML_INPUT{form%}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    gw.add_macro(
        "admin.d2w",
        "%SQL{ DELETE FROM urldb %}\n%HTML_INPUT{admin form%}\n%HTML_REPORT{purged%EXEC_SQL%}",
    )
    .unwrap();
    let server = HttpServer::start(gw, 0).unwrap();
    server.set_auth(
        BasicAuth::new("DB2WWW admin")
            .with_user("tam", "s3cret")
            .protect_prefix("/cgi-bin/db2www/admin.d2w"),
    );
    server
}

#[test]
fn unprotected_paths_need_no_credentials() {
    let server = server();
    let client = HttpClient::new(server.addr());
    let resp = client.get("/cgi-bin/db2www/q.d2w/input").unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn protected_path_gets_401_with_challenge() {
    let server = server();
    let client = HttpClient::new(server.addr());
    let raw = client
        .raw("GET /cgi-bin/db2www/admin.d2w/input HTTP/1.0\r\n\r\n")
        .unwrap();
    assert!(raw.starts_with("HTTP/1.1 401"), "{raw}");
    assert!(raw.contains("WWW-Authenticate: Basic realm=\"DB2WWW admin\""));
    server.shutdown();
}

#[test]
fn valid_credentials_pass_and_are_logged() {
    let server = server();
    let client = HttpClient::new(server.addr());
    let header = BasicAuth::header_value("tam", "s3cret");
    let raw = client
        .raw(&format!(
            "GET /cgi-bin/db2www/admin.d2w/input HTTP/1.0\r\nAuthorization: {header}\r\n\r\n"
        ))
        .unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("admin form"));
    let entries = server.access_log().entries();
    let entry = entries
        .iter()
        .find(|e| e.request_line.contains("admin.d2w"))
        .expect("admin request logged");
    assert_eq!(entry.user, "tam");
    assert_eq!(entry.status, 200);
    server.shutdown();
}

#[test]
fn wrong_password_rejected() {
    let server = server();
    let client = HttpClient::new(server.addr());
    let header = BasicAuth::header_value("tam", "wrong");
    let raw = client
        .raw(&format!(
            "GET /cgi-bin/db2www/admin.d2w/report HTTP/1.0\r\nAuthorization: {header}\r\n\r\n"
        ))
        .unwrap();
    assert!(raw.starts_with("HTTP/1.1 401"), "{raw}");
    // The protected DELETE must not have run.
    let check = client.get("/cgi-bin/db2www/q.d2w/report").unwrap();
    assert!(check.body.contains("ibm.com"));
    server.shutdown();
}

#[test]
fn access_log_records_every_request_in_common_format() {
    let server = server();
    let client = HttpClient::new(server.addr());
    client.get("/cgi-bin/db2www/q.d2w/input").unwrap();
    client.get("/nowhere").unwrap();
    let log = server.access_log();
    assert_eq!(log.len(), 2);
    let lines: Vec<String> = log.entries().iter().map(|e| e.to_common_log()).collect();
    assert!(lines[0].contains("\"GET /cgi-bin/db2www/q.d2w/input HTTP/1.1\" 200"));
    assert!(lines[1].contains("\"GET /nowhere HTTP/1.1\" 404"));
    server.shutdown();
}

#[test]
fn responses_declare_utf8_charset() {
    // §5 multi-byte support: pages are UTF-8 and say so.
    let server = server();
    let client = HttpClient::new(server.addr());
    let raw = client
        .raw("GET /cgi-bin/db2www/q.d2w/input HTTP/1.0\r\n\r\n")
        .unwrap();
    assert!(
        raw.contains("Content-Type: text/html; charset=utf-8"),
        "{raw}"
    );
    server.shutdown();
}
