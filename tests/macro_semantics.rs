//! Additional macro-language semantics at the integration level — the
//! corners the paper specifies in passing.

use dbgw_core::db::{DbError, DbRows, FnDatabase};
use dbgw_core::{parse_macro, Engine, Mode};

fn ok_rows(columns: &[&str], rows: &[&[&str]]) -> DbRows {
    DbRows {
        columns: columns.iter().map(|s| s.to_string()).collect(),
        rows: rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect(),
        affected: 0,
    }
}

#[test]
fn report_block_without_row_template() {
    // §3.2.1 syntax allows a report with header text only — useful for
    // "summary" reports that only use ROW_NUM and the N-variables.
    let mac = parse_macro(
        "%SQL{ Q\n%SQL_REPORT{Found $(ROW_NUM) of columns $(NLIST).%}\n%}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a", "b"], &[&["1", "2"], &["3", "4"]])));
    let out = Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    // Without a %ROW block the header is the whole report; ROW_NUM is 0
    // there (no rows fetched *yet* at header time, per §3.2.1's ordering).
    assert_eq!(out, "Found 0 of columns a, b.");
}

#[test]
fn header_sees_column_names_before_rows() {
    let mac = parse_macro(
        "%SQL{ Q\n%SQL_REPORT{<TR><TH>$(N1)</TH><TH>$(N2)</TH></TR>\n\
         %ROW{<TD>$(V1)</TD>%}done=$(ROW_NUM)%}\n%}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["url", "title"], &[&["u", "t"]])));
    let out = Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    assert!(out.contains("<TH>url</TH><TH>title</TH>"));
    assert!(out.contains("done=1"));
}

#[test]
fn n_and_v_column_name_variables_case_insensitive() {
    // "variable names are case sensitive except in certain special cases
    // like implicit variables that represent database column names" (§3).
    let mac = parse_macro(
        "%SQL{ Q\n%SQL_REPORT{%ROW{$(v_TITLE)/$(V_title)/$(n_TiTlE)%}%}\n%}\n\
         %HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["title"], &[&["IBM"]])));
    let out = Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    assert_eq!(out, "IBM/IBM/title");
}

#[test]
fn vlist_and_nlist_concatenate() {
    let mac = parse_macro(
        "%SQL{ Q\n%SQL_REPORT{[$(NLIST)]\n%ROW{[$(VLIST)]\n%}%}\n%}\n%HTML_REPORT{%EXEC_SQL%}",
    )
    .unwrap();
    let mut db = FnDatabase(|_: &str| Ok(ok_rows(&["a", "b", "c"], &[&["1", "2", "3"]])));
    let out = Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    assert!(out.contains("[a, b, c]"));
    assert!(out.contains("[1, 2, 3]"));
}

#[test]
fn comment_sections_render_nothing() {
    let mac = parse_macro("%{ top comment %}\n%HTML_INPUT{A%}\n%{ middle %}\n").unwrap();
    let out = Engine::new().process_input(&mac, &[]).unwrap();
    assert_eq!(out, "A");
}

#[test]
fn multiple_html_input_sections_concatenate_in_order() {
    // The grammar says "An HTML input section" (singular); the engine, like
    // the product, tolerates several and emits them in document order with
    // defines taking effect between them.
    let mac =
        parse_macro("%HTML_INPUT{[$(x)]%}\n%DEFINE x = \"later\"\n%HTML_INPUT{[$(x)]%}").unwrap();
    let out = Engine::new().process_input(&mac, &[]).unwrap();
    assert_eq!(out, "[][later]");
}

#[test]
fn rpt_max_rows_can_come_from_the_client() {
    // RPT_MAX_ROWS is an ordinary variable: a form (or URL) can set it.
    let mac = parse_macro("%SQL{ Q\n%SQL_REPORT{%ROW{x%}%}\n%}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
    let mut db =
        FnDatabase(|_: &str| Ok(ok_rows(&["a"], &[&["1"], &["2"], &["3"], &["4"], &["5"]])));
    let out = Engine::new()
        .process(
            &mac,
            Mode::Report,
            &[("RPT_MAX_ROWS".into(), "2".into())],
            &mut db,
        )
        .unwrap();
    assert_eq!(out.matches('x').count(), 2);
}

#[test]
fn line_format_sql_sections_execute() {
    let mac =
        parse_macro("%SQL SELECT a FROM t WHERE k = '$(K)'\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
    let mut seen = String::new();
    let mut db = FnDatabase(|sql: &str| {
        seen = sql.to_owned();
        Ok(ok_rows(&["a"], &[&["v"]]))
    });
    Engine::new()
        .process(&mac, Mode::Report, &[("K".into(), "key".into())], &mut db)
        .unwrap();
    assert_eq!(seen, "SELECT a FROM t WHERE k = 'key'");
}

#[test]
fn sql_error_in_second_section_keeps_first_sections_output() {
    let mac =
        parse_macro("%SQL{ GOOD %}\n%SQL{ BAD %}\n%HTML_REPORT{start|%EXEC_SQL|end%}").unwrap();
    let mut db = FnDatabase(|sql: &str| {
        if sql == "GOOD" {
            Ok(ok_rows(&["a"], &[&["1"]]))
        } else {
            Err(DbError {
                code: -204,
                message: "nope".into(),
            })
        }
    });
    let out = Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    assert!(out.starts_with("start|"));
    assert!(out.contains("<TD>1</TD>")); // first section's default table
    assert!(out.contains("SQL error -204"));
    assert!(!out.contains("|end")); // processing stopped at the failure
}

#[test]
fn define_between_exec_sql_directives_is_honored() {
    // Top-to-bottom processing applies inside the report section too: text
    // before a directive can be emitted with one variable state, and SQL
    // sections dereference variables at execution time.
    let mac = parse_macro(
        "%DEFINE t = \"first\"\n%SQL(a){ USE $(t) %}\n\
         %HTML_REPORT{%EXEC_SQL(a)%}",
    )
    .unwrap();
    let mut seen = Vec::new();
    let mut db = FnDatabase(|sql: &str| {
        seen.push(sql.to_owned());
        Ok(DbRows {
            affected: 1,
            ..DbRows::default()
        })
    });
    Engine::new()
        .process(&mac, Mode::Report, &[], &mut db)
        .unwrap();
    assert_eq!(seen, vec!["USE first"]);
}

#[test]
fn nls_localizes_the_error_banner() {
    use dbgw_core::{EngineConfig, Language};
    let mac = parse_macro("%SQL{ BAD %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
    let engine = Engine::with_config(EngineConfig {
        language: Language::German,
        ..EngineConfig::default()
    });
    let mut db = FnDatabase(|_: &str| {
        Err(DbError {
            code: -104,
            message: "kaputt".into(),
        })
    });
    let out = engine.process(&mac, Mode::Report, &[], &mut db).unwrap();
    assert!(out.contains("SQL-Fehler -104"), "{out}");
}

#[test]
fn lint_understands_hyperlink_parameters_and_session_id() {
    // The conversation/scrollable-cursor idioms pass inputs via hyperlink
    // query strings; the linter must treat those names as provided.
    let mac = parse_macro(
        "%SQL(s){ SELECT a FROM t WHERE id = $(NEXT_ID) %}\n\
         %HTML_REPORT{session $(SESSION_ID)\n\
         <A HREF=\"/cgi-bin/db2www/m.d2w/report?NEXT_ID=7&DTW_END=commit\">next</A>\n\
         %EXEC_SQL(s)%}",
    )
    .unwrap();
    let findings = dbgw_core::lint(&mac);
    assert!(!findings.iter().any(|f| f.code == "W001"), "{findings:?}");
}

#[test]
fn duplicate_sql_section_names_rejected_at_parse() {
    // §3.2: section names must be unique within a macro.
    let err = parse_macro("%SQL(a){ X %}\n%SQL(a){ Y %}\n%HTML_REPORT{%EXEC_SQL(a)%}").unwrap_err();
    assert!(
        err.to_string().contains("duplicate SQL section name a"),
        "{err}"
    );
    // Distinct names and multiple unnamed sections remain fine.
    assert!(parse_macro(
        "%SQL(a){ X %}\n%SQL(b){ Y %}\n%SQL{ Z %}\n%SQL{ W %}\n%HTML_REPORT{%EXEC_SQL%}"
    )
    .is_ok());
}
