//! End-to-end observability: a traced request produces the span tree the
//! tentpole promises, `/stats` reflects the traffic, the slow-query log and
//! request ids correlate, and the trace sinks (HTML comment, JSON lines)
//! carry the same trace.

use dbgw_cgi::{CgiRequest, Gateway, HttpClient, HttpServer, TraceOptions};
use dbgw_obs::{trace, StdClock, TestClock};
use std::sync::Arc;

const MACRO: &str = r#"%DEFINE greet = "hello"
%SQL{ SELECT url, title FROM urldb WHERE title LIKE '%$(SEARCH)%'
%SQL_REPORT{<UL>
%ROW{<LI><A HREF="$(V1)">$(V2)</A>
%}</UL>
%}
%}
%HTML_INPUT{<FORM ACTION="/cgi-bin/db2www/u.d2w/report"><INPUT NAME="SEARCH"></FORM>%}
%HTML_REPORT{<H1>$(greet) from request $(DTW_REQUEST_ID)</H1>
%EXEC_SQL
%}"#;

fn gateway(trace: TraceOptions) -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM'),
                                  ('http://www.eso.org', 'ESO');",
    )
    .unwrap();
    let gw = Gateway::new(db).with_trace(trace);
    gw.add_macro("u.d2w", MACRO).unwrap();
    gw
}

/// The acceptance-criteria trace: request, parse_macro, substitute,
/// exec_sql, and render_report spans, nested plausibly.
#[test]
fn traced_request_produces_the_expected_span_tree() {
    let gw = gateway(TraceOptions::disabled());
    let req = CgiRequest::get("/u.d2w/report", "SEARCH=IB");
    // Own the trace from outside, as the db2www binary does: the gateway
    // nests its `request` span (and re-parses the macro) under it.
    assert!(trace::start_trace(
        Arc::new(StdClock::new()),
        req.request_id
    ));
    let resp = gw.handle(&req);
    let t = trace::finish_trace().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(t.request_id, req.request_id);

    for name in [
        "request",
        "parse_macro",
        "substitute",
        "exec_sql",
        "render_report",
        "sql_parse",
        "sql_execute",
    ] {
        assert!(!t.spans_named(name).is_empty(), "missing span {name}");
    }

    // Nesting: everything sits under `request`; render_report and the
    // minisql spans sit under exec_sql.
    let request_idx = t.spans.iter().position(|s| s.name == "request").unwrap();
    assert_eq!(t.spans[request_idx].depth, 0);
    let exec_idx = t.spans.iter().position(|s| s.name == "exec_sql").unwrap();
    assert_eq!(t.spans[exec_idx].parent, Some(request_idx));
    let render = &t.spans_named("render_report")[0];
    assert_eq!(render.parent, Some(exec_idx));
    assert_eq!(t.spans_named("sql_execute")[0].parent, Some(exec_idx));

    // Plausible durations under a real clock: children start no earlier
    // than their parent and end no later.
    for span in &t.spans {
        if let Some(p) = span.parent {
            let parent = &t.spans[p];
            assert!(span.start_ns >= parent.start_ns);
            assert!(span.start_ns + span.dur_ns <= parent.start_ns + parent.dur_ns);
        }
    }

    // The exec_sql span carries the substituted statement as a note.
    let exec = &t.spans[exec_idx];
    let sql = &exec.notes.iter().find(|(k, _)| *k == "sql").unwrap().1;
    assert!(sql.contains("LIKE '%IB%'"), "{sql}");
}

#[test]
fn annotate_mode_appends_sanitized_html_comment() {
    let gw = gateway(TraceOptions {
        annotate: true,
        trace_file: None,
        slow_ms: None,
    });
    // A SEARCH containing `--` flows into the SQL note; the comment must
    // not contain a literal `--` anywhere inside its body.
    let resp = gw.get("u.d2w", "report", "SEARCH=a--b");
    assert_eq!(resp.status, 200);
    let opener = "<!-- dbgw trace";
    let start = resp.body.find(opener).expect("trace comment");
    let inner = &resp.body[start + opener.len()..];
    let end = inner.find("-->").expect("comment closed");
    let inner = &inner[..end];
    assert!(inner.contains("request"));
    assert!(inner.contains("exec_sql"));
    assert!(
        !inner.contains("--"),
        "unsanitized `--` inside HTML comment: {inner}"
    );
}

#[test]
fn trace_file_sink_records_json_lines() {
    let path = std::env::temp_dir().join(format!("dbgw-obs-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let gw = gateway(TraceOptions {
        annotate: false,
        trace_file: Some(path.clone()),
        slow_ms: None,
    });
    assert!(gw.trace_options().tracing());
    let resp = gw.get("u.d2w", "report", "SEARCH=ESO");
    assert_eq!(resp.status, 200);
    let text = std::fs::read_to_string(&path).unwrap();
    for name in [
        "request",
        "parse_macro",
        "substitute",
        "exec_sql",
        "render_report",
    ] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} in {text}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn slow_query_log_correlates_by_request_id() {
    // Threshold 0 ms: every statement is "slow".
    let gw = gateway(TraceOptions {
        annotate: false,
        trace_file: None,
        slow_ms: Some(0),
    });
    let req = CgiRequest::get("/u.d2w/report", "SEARCH=IB");
    let resp = gw.handle(&req);
    assert_eq!(resp.status, 200);
    let slow = gw.slow_queries().entries();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].request_id, req.request_id);
    // The log records the *digest* text: literals masked, never raw user
    // input. `'%IB%'` must not survive.
    assert!(
        slow[0].statement.contains("like ?"),
        "{}",
        slow[0].statement
    );
    assert!(!slow[0].statement.contains("IB"), "{}", slow[0].statement);
    assert_eq!(slow[0].sqlcode, 0);
    // DBGW_SLOW_MS enables passive plan capture: the entry carries the
    // per-operator EXPLAIN ANALYZE summary.
    let plan = slow[0].plan.as_deref().expect("plan actuals attached");
    assert!(plan.contains("scan"), "{plan}");
    assert!(plan.contains("total"), "{plan}");
    assert!(slow[0]
        .to_line()
        .starts_with(&format!("slow-query request={}", req.request_id)));
    assert!(
        slow[0].to_line().contains(" plan=["),
        "{}",
        slow[0].to_line()
    );
}

#[test]
fn request_id_reaches_error_pages_and_macro_text() {
    let gw = gateway(TraceOptions::disabled());
    // Error page: carries the correlation id.
    let req = CgiRequest::get("/nope.d2w/report", "");
    let resp = gw.handle(&req);
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains(&format!("request {}", req.request_id)));
    // Macro text: $(DTW_REQUEST_ID) substitutes to the same id.
    let req = CgiRequest::get("/u.d2w/report", "SEARCH=IB");
    let resp = gw.handle(&req);
    assert!(resp
        .body
        .contains(&format!("hello from request {}", req.request_id)));
}

#[test]
fn stats_page_reports_the_traffic_it_serves() {
    let gw = gateway(TraceOptions::disabled());
    let server = HttpServer::start(gw, 0).unwrap();
    let client = HttpClient::new(server.addr());
    let resp = client
        .get("/cgi-bin/db2www/u.d2w/report?SEARCH=IB")
        .unwrap();
    assert_eq!(resp.status, 200);

    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("Gateway Statistics"));

    let prom = client.get("/stats?format=prometheus").unwrap();
    assert_eq!(prom.status, 200);
    let requests: u64 = prom
        .body
        .lines()
        .find_map(|l| l.strip_prefix("dbgw_requests_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(requests >= 1, "{}", prom.body);
    let statements: u64 = prom
        .body
        .lines()
        .find_map(|l| l.strip_prefix("dbgw_sql_statements_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(statements >= 1);
    assert!(prom.body.contains("dbgw_request_latency_seconds_count"));
    server.shutdown();
}

/// The tentpole's time-series + SLO layer, driven deterministically: a
/// `TestClock` paces the sampler, fat latency observations pin the sampled
/// p99, and a burst of error pages burns the error budget. The assertions
/// tolerate traffic from concurrently running tests (the metrics registry is
/// process-global) — pollution only adds *successful, fast* requests, which
/// cannot un-burn the budget or drag a 400 ms p99 under a 10 ms target.
#[test]
fn stats_reports_sampled_p99_and_slo_burn_rate() {
    let clock = Arc::new(TestClock::new());
    let sampler = Arc::new(dbgw_obs::series::Sampler::new(1_000, 60));
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(80));
         INSERT INTO urldb VALUES ('http://www.ibm.com', 'IBM');",
    )
    .unwrap();
    let gw = Gateway::new(db)
        .with_trace(TraceOptions::disabled())
        .with_clock(clock.clone())
        .with_sampler(sampler.clone())
        .with_slo(dbgw_obs::slo::SloConfig {
            p99_target_ms: Some(10.0),
            error_budget: Some(0.05),
        });
    gw.add_macro("u.d2w", MACRO).unwrap();
    let server = HttpServer::start(gw, 0).unwrap();
    let client = HttpClient::new(server.addr());

    // First gateway request anchors the sampler's baseline at t=0.
    assert_eq!(
        client
            .get("/cgi-bin/db2www/u.d2w/report?SEARCH=IB")
            .unwrap()
            .status,
        200
    );
    // Window traffic: 50 successes, 50 error pages (missing macro → 404).
    for _ in 0..50 {
        client
            .get("/cgi-bin/db2www/u.d2w/report?SEARCH=IB")
            .unwrap();
        client.get("/cgi-bin/db2www/nope.d2w/report").unwrap();
    }
    // Pin the window's p99: 200 observations land in the ≤ 524.288 ms
    // bucket, far past the 10 ms target and numerous enough to own the
    // 99th percentile against any concurrent traffic.
    for _ in 0..200 {
        dbgw_obs::metrics()
            .request_latency_ns
            .observe_ns(400_000_000);
    }
    // One full interval elapses; the next request's tick emits the sample.
    clock.advance_millis(1_000);
    assert_eq!(
        client
            .get("/cgi-bin/db2www/u.d2w/report?SEARCH=IB")
            .unwrap()
            .status,
        200
    );
    assert!(
        !sampler.points().is_empty(),
        "sample should have been taken"
    );

    let prom = client.get("/stats?format=prometheus").unwrap().body;
    let burn: f64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("dbgw_slo_burn_rate "))
        .expect("burn rate exported")
        .parse()
        .unwrap();
    // ≥ 50 errors over ~101 window requests against a 5% budget: the burn
    // rate is far above 1 even with concurrent successful traffic mixed in.
    assert!(burn > 1.0, "burn rate {burn}\n{prom}");
    let attainment: f64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("dbgw_slo_latency_attainment_pct "))
        .expect("attainment exported")
        .parse()
        .unwrap();
    assert_eq!(attainment, 0.0, "{prom}");
    // The digest families ride along on the same exposition.
    assert!(prom.contains("dbgw_digest_calls_total{digest=\""), "{prom}");
    assert!(prom.contains("like ?"), "{prom}");

    let html = client.get("/stats").unwrap().body;
    assert!(html.contains("<H2>History</H2>"), "{html}");
    // The sampled p99 is exactly the fat bucket's upper bound.
    assert!(html.contains("latest 524.288"), "{html}");
    assert!(html.contains("<H2>SLO</H2>"), "{html}");
    assert!(html.contains("<H2>Query digests</H2>"), "{html}");
    assert!(html.contains("like ?"), "{html}");
    // The durability families render in both views even for an in-memory
    // database (the counters exist; they just read zero here).
    assert!(html.contains("WAL records"), "{html}");
    assert!(html.contains("checkpoint last bytes"), "{html}");
    assert!(prom.contains("dbgw_wal_fsyncs_total"), "{prom}");
    assert!(prom.contains("dbgw_checkpoints_total"), "{prom}");
    assert!(
        prom.contains("dbgw_group_commit_wait_seconds_bucket"),
        "{prom}"
    );
    server.shutdown();
}
