//! Property-based tests on cross-crate invariants.

use dbgw_cgi::{CgiRequest, Gateway, QueryString};
use dbgw_core::db::{DbRows, FnDatabase};
use dbgw_core::{parse_macro, Engine, Mode};
use dbgw_testkit::gen::*;
use dbgw_testkit::{prop_assert, prop_assert_eq, props};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn gateway() -> Gateway {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE urldb (url VARCHAR(255), title VARCHAR(120), description VARCHAR(400));
         INSERT INTO urldb VALUES ('http://a', 'Alpha', 'first'), ('http://b', 'Beta', NULL);",
    )
    .unwrap();
    let gw = Gateway::new(db);
    gw.add_macro("urlquery.d2w", dbgw_baselines::URLQUERY_MACRO)
        .unwrap();
    gw
}

props! {
    config(cases = 64);

    /// The gateway never panics and never 500s on arbitrary user input —
    /// hostile variables surface as SQL-error text inside a 200 page.
    fn gateway_total_on_arbitrary_input(
        pairs in vec_of((ident(1..=9), printable(0..=20)), 0..=5),
    ) {
        let gw = gateway();
        let q = QueryString::from_pairs(pairs);
        let resp = gw.handle(&CgiRequest::get("/urlquery.d2w/report", &q.to_wire()));
        prop_assert!(resp.status == 200, "status {} body {}", resp.status, resp.body);
    }

    /// Input mode is a pure text transform: structurally balanced in,
    /// balanced out (with value escaping on, which is the default).
    fn input_mode_preserves_balance(
        pairs in vec_of(
            (charset(UPPER, 1..=6), charset("abcdefghijklmnopqrstuvwxyz0123456789 ", 0..=12)),
            0..=3,
        ),
    ) {
        let gw = gateway();
        let q = QueryString::from_pairs(pairs);
        let resp = gw.handle(&CgiRequest::get("/urlquery.d2w/input", &q.to_wire()));
        prop_assert_eq!(resp.status, 200);
        prop_assert!(dbgw_html::check_balanced(&resp.body).is_ok());
    }

    /// Substitution with no $ characters is the identity.
    fn substitution_identity_without_dollars(text in printable(0..=200).exclude("$")) {
        let mac = parse_macro(&format!("%HTML_INPUT{{{}%}}",
            text.replace("%}", ""))).unwrap();
        let body = text.replace("%}", "");
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        prop_assert_eq!(out, body);
    }

    /// An undefined variable always substitutes to the null string: output
    /// equals input with references removed.
    fn undefined_vars_vanish(
        name in charset_first(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
            1..=11,
        ),
    ) {
        let mac = parse_macro(&format!("%HTML_INPUT{{[$({name})]%}}")).unwrap();
        let out = Engine::new().process_input(&mac, &[]).unwrap();
        prop_assert_eq!(out, "[]");
    }

    /// HTML input values always win over DEFINE defaults, whatever they are.
    fn inputs_override_defines(
        default_v in charset(LOWER, 1..=10),
        input_v in charset(UPPER, 1..=10),
    ) {
        let mac = parse_macro(&format!(
            "%DEFINE X = \"{default_v}\"\n%HTML_INPUT{{$(X)%}}"
        )).unwrap();
        let out = Engine::new()
            .process_input(&mac, &[("X".into(), input_v.clone())])
            .unwrap();
        prop_assert_eq!(out, input_v);
    }

    /// Report rendering emits the row template exactly once per row,
    /// regardless of content.
    fn row_template_count_matches_rows(n in usizes(0..50)) {
        let mac = parse_macro(
            "%SQL{ Q\n%SQL_REPORT{%ROW{<ROW>%}TOTAL=$(ROW_NUM)%}\n%}\n%HTML_REPORT{%EXEC_SQL%}"
        ).unwrap();
        let mut db = FnDatabase(|_: &str| Ok(DbRows {
            columns: vec!["a".into()],
            rows: (0..n).map(|i| vec![i.to_string()]).collect(),
            affected: 0,
        }));
        let out = Engine::new().process(&mac, Mode::Report, &[], &mut db).unwrap();
        prop_assert_eq!(out.matches("<ROW>").count(), n);
        let marker = format!("TOTAL={n}");
        prop_assert!(out.contains(&marker));
    }

    /// MiniSQL: inserting k rows then SELECT COUNT(*) always agrees, through
    /// the full SQL text path.
    fn insert_count_agree(values in vec_of(ints(0..1000), 0..=29)) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (v INTEGER)").unwrap();
        let mut conn = db.connect();
        for v in &values {
            conn.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
        let minisql::ExecResult::Rows(rs) = r else { panic!() };
        prop_assert_eq!(rs.rows[0][0].clone(), minisql::Value::Int(values.len() as i64));
    }

    /// MiniSQL: ORDER BY really sorts (non-null integer column).
    fn order_by_sorts(values in vec_of(ints(-100..100), 1..=39)) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (v INTEGER)").unwrap();
        let mut conn = db.connect();
        for v in &values {
            conn.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let r = conn.execute("SELECT v FROM t ORDER BY v DESC").unwrap();
        let minisql::ExecResult::Rows(rs) = r else { panic!() };
        let got: Vec<i64> = rs.rows.iter().map(|r| match r[0] {
            minisql::Value::Int(i) => i,
            _ => unreachable!(),
        }).collect();
        let mut want = values.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, want);
    }

    /// MiniSQL: a LIKE predicate evaluated by the engine agrees with the
    /// standalone matcher on stored data.
    fn engine_like_agrees_with_matcher(
        texts in vec_of(charset("abc", 0..=6), 1..=19),
        pattern in charset("abc%_", 0..=6),
    ) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE t (s VARCHAR(20))").unwrap();
        let mut conn = db.connect();
        for t in &texts {
            conn.execute_with_params("INSERT INTO t VALUES (?)",
                &[minisql::Value::Text(t.clone())]).unwrap();
        }
        let r = conn.execute_with_params(
            "SELECT COUNT(*) FROM t WHERE s LIKE ?",
            &[minisql::Value::Text(pattern.clone())]).unwrap();
        let minisql::ExecResult::Rows(rs) = r else { panic!() };
        let expected = texts.iter()
            .filter(|t| minisql::like::like_match(t, &pattern, None))
            .count() as i64;
        prop_assert_eq!(rs.rows[0][0].clone(), minisql::Value::Int(expected));
    }
}

props! {
    config(cases = 32);

    /// The default-table report is balanced HTML for ANY database content —
    /// the escaping path can never be broken by stored data.
    fn default_report_always_balanced(
        cells in vec_of((printable(0..=24), printable(0..=24)), 0..=11),
    ) {
        let mac = parse_macro("%SQL{ Q %}\n%HTML_REPORT{%EXEC_SQL%}").unwrap();
        let data = DbRows {
            columns: vec!["a".into(), "b".into()],
            rows: cells.iter().map(|(a, b)| vec![a.clone(), b.clone()]).collect(),
            affected: 0,
        };
        let mut db = FnDatabase(|_: &str| Ok(data.clone()));
        let out = Engine::new().process(&mac, Mode::Report, &[], &mut db).unwrap();
        prop_assert!(dbgw_html::check_balanced(&out).is_ok(), "out: {out}");
    }

    /// Custom %ROW reports are balanced too, for any data, with escaping on.
    fn custom_report_always_balanced(cells in vec_of(printable(0..=32), 0..=11)) {
        let mac = parse_macro(
            "%SQL{ Q\n%SQL_REPORT{<UL>\n%ROW{<LI><A HREF=\"$(V1)\">$(V1)</A>\n%}</UL>\n%}\n%}\n\
             %HTML_REPORT{%EXEC_SQL%}",
        ).unwrap();
        let data = DbRows {
            columns: vec!["u".into()],
            rows: cells.iter().map(|c| vec![c.clone()]).collect(),
            affected: 0,
        };
        let mut db = FnDatabase(|_: &str| Ok(data.clone()));
        let out = Engine::new().process(&mac, Mode::Report, &[], &mut db).unwrap();
        prop_assert!(dbgw_html::check_balanced(&out).is_ok(), "out: {out}");
    }

    /// SQL-script dump/load round-trips arbitrary typed data exactly.
    fn dump_round_trips_random_data(
        rows in vec_of(
            (
                any_i64(),
                option_of(printable(0..=16).exclude("'")),
                option_of(f64s(-1.0e6..1.0e6)),
            ),
            0..=19,
        ),
    ) {
        let db = minisql::Database::new();
        db.run_script("CREATE TABLE r (i INTEGER, t VARCHAR(20), d DOUBLE)").unwrap();
        let mut conn = db.connect();
        for (i, t, d) in &rows {
            conn.execute_with_params(
                "INSERT INTO r VALUES (?, ?, ?)",
                &[
                    minisql::Value::Int(*i),
                    t.clone().map(minisql::Value::Text).unwrap_or(minisql::Value::Null),
                    d.map(minisql::Value::Double).unwrap_or(minisql::Value::Null),
                ],
            ).unwrap();
        }
        let script = minisql::dump::dump_script(&db).unwrap();
        let restored = minisql::dump::load_dump(&script).unwrap();
        prop_assert!(minisql::dump::databases_equal(&db, &restored).unwrap(), "script:\n{script}");
    }

    /// CSV export/import round-trips arbitrary text data (incl. quotes,
    /// commas, newlines, NULL-vs-empty) exactly.
    fn csv_round_trips_random_text(rows in vec_of(option_of(printable(0..=16)), 0..=19)) {
        csv_round_trips(&rows)?;
    }

    /// Cache transparency: the same random statement sequence against a
    /// cached and an uncached database yields byte-identical results at every
    /// step and identical final states. Caching may only change speed.
    fn cache_is_transparent(ops in vec_of((usizes(0..4), ints(0..40)), 1..=24)) {
        let cached = minisql::Database::with_cache_config(
            &dbgw_cache::CacheConfig::default(),
            std::sync::Arc::new(dbgw_obs::StdClock::new()),
        );
        let plain = minisql::Database::without_cache();
        for db in [&cached, &plain] {
            db.run_script("CREATE TABLE t (v INTEGER)").unwrap();
        }
        let mut cached_conn = cached.connect();
        let mut plain_conn = plain.connect();
        for (op, x) in &ops {
            let sql = match op {
                0 => format!("INSERT INTO t VALUES ({x})"),
                1 => format!("SELECT COUNT(*) FROM t WHERE v < {x}"),
                2 => "SELECT v FROM t ORDER BY v".to_owned(),
                _ => format!("DELETE FROM t WHERE v = {x}"),
            };
            let warm = cached_conn.execute(&sql);
            let cold = plain_conn.execute(&sql);
            prop_assert_eq!(&warm, &cold, "results diverged on {}", sql);
        }
        prop_assert!(minisql::dump::databases_equal(&cached, &plain).unwrap());
    }

    /// Byte accounting: whatever gets stored, in whatever order, the cache
    /// never charges more than its configured budget.
    fn cache_bytes_never_exceed_budget(
        entries in vec_of((ident(1..=8), usizes(0..2048)), 0..=40),
        budget in usizes(256..8192),
    ) {
        let config = dbgw_cache::CacheConfig {
            max_bytes: budget,
            shards: 4,
            ..dbgw_cache::CacheConfig::default()
        };
        let cache: dbgw_cache::ShardedCache<String> = dbgw_cache::ShardedCache::new(
            &config,
            std::sync::Arc::new(dbgw_obs::StdClock::new()),
        );
        for (key, cost) in &entries {
            cache.put(key.clone(), "v".into(), *cost);
            prop_assert!(
                cache.bytes() <= budget,
                "cache holds {} bytes against a budget of {}",
                cache.bytes(),
                budget
            );
        }
    }
}

/// Check the invariants of the Prometheus text exposition format that
/// scrapers rely on: every sample line belongs to a family that declared
/// `# HELP` and `# TYPE`, every sample value parses as a number, and every
/// histogram family has monotonically non-decreasing cumulative buckets
/// ending in `+Inf`, with `_count` equal to the `+Inf` bucket and a `_sum`.
fn check_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<&str, &str> = HashMap::new();
    let mut helps: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let fam = it.next().ok_or("TYPE line without family")?;
            let kind = it
                .next()
                .ok_or_else(|| format!("TYPE {fam} without kind"))?;
            if types.insert(fam, kind).is_some() {
                return Err(format!("duplicate TYPE for {fam}"));
            }
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            helps.push(rest.split(' ').next().unwrap_or(""));
        }
    }
    // family -> (bucket cumulative counts in order, saw +Inf, count value, saw _sum)
    let mut hist: HashMap<String, (Vec<f64>, bool, Option<f64>, bool)> = HashMap::new();
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let name = line.split(['{', ' ']).next().unwrap();
        let (family, part) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|f| types.get(f) == Some(&"histogram"))
                    .map(|f| (f, *suffix))
            })
            .unwrap_or((name, ""));
        if !types.contains_key(family) {
            return Err(format!("sample {name} has no # TYPE {family}"));
        }
        if !helps.contains(&family) {
            return Err(format!("sample {name} has no # HELP {family}"));
        }
        let value: f64 = line
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .map_err(|e| format!("unparseable value on {line:?}: {e}"))?;
        let entry = hist.entry(family.to_owned()).or_default();
        match part {
            "_bucket" => {
                let le = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|r| r.split('"').next())
                    .ok_or_else(|| format!("bucket without le label: {line:?}"))?;
                if entry.1 {
                    return Err(format!("{family}: bucket after +Inf"));
                }
                if let Some(prev) = entry.0.last() {
                    if value < *prev {
                        return Err(format!(
                            "{family}: cumulative buckets decreased ({prev} -> {value})"
                        ));
                    }
                }
                entry.0.push(value);
                if le == "+Inf" {
                    entry.1 = true;
                }
            }
            "_sum" => entry.3 = true,
            "_count" => entry.2 = Some(value),
            _ => {}
        }
    }
    for (family, kind) in &types {
        if *kind != "histogram" {
            continue;
        }
        let (buckets, saw_inf, count, saw_sum) = hist
            .get(*family)
            .ok_or_else(|| format!("{family}: declared histogram but no samples"))?;
        if !saw_inf {
            return Err(format!("{family}: no le=\"+Inf\" bucket"));
        }
        if !saw_sum {
            return Err(format!("{family}: no _sum"));
        }
        let count = count.ok_or_else(|| format!("{family}: no _count"))?;
        let inf = *buckets.last().expect("saw_inf implies buckets");
        if (count - inf).abs() > f64::EPSILON {
            return Err(format!("{family}: _count {count} != +Inf bucket {inf}"));
        }
    }
    Ok(())
}

props! {
    config(cases = 64);

    /// Exposition conformance (the `/stats?format=prometheus` contract):
    /// whatever traffic the registry, digest store, and SLO evaluator have
    /// absorbed, the rendered text passes [`check_exposition`].
    fn prometheus_exposition_is_conformant(
        counts in (usizes(0..100), usizes(0..100)),
        lat_ns in vec_of(usizes(0..2_000_000_000), 0..=40),
        sql_ns in vec_of(usizes(0..600_000_000), 0..=40),
        latch_ns in vec_of(usizes(0..50_000_000), 0..=20),
        codes in vec_of(ints(-900..900), 0..=6),
        digest_input in (
            vec_of((usizes(1..6), usizes(0..3_000_000_000), printable(0..=20)), 0..=20),
            usizes(1..8),
        ),
    ) {
        let (reqs, errs) = counts;
        let (digests, top_n) = digest_input;
        let m = dbgw_obs::metrics::Metrics::new();
        m.requests.add(reqs as u64);
        m.request_errors.add(errs as u64);
        for ns in &lat_ns {
            m.request_latency_ns.observe_ns(*ns as u64);
        }
        for ns in &sql_ns {
            m.sql_latency_ns.observe_ns(*ns as u64);
        }
        for ns in &latch_ns {
            m.latch_wait_ns.observe_ns(*ns as u64);
        }
        for c in &codes {
            m.sqlcode_errors.record(*c as i32);
        }
        let store = dbgw_obs::digest::DigestStore::with_capacity(8, true);
        for (key, dur, text) in &digests {
            store.record(
                *key as u64,
                text,
                &dbgw_obs::digest::DigestObservation {
                    dur_ns: *dur as u64,
                    rows_returned: 1,
                    ..Default::default()
                },
            );
        }
        let report = dbgw_obs::slo::evaluate(
            &[dbgw_obs::series::SamplePoint {
                requests: reqs as u64,
                errors: errs.min(reqs) as u64,
                p99_ms: *lat_ns.first().unwrap_or(&0) as f64 / 1e6,
                ..Default::default()
            }],
            &dbgw_obs::slo::SloConfig {
                p99_target_ms: Some(5.0),
                error_budget: Some(0.01),
            },
        );
        let mut text = dbgw_obs::export::render_prometheus(&m);
        text.push_str(&dbgw_obs::export::digest_prometheus(&store, top_n));
        text.push_str(&dbgw_obs::export::slo_prometheus(&report));
        if let Err(e) = check_exposition(&text) {
            prop_assert!(false, "{e}\n--- exposition ---\n{text}");
        }
    }
}

/// The conformance checker also holds on the live process registry — the
/// exact text `/stats?format=prometheus` serves after real gateway traffic.
#[test]
fn live_registry_exposition_is_conformant() {
    let m = dbgw_obs::metrics();
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::get("/urlquery.d2w/report", "SEARCH=Alpha"));
    assert_eq!(resp.status, 200);
    let mut text = dbgw_obs::export::render_prometheus(m);
    text.push_str(&dbgw_obs::export::digest_prometheus(
        dbgw_obs::digests(),
        20,
    ));
    text.push_str(&dbgw_obs::export::slo_prometheus(&dbgw_obs::slo::evaluate(
        &[],
        &dbgw_obs::slo::SloConfig {
            p99_target_ms: Some(5.0),
            error_budget: Some(0.01),
        },
    )));
    check_exposition(&text).unwrap();
}

/// Shared body for the CSV round-trip property and its pinned regressions.
fn csv_round_trips(rows: &[Option<String>]) -> Result<(), String> {
    let db = minisql::Database::new();
    db.run_script("CREATE TABLE c (t VARCHAR(40))").unwrap();
    let mut conn = db.connect();
    for t in rows {
        conn.execute_with_params(
            "INSERT INTO c VALUES (?)",
            &[t.clone()
                .map(minisql::Value::Text)
                .unwrap_or(minisql::Value::Null)],
        )
        .unwrap();
    }
    let csv = minisql::csv::export_table(&db, "c").unwrap();
    let dest = minisql::Database::new();
    dest.run_script("CREATE TABLE c (t VARCHAR(40))").unwrap();
    minisql::csv::import_table(&dest, "c", &csv).unwrap();
    prop_assert!(
        minisql::dump::databases_equal(&db, &dest).unwrap(),
        "csv:\n{csv:?}"
    );
    Ok(())
}

/// Regression pinned from a recorded proptest shrink (`.proptest-regressions`,
/// now retired): a single row holding the literal text "0" must survive the
/// CSV round-trip — it must not be conflated with the number 0 or with NULL.
#[test]
fn csv_round_trip_regression_zero_text() {
    csv_round_trips(&[Some("0".to_string())]).unwrap();
}
