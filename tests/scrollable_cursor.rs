//! The paper's "scrollable cursors" idiom (§4.3.2): the lazy substitution
//! mechanism plus hidden variables let an application page through a result
//! set across client-server interactions — each report embeds a hyperlink
//! carrying the next offset, with no server-side session state.

use dbgw_cgi::{CgiRequest, Gateway};
use dbgw_html::Form;
use dbgw_workload::UrlDirectory;

/// Page size 5; OFFSET arrives as a hidden input / URL variable, defaulting
/// to 0; the report links to itself with OFFSET advanced by PAGE.
const PAGED_MACRO: &str = r#"%DEFINE{
  PAGE = "5"
  OFFSET = "0"
  next_offset = ? "$(OFFSET)"
%}
%SQL{
SELECT title FROM urldb ORDER BY title LIMIT $(PAGE) OFFSET $(OFFSET)
%SQL_REPORT{<OL>
%ROW{<LI>$(V1)
%}</OL>
%}
%}
%HTML_INPUT{<FORM METHOD="get" ACTION="/cgi-bin/db2www/paged.d2w/report">
<INPUT TYPE="hidden" NAME="OFFSET" VALUE="0">
<INPUT TYPE="submit" VALUE="Browse">
</FORM>%}
%HTML_REPORT{<H1>Directory page</H1>
%EXEC_SQL
<P><A HREF="/cgi-bin/db2www/paged.d2w/report?OFFSET=$(NEXT)">Next page</A>
%}
%DEFINE NEXT = "later"
"#;

fn gateway() -> Gateway {
    let db = UrlDirectory::generate(12, 77).into_database();
    let gw = Gateway::new(db);
    gw.add_macro("paged.d2w", PAGED_MACRO).unwrap();
    gw
}

fn titles(body: &str) -> Vec<&str> {
    body.lines()
        .filter_map(|l| l.strip_prefix("<LI>"))
        .collect()
}

#[test]
fn pages_do_not_overlap_and_cover_everything() {
    let gw = gateway();
    let mut seen: Vec<String> = Vec::new();
    for page in 0..3 {
        let offset = page * 5;
        let resp = gw.handle(&CgiRequest::get(
            "/paged.d2w/report",
            &format!("OFFSET={offset}&NEXT={}", offset + 5),
        ));
        assert_eq!(resp.status, 200);
        let page_titles = titles(&resp.body);
        assert!(page_titles.len() <= 5);
        for t in &page_titles {
            assert!(
                !seen.contains(&t.to_string()),
                "duplicate across pages: {t}"
            );
            seen.push(t.to_string());
        }
    }
    assert_eq!(seen.len(), 12, "three pages of 5+5+2 cover all rows");
}

#[test]
fn next_link_carries_the_continuation() {
    // The hyperlink in page N is the complete client-side state for page
    // N+1 — the "rudimentary scheme for linking multiple client-server
    // interactions" of §5.
    let gw = gateway();
    let resp = gw.handle(&CgiRequest::get("/paged.d2w/report", "OFFSET=0&NEXT=5"));
    assert!(resp
        .body
        .contains("/cgi-bin/db2www/paged.d2w/report?OFFSET=5"));
}

#[test]
fn default_offset_comes_from_define() {
    // With no OFFSET variable at all, the DEFINE default (0) applies —
    // "simple variable assignments are typically used to set default values
    // for HTML input variables" (§3.1.1).
    let gw = gateway();
    let with_default = gw.handle(&CgiRequest::get("/paged.d2w/report", ""));
    let explicit = gw.handle(&CgiRequest::get("/paged.d2w/report", "OFFSET=0"));
    assert_eq!(titles(&with_default.body), titles(&explicit.body));
}

#[test]
fn hidden_input_in_form_starts_at_zero() {
    let gw = gateway();
    let input = gw.handle(&CgiRequest::get("/paged.d2w/input", ""));
    let form = Form::parse_first(&input.body).unwrap();
    let pairs = form.default_submission();
    assert_eq!(pairs, vec![("OFFSET".to_string(), "0".to_string())]);
}
