//! §5 transaction modes, exercised through the whole stack: a guestbook
//! macro whose report mode runs several INSERT statements.

use dbgw_cgi::{CgiRequest, Gateway};
use dbgw_core::{EngineConfig, TxnMode};

/// A write-heavy macro: sign the guestbook (two inserts — an entry and an
/// audit row), then show the book. The second insert fails when NAME is
/// missing (NOT NULL), which distinguishes the two modes.
const GUESTBOOK_MACRO: &str = r#"%DEFINE nm = NAME ? "'$(NAME)'" : "NULL"
%SQL{ INSERT INTO audit (note) VALUES ('signing: $(MESSAGE)') %}
%SQL{ INSERT INTO guest (name, message) VALUES ($(nm), '$(MESSAGE)') %}
%SQL(list){ SELECT name, message FROM guest ORDER BY name
%SQL_REPORT{<UL>
%ROW{<LI><B>$(V1)</B>: $(V2)
%}</UL>
%}
%}
%HTML_INPUT{<FORM METHOD="post" ACTION="/cgi-bin/db2www/guestbook.d2w/report">
<INPUT NAME="NAME"> <INPUT NAME="MESSAGE">
<INPUT TYPE="submit" VALUE="Sign">
</FORM>%}
%HTML_REPORT{<H1>Guestbook</H1>
%EXEC_SQL
%EXEC_SQL(list)
%}"#;

fn database() -> minisql::Database {
    let db = minisql::Database::new();
    db.run_script(
        "CREATE TABLE guest (name VARCHAR(40) NOT NULL, message VARCHAR(200));
         CREATE TABLE audit (note VARCHAR(250));",
    )
    .unwrap();
    db
}

fn gateway(db: &minisql::Database, mode: TxnMode) -> Gateway {
    let gw = Gateway::with_config(
        db.clone(),
        EngineConfig {
            txn_mode: mode,
            ..EngineConfig::default()
        },
    );
    gw.add_macro("guestbook.d2w", GUESTBOOK_MACRO).unwrap();
    gw
}

#[test]
fn successful_signing_works_in_both_modes() {
    for mode in [TxnMode::AutoCommit, TxnMode::SingleTransaction] {
        let db = database();
        let gw = gateway(&db, mode);
        let resp = gw.handle(&CgiRequest::post(
            "/guestbook.d2w/report",
            "NAME=Ada&MESSAGE=hello",
        ));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("<LI><B>Ada</B>: hello"), "{}", resp.body);
        assert_eq!(db.table_len("guest").unwrap(), 1);
        assert_eq!(db.table_len("audit").unwrap(), 1);
    }
}

#[test]
fn autocommit_keeps_the_audit_row_when_insert_fails() {
    // "one mode in which every SQL statement in a macro is a separate
    // transaction (auto-commit)": the audit insert survives the guest
    // insert's NOT NULL failure.
    let db = database();
    let gw = gateway(&db, TxnMode::AutoCommit);
    let resp = gw.handle(&CgiRequest::post(
        "/guestbook.d2w/report",
        "MESSAGE=anonymous", // no NAME
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("SQL error"));
    assert_eq!(db.table_len("audit").unwrap(), 1); // committed
    assert_eq!(db.table_len("guest").unwrap(), 0);
}

#[test]
fn single_transaction_rolls_everything_back() {
    // "another mode in which all SQL statements in a macro are executed as a
    // single transaction (i.e., a rollback will occur if any SQL statement
    // fails)".
    let db = database();
    let gw = gateway(&db, TxnMode::SingleTransaction);
    let resp = gw.handle(&CgiRequest::post(
        "/guestbook.d2w/report",
        "MESSAGE=anonymous",
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("SQL error"));
    assert_eq!(db.table_len("audit").unwrap(), 0); // rolled back with it
    assert_eq!(db.table_len("guest").unwrap(), 0);
}

#[test]
fn single_transaction_commits_atomically_across_statements() {
    let db = database();
    let gw = gateway(&db, TxnMode::SingleTransaction);
    for i in 0..5 {
        let resp = gw.handle(&CgiRequest::post(
            "/guestbook.d2w/report",
            &format!("NAME=user{i}&MESSAGE=m{i}"),
        ));
        assert_eq!(resp.status, 200);
    }
    assert_eq!(db.table_len("guest").unwrap(), 5);
    assert_eq!(db.table_len("audit").unwrap(), 5);
}

#[test]
fn quote_in_message_is_a_contained_failure() {
    // The macro splices $(MESSAGE) textually (as the original did); a quote
    // breaks that statement. In single-transaction mode nothing persists.
    let db = database();
    let gw = gateway(&db, TxnMode::SingleTransaction);
    let resp = gw.handle(&CgiRequest::post(
        "/guestbook.d2w/report",
        "NAME=Eve&MESSAGE=it%27s%20broken",
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("SQL error"));
    assert_eq!(db.table_len("guest").unwrap(), 0);
    assert_eq!(db.table_len("audit").unwrap(), 0);
}
